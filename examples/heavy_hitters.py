#!/usr/bin/env python3
"""Private heavy hitters with a count-mean sketch (the Honeycrisp/Apple
workload behind the ``cms`` query).

Each device holds an item from a large domain (here: which emoji it uses
most). Devices never reveal the item: they upload an encrypted sketch row
(k cells set out of k x m), the aggregator sums rows homomorphically, a
committee adds Laplace noise once, and the analyst estimates any
candidate item's frequency from the published noisy sketch — including
items that never occurred.

Run:  python examples/heavy_hitters.py
"""

import random

from repro.planner.search import plan_query
from repro.queries.sketches import (
    CountMeanSketch,
    SketchParams,
    encode_row,
    sketch_environment,
    sketch_query_source,
)
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork

EMOJI = ["😀", "🎉", "🔥", "❤️", "🤖", "🌮", "🦉", "📎"]
WEIGHTS = [30, 18, 10, 8, 3, 2, 1, 1]  # 😀 and 🎉 are the heavy hitters
DEVICES = 64


def main() -> None:
    rng = random.Random(4242)
    params = SketchParams(depth=2, width=32)
    print(f"sketch: {params.depth} x {params.width} = {params.cells} cells "
          f"(domain is unbounded; candidates are checked post hoc)")

    # --- devices encode locally -----------------------------------------
    network = FederatedNetwork(DEVICES, rng=rng)
    truth = {e: 0 for e in EMOJI}
    for device in network.devices:
        item = rng.choices(EMOJI, weights=WEIGHTS, k=1)[0]
        truth[item] += 1
        device.value = encode_row(item, params)

    # --- plan + execute the sketch release ------------------------------
    env = sketch_environment(params, num_participants=DEVICES, epsilon=8.0)
    planning = plan_query(sketch_query_source(params), env, name="cms-sketch")
    print(f"certified: ε = {planning.certificate.epsilon:g} "
          f"(vector Laplace over the whole sketch)")
    result = QueryExecutor(
        network, planning, committee_size=4, rng=rng
    ).run()

    # --- analyst-side estimation ----------------------------------------
    sketch = CountMeanSketch(params, [float(v) for v in result.outputs], DEVICES)
    print()
    print(f"{'emoji':8s} {'true':>5s} {'estimate':>9s}")
    for emoji in EMOJI:
        print(f"{emoji:8s} {truth[emoji]:5d} {sketch.estimate(emoji):9.1f}")
    print(f"{'🦄 (absent)':8s} {0:5d} {sketch.estimate('🦄'):9.1f}")

    hitters = sketch.heavy_hitters(EMOJI, threshold=DEVICES * 0.15)
    print()
    print(f"heavy hitters (>15% of devices): {sorted(hitters)}")


if __name__ == "__main__":
    main()
