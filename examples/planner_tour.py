#!/usr/bin/env python3
"""A tour of the query planner: how constraints and goals reshape plans.

Reproduces the §7.6 story interactively: as the deployment grows, the
aggregator's mandatory work grows linearly; when the analyst caps the
aggregator's budget, Arboretum outsources the aggregation to participant
sum trees — an option single-committee systems simply do not have — until
even the non-outsourceable ZKP checks exceed the limit and planning fails.

Run:  python examples/planner_tour.py
"""

from repro import Constraints, Goal, Planner, PlanningFailed, QueryEnvironment

QUERY = """
aggr = sum(db);
result = em(aggr);
output(result);
"""


def plan(env, constraints=None, goal=None):
    planner = Planner(env, constraints=constraints, goal=goal or Goal())
    return planner.plan_source(QUERY, name="top1")


def describe(result, label):
    cost = result.plan.cost
    aggregate_choice = result.plan.choices.get("aggregate[1]", "?")
    print(
        f"{label:28s} sum via {aggregate_choice:24s} "
        f"agg={cost.aggregator_core_seconds / 3600:9.1f} core-h   "
        f"exp={cost.participant_expected_seconds:6.2f}s   "
        f"max={cost.participant_max_seconds / 60:5.1f}min"
    )


def main() -> None:
    print("=== different goals, same query (N = 2^30, C = 2^15) ===")
    env = QueryEnvironment(num_participants=2**30, row_width=2**15, epsilon=0.1)
    for metric in (
        "participant_expected_seconds",
        "participant_expected_bytes",
        "aggregator_core_seconds",
        "participant_max_seconds",
    ):
        result = plan(env, goal=Goal(metric))
        describe(result, f"minimize {metric.split('_', 1)[1]}")

    print()
    print("=== squeezing the aggregator (Fig 10) ===")
    flat = plan(env, goal=Goal("participant_expected_bytes"))
    describe(flat, "no limit")
    flat_hours = flat.plan.cost.aggregator_core_seconds / 3600
    for fraction in (0.99, 0.95):
        limit = flat_hours * fraction
        result = plan(
            env,
            constraints=Constraints(aggregator_core_seconds=limit * 3600),
            goal=Goal("participant_expected_bytes"),
        )
        describe(result, f"limit {limit:,.0f} core-h")
    try:
        plan(env, constraints=Constraints(aggregator_core_seconds=100 * 3600))
        raise AssertionError("expected planning to fail")
    except PlanningFailed:
        print(
            f"{'limit 100 core-h':28s} INFEASIBLE — the aggregator cannot even "
            f"check the input ZKPs (the Fig 10 red line stops)"
        )

    print()
    print("=== scale changes the best plan ===")
    for exponent in (17, 22, 26, 30):
        env_n = QueryEnvironment(
            num_participants=2**exponent, row_width=2**15, epsilon=0.1
        )
        result = plan(env_n)
        selection = result.plan.choices.get("select_max[2]", "?")
        print(
            f"N = 2^{exponent:2d}: em via {selection:28s} "
            f"({result.plan.committee_params.num_committees:6d} committees of "
            f"{result.plan.committee_params.committee_size})"
        )


if __name__ == "__main__":
    main()
