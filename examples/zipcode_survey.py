#!/usr/bin/env python3
"""The paper's running example: "Which US zip code contains the most
participants?" (§3.2) — 10^8 participants, 41,683 possible zip codes.

This example uses Arboretum as an analyst would at deployment scale:

* it shows why the strawmen fail (FHE-only takes years; all-to-all MPC
  needs petabytes; Böhler's committee drowns in traffic; Orchard's single
  committee cannot run the exponential mechanism over 41,683 categories);
* it plans the query under the §7.2 resource limits and prints the chosen
  plan and its six-metric cost report;
* it then executes the same query end-to-end on a scaled-down deployment
  to show the plan actually works.

Run:  python examples/zipcode_survey.py
"""

import random

from repro import Constraints, FederatedNetwork, Planner, QueryEnvironment, QueryExecutor
from repro.baselines.bohler import bohler_member_traffic
from repro.baselines.orchard import BaselineUnsupported, orchard_score
from repro.baselines.strawmen import all_to_all_mpc, fhe_only

ZIPCODES = 41_683
PARTICIPANTS = 10**8

QUERY = """
aggr = sum(db);
zip = em(aggr);
output(zip);
"""


def show_strawmen() -> None:
    print("=== why the obvious designs fail (Table 1) ===")
    fhe = fhe_only(PARTICIPANTS, ZIPCODES)
    print(f"FHE only:        ~{fhe.aggregator_core_years:,.0f} core-years at the aggregator")
    mpc = all_to_all_mpc(PARTICIPANTS)
    print(f"all-to-all MPC:  {mpc.participant_bytes_typical / 1e12:,.0f} TB per participant")
    bohler = bohler_member_traffic(PARTICIPANTS, committee_size=40)
    print(f"Böhler [14]:     {bohler.member_traffic_tb:,.1f} TB per committee member")
    env = QueryEnvironment(num_participants=PARTICIPANTS, row_width=ZIPCODES)
    try:
        orchard_score(env, released_values=ZIPCODES, uses_em=True)
    except BaselineUnsupported as reason:
        print(f"Orchard [54]:    {reason}")
    print()


def plan_at_scale():
    print("=== Arboretum's plan (N=10^8, 41,683 zip codes) ===")
    env = QueryEnvironment(
        num_participants=PARTICIPANTS, row_width=ZIPCODES, epsilon=0.1
    )
    planner = Planner(
        env,
        constraints=Constraints(
            participant_max_bytes=4e9,  # 4 GB per device (§7.2)
            participant_max_seconds=20 * 60,  # 20 minutes
        ),
    )
    result = planner.plan_source(QUERY, name="zipcode")
    print(result.plan.describe())
    cost = result.plan.cost
    print()
    print("cost report:")
    print(f"  aggregator compute:     {cost.aggregator_core_seconds / 3600:,.0f} core-hours")
    print(f"  aggregator traffic:     {cost.aggregator_bytes / 1e12:,.0f} TB")
    print(f"  participant (expected): {cost.participant_expected_seconds:.1f} s, "
          f"{cost.participant_expected_bytes / 1e6:.2f} MB")
    print(f"  participant (maximum):  {cost.participant_max_seconds / 60:.1f} min, "
          f"{cost.participant_max_bytes / 1e9:.2f} GB")
    params = result.plan.committee_params
    print(f"  committees: {params.num_committees:,} of {params.committee_size} members "
          f"({params.selection_fraction(PARTICIPANTS) * 100:.4f}% of devices serve)")
    print()


def run_scaled_down() -> None:
    print("=== end-to-end execution (scaled-down deployment) ===")
    categories, devices = 16, 64
    env = QueryEnvironment(num_participants=devices, row_width=categories, epsilon=4.0)
    planning = Planner(env).plan_source(QUERY, name="zipcode-small")
    rng = random.Random(2026)
    network = FederatedNetwork(devices, rng=rng, malicious_fraction=0.05)
    # Zip code 11 is the most populous.
    weights = [1.0] * categories
    weights[11] = 20.0
    network.load_categorical_data(categories, distribution=weights)
    result = QueryExecutor(network, planning, committee_size=4, rng=rng).run()
    print(f"  rejected malformed uploads: {result.rejected_devices}")
    print(f"  committees involved:        {result.committees_used}")
    print(f"  winning zip-code bucket:    {result.value} (truth: 11)")


def main() -> None:
    show_strawmen()
    plan_at_scale()
    run_scaled_down()


if __name__ == "__main__":
    main()
