#!/usr/bin/env python3
"""Multi-round federated k-medians clustering (the Orchard workload).

Orchard's k-medians query runs for several rounds: each round, every
device assigns its point to the nearest current center and uploads a
(one-hot assignment || coordinate contribution) row; the aggregator sums
the rows homomorphically, a committee noises the per-cluster counts and
coordinate sums, and the analyst updates the centers. This example drives
the whole loop through an :class:`~repro.session.AnalyticsSession`, so the
privacy budget is split across rounds and the sortition state chains from
round to round — ending, as every session does, with the committee
refusing once the budget runs dry.

The per-round ε here is demo-sized (a 60-device cohort needs little noise
to stay legible); at deployment scale the same query runs at ε = 0.1 with
a billion devices drowning out the noise.

Run:  python examples/federated_clustering.py
"""

import random

from repro.runtime.network import FederatedNetwork
from repro.runtime.executor import QueryRejected
from repro.session import AnalyticsSession

K = 3  # clusters
SCALE = 20  # coordinates live in [0, SCALE)
ROUNDS = 3
EPSILON_PER_ROUND = 24.0
TRUE_CENTERS = [3, 10, 17]

# Round query: per cluster, release a noised count and coordinate sum.
# Conservative certification charges each release by the element range
# (SCALE-1), so scaling the noise by 2*K*SCALE keeps a round at ~epsilon.
QUERY = f"""
aggr = sum(db);
for i = 0 to {K - 1} do
  cnt = clip(aggr[i], 1, N);
  coord = aggr[{K} + i];
  noisycnt = laplace(cnt, 2 * {K} * {SCALE} * sens / epsilon);
  noisysum = laplace(coord, 2 * {K} * {SCALE} * sens / epsilon);
  den = clip(noisycnt, 1, N);
  output(noisysum / den);
endfor
"""


def make_population(rng, devices):
    """1-D points in three blobs around the true centers."""
    network = FederatedNetwork(devices, rng=rng)
    for device in network.devices:
        center = TRUE_CENTERS[device.device_id % 3]
        point = round(rng.gauss(center, 1.5))
        device.point = max(0, min(SCALE - 1, point))
    return network


def encode_round(network, centers):
    """Each device locally assigns itself to the nearest center and
    prepares its (assignment one-hot || coordinate) row."""
    for device in network.devices:
        nearest = min(range(K), key=lambda i: abs(device.point - centers[i]))
        row = [0] * (2 * K)
        row[nearest] = 1
        row[K + nearest] = device.point
        device.value = row


def main() -> None:
    rng = random.Random(2023)
    network = make_population(rng, devices=60)
    session = AnalyticsSession(
        network,
        epsilon_budget=ROUNDS * EPSILON_PER_ROUND,
        epsilon_per_query=EPSILON_PER_ROUND,
        rng=rng,
    )
    centers = [1.0, 8.0, 12.0]  # deliberately poor initialization
    print(f"initial centers: {[f'{c:.1f}' for c in centers]}")

    for round_number in range(ROUNDS + 1):  # one more than the budget allows
        encode_round(network, centers)
        try:
            result = session.ask(
                QUERY,
                categories=2 * K,
                name=f"kmedians-round-{round_number}",
                sensitivity=1.0,
                row_encoding="bounded",
                value_range=(0, SCALE - 1),
            )
        except QueryRejected:
            print(
                f"round {round_number}: REFUSED — privacy budget exhausted "
                f"(ε left: {session.remaining_epsilon():.2f})"
            )
            break
        centers = sorted(float(c) for c in result.outputs)
        print(
            f"round {round_number}: centers -> "
            f"{[f'{c:.1f}' for c in centers]}  "
            f"(ε left: {session.remaining_epsilon():.1f})"
        )

    print()
    print(f"true blob centers: {TRUE_CENTERS}")
    drift = sum(abs(a - b) for a, b in zip(sorted(centers), TRUE_CENTERS)) / K
    print(f"mean center error after {session.queries_answered} rounds: {drift:.1f}")


if __name__ == "__main__":
    main()
