#!/usr/bin/env python3
"""Quickstart: plan and execute a federated "most frequent item" query.

This walks the whole Arboretum pipeline on a small simulated deployment:

1. write the query as if the database were local (§4.1);
2. certify it as differentially private and plan it (§4);
3. execute the chosen plan over a network of devices with real crypto —
   Paillier aggregation, ZKP-checked uploads, sortition-selected MPC
   committees, VSR hand-offs (§5).

Run:  python examples/quickstart.py
"""

import random

from repro import FederatedNetwork, Planner, QueryEnvironment, QueryExecutor

QUERY = """
aggr = sum(db);
result = em(aggr);
output(result);
"""

CATEGORIES = 8
DEVICES = 48


def main() -> None:
    # --- plan ---------------------------------------------------------
    env = QueryEnvironment(
        num_participants=DEVICES, row_width=CATEGORIES, epsilon=4.0
    )
    planning = Planner(env).plan_source(QUERY, name="top1")
    print("certified:  ε =", planning.certificate.epsilon)
    print(planning.plan.describe())
    stats = planning.statistics
    print(
        f"planner explored {stats.prefixes_considered} plan prefixes and "
        f"scored {stats.candidates_scored} candidates in "
        f"{stats.runtime_seconds * 1000:.0f} ms"
    )

    # --- deploy -------------------------------------------------------
    rng = random.Random(7)
    network = FederatedNetwork(DEVICES, rng=rng, malicious_fraction=0.05)
    # Make category 3 the true favourite.
    network.load_categorical_data(
        CATEGORIES, distribution=[1, 1, 1, 25, 1, 1, 1, 1]
    )

    # --- execute ------------------------------------------------------
    executor = QueryExecutor(network, planning, committee_size=4, rng=rng)
    result = executor.run()
    print()
    for event in result.events:
        print("  ", event)
    print()
    print(f"malformed uploads rejected: {result.rejected_devices}")
    print(f"committees involved:        {result.committees_used}")
    print(f"most frequent category:     {result.value} (truth: 3)")


if __name__ == "__main__":
    main()
