#!/usr/bin/env python3
"""A medical-study scenario from the paper's introduction: a researcher
looks for the most common trigger of a rare side effect, without any
participant revealing their data.

This example demonstrates three Arboretum features together:

* **secrecy of the sample** (§2.1, §6): querying a random 50% of the
  cohort amplifies the privacy guarantee — the certifier charges the
  amplified ε automatically;
* **the privacy budget** (§5.2): the key-generation committee accounts
  every query against a global (ε, δ) budget and refuses queries that
  would overdraw it;
* **mixed mechanisms**: a categorical exponential-mechanism query and a
  numerical Laplace count over the same deployment.

Run:  python examples/medical_study.py
"""

import random

from repro import (
    FederatedNetwork,
    Planner,
    PrivacyAccountant,
    QueryEnvironment,
    QueryExecutor,
    QueryRejected,
)

TRIGGERS = 8  # candidate drug/activity/diet combinations
COHORT = 56

TRIGGER_QUERY = """
sampled = sampleUniform(db, 0.5);
aggr = sum(sampled);
trigger = em(aggr);
output(trigger);
"""

COUNT_QUERY = """
aggr = sum(db);
affected = laplace(aggr[2], sens / epsilon);
output(affected);
"""


def main() -> None:
    rng = random.Random(99)
    env = QueryEnvironment(num_participants=COHORT, row_width=TRIGGERS, epsilon=4.0)
    accountant = PrivacyAccountant(epsilon_budget=8.0, delta_budget=1e-6)

    network = FederatedNetwork(COHORT, rng=rng)
    # Trigger #2 is the real culprit in this cohort.
    weights = [1.0] * TRIGGERS
    weights[2] = 18.0
    network.load_categorical_data(TRIGGERS, distribution=weights)

    # --- query 1: which trigger is most common? (sampled EM) -----------
    planning = Planner(env).plan_source(TRIGGER_QUERY, name="trigger")
    print(f"trigger query certified at ε = {planning.certificate.epsilon:.3f} "
          f"(amplified below the mechanism's ε = {env.epsilon} by 50% sampling)")
    result = QueryExecutor(
        network, planning, committee_size=4, rng=rng, accountant=accountant
    ).run()
    print(f"most common trigger: #{result.value} (truth: #2)")
    print(f"budget remaining: ε = {accountant.remaining().epsilon:.3f}")
    print()

    # --- query 2: how many participants report the trigger? ------------
    planning2 = Planner(env).plan_source(COUNT_QUERY, name="count")
    result2 = QueryExecutor(
        network, planning2, committee_size=4, rng=rng, accountant=accountant
    ).run()
    truth = sum(1 for d in network.devices if d.value == 2)
    print(f"noisy affected count: {result2.value:.1f} (truth: {truth})")
    print(f"budget remaining: ε = {accountant.remaining().epsilon:.3f}")
    print()

    # --- query 3: the budget runs out ----------------------------------
    print("running the count query until the budget is exhausted...")
    refused = False
    for attempt in range(3):
        planning3 = Planner(env).plan_source(COUNT_QUERY, name=f"count-{attempt}")
        try:
            QueryExecutor(
                network, planning3, committee_size=4, rng=rng, accountant=accountant
            ).run()
            print(f"  query {attempt}: answered "
                  f"(ε left: {accountant.remaining().epsilon:.3f})")
        except QueryRejected as refusal:
            print(f"  query {attempt}: REFUSED by the keygen committee — {refusal}")
            refused = True
            break
    assert refused, "the accountant should eventually refuse"


if __name__ == "__main__":
    main()
