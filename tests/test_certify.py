"""Tests for differential-privacy certification (§4.2)."""

import math

import pytest

from repro.privacy.certify import CertificationError, Sensitivity, certify
from repro.privacy.sampling import amplified_epsilon
from repro.lang.parser import parse
from tests.conftest import small_env


def cert(source, env=None):
    return certify(parse(source), env or small_env())


class TestRelease:
    def test_em_certifies(self):
        c = cert("aggr = sum(db); r = em(aggr); output(r);")
        assert c.epsilon == pytest.approx(1.0)
        assert len(c.mechanisms) == 1
        assert c.mechanisms[0].mechanism == "em"

    def test_laplace_certifies(self):
        c = cert("aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);")
        assert c.epsilon == pytest.approx(1.0)

    def test_raw_output_rejected(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); output(aggr);")

    def test_raw_element_output_rejected(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); output(aggr[0]);")

    def test_declassify_of_raw_rejected(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); x = declassify(aggr[0]); output(x);")

    def test_declassify_of_released_ok(self):
        c = cert("aggr = sum(db); r = em(aggr); x = declassify(r); output(x);")
        assert c.epsilon == pytest.approx(1.0)

    def test_no_output_rejected(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); r = em(aggr);")

    def test_public_output_free(self):
        c = cert("aggr = sum(db); r = em(aggr); output(r); output(42);")
        assert c.epsilon == pytest.approx(1.0)


class TestPostprocessing:
    def test_arithmetic_on_released_is_free(self):
        c = cert(
            """
            aggr = sum(db);
            n = laplace(aggr[0], sens / epsilon);
            scaled = n * 2 + 1;
            output(scaled);
            """
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_branching_on_released_is_free(self):
        c = cert(
            """
            aggr = sum(db);
            n = laplace(aggr[0], sens / epsilon);
            r = 0;
            if n > 10 then r = 1; endif
            output(r);
            """
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_indexing_by_released_keeps_base_sensitive(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); w = em(aggr); output(aggr[w]);")


class TestSensitivityTracking:
    def test_one_hot_db_sensitivity(self):
        c = cert("aggr = sum(db); r = em(aggr); output(r);")
        sens = c.mechanisms[0].sensitivity
        assert sens.linf == 1.0
        assert sens.l1 == 2.0

    def test_bounded_rows(self):
        env = small_env(row_encoding="bounded")
        c = certify(
            parse("aggr = sum(db); n = laplace(aggr[0], 8 * sens / epsilon); output(n);"),
            env,
        )
        # Element sensitivity 1, scale 8 -> epsilon 1/8.
        assert c.epsilon == pytest.approx(1.0 / 8.0)

    def test_scaling_by_constant(self):
        c = cert(
            "aggr = sum(db); x = aggr[0] * 3; n = laplace(x, 3 * sens / epsilon); output(n);"
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_sum_of_sensitive_pair(self):
        c = cert(
            """
            aggr = sum(db);
            x = aggr[0] + aggr[1];
            n = laplace(x, 2 * sens / epsilon);
            output(n);
            """
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_nonlinear_needs_clip(self):
        with pytest.raises(CertificationError):
            cert(
                """
                aggr = sum(db);
                x = aggr[0] * aggr[1];
                n = laplace(x, sens / epsilon);
                output(n);
                """
            )

    def test_abs_is_lipschitz(self):
        c = cert(
            "aggr = sum(db); x = abs(aggr[0] - 24); n = laplace(x, sens / epsilon); output(n);"
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_clip_restores_certifiability(self):
        c = cert(
            """
            aggr = sum(db);
            x = clip(aggr[0] * aggr[1], 0, 1);
            n = laplace(x, sens / epsilon);
            output(n);
            """
        )
        assert math.isfinite(c.epsilon)

    def test_len_is_public(self):
        c = cert(
            """
            aggr = sum(db);
            c = len(aggr);
            x = aggr[0] * c;
            n = laplace(x, 8 * sens / epsilon);
            output(n);
            """
        )
        assert c.epsilon == pytest.approx(1.0)


class TestComposition:
    def test_two_mechanisms_add(self):
        c = cert(
            """
            aggr = sum(db);
            a = laplace(aggr[0], sens / epsilon);
            b = laplace(aggr[1], sens / epsilon);
            output(a); output(b);
            """
        )
        assert c.epsilon == pytest.approx(2.0)

    def test_mechanism_in_short_loop(self):
        c = cert(
            """
            aggr = sum(db);
            for i = 0 to 3 do
              n[i] = laplace(aggr[i], sens / epsilon);
            endfor
            output(n[0]);
            """
        )
        assert c.epsilon == pytest.approx(4.0)

    def test_mechanism_in_long_loop_multiplied(self):
        env = small_env(categories=128)
        c = certify(
            parse(
                """
                aggr = sum(db);
                for i = 0 to 127 do
                  n[i] = laplace(aggr[i], 128 * sens / epsilon);
                endfor
                output(n[0]);
                """
            ),
            env,
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_topk_oneshot_sqrt_k(self):
        c = cert("aggr = sum(db); r = em(aggr, 4); output(r[0]);")
        assert c.epsilon == pytest.approx(2.0)  # sqrt(4) * 1.0


class TestSamplingAmplification:
    def test_amplified_epsilon_charged(self):
        c = cert(
            """
            s = sampleUniform(db, 0.05);
            aggr = sum(s);
            r = em(aggr);
            output(r);
            """
        )
        assert c.epsilon == pytest.approx(amplified_epsilon(1.0, 0.05))
        assert c.epsilon < 0.1

    def test_full_sample_no_amplification(self):
        c = cert(
            """
            s = sampleUniform(db, 1.0);
            aggr = sum(s);
            r = em(aggr);
            output(r);
            """
        )
        assert c.epsilon == pytest.approx(1.0)


class TestImplicitFlows:
    def test_branch_on_secret_taints_writes(self):
        with pytest.raises(CertificationError):
            cert(
                """
                aggr = sum(db);
                x = 0;
                if aggr[0] > 10 then x = 1; endif
                output(x);
                """
            )

    def test_branch_on_secret_then_mechanism_needs_clip(self):
        # The tainted variable has unbounded sensitivity.
        with pytest.raises(CertificationError):
            cert(
                """
                aggr = sum(db);
                x = 0;
                if aggr[0] > 10 then x = 1; endif
                n = laplace(x, sens / epsilon);
                output(n);
                """
            )


class TestScaleValidation:
    def test_nonpositive_scale_rejected(self):
        with pytest.raises(CertificationError):
            cert("aggr = sum(db); n = laplace(aggr[0], 0); output(n);")

    def test_delta_accumulates(self):
        c = cert("aggr = sum(db); r = em(aggr); output(r);")
        assert 0 < c.delta < 1e-9


class TestSensitivityAlgebra:
    def test_scaled(self):
        s = Sensitivity(2.0, 1.0).scaled(-3.0)
        assert s == Sensitivity(6.0, 3.0)

    def test_add_and_join(self):
        a, b = Sensitivity(1.0, 1.0), Sensitivity(2.0, 0.5)
        assert (a + b) == Sensitivity(3.0, 1.5)
        assert a.join(b) == Sensitivity(2.0, 1.0)

    def test_unbounded(self):
        assert not Sensitivity.unbounded().is_finite()
