"""Pipeline fuzzing: randomly generated well-formed queries must flow
through parse -> simplify -> certify -> lower -> plan without crashing,
and their certificates must be sensible.

The generator builds queries from the grammar the certifier accepts:
an aggregation, a chain of linear transforms (with optional clip/abs),
and a mechanism release. Hypothesis shrinks any failure to a minimal
program, which makes planner bugs found here unusually easy to debug.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.interp import one_hot_database, run_reference
from repro.lang.parser import parse
from repro.planner.search import plan_query
from repro.privacy.certify import certify
from tests.conftest import small_env

CATEGORIES = 8


@st.composite
def linear_statements(draw):
    """A block of statements computing sensitive linear values."""
    statements = []
    n = draw(st.integers(min_value=0, max_value=3))
    vars_available = ["aggr[0]", "aggr[1]", "aggr[2]"]
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        a = draw(st.sampled_from(vars_available))
        b = draw(st.sampled_from(vars_available))
        k = draw(st.integers(min_value=1, max_value=4))
        name = f"t{i}"
        if kind == 0:
            statements.append(f"{name} = {a} + {b};")
        elif kind == 1:
            statements.append(f"{name} = {a} * {k};")
        elif kind == 2:
            statements.append(f"{name} = abs({a} - {b});")
        else:
            statements.append(f"{name} = clip({a}, 0, N);")
        vars_available.append(name)
    return statements, vars_available


@st.composite
def queries(draw):
    body, vars_available = draw(linear_statements())
    release = draw(st.integers(min_value=0, max_value=1))
    target = draw(st.sampled_from(vars_available))
    lines = ["aggr = sum(db);"] + body
    if release == 0:
        # Over-scale the noise by the worst-case sensitivity so every
        # generated combination certifies within a bounded epsilon.
        lines.append(f"r = laplace({target}, 64 * sens / epsilon);")
    else:
        lines.append("r = em(aggr);")
    lines.append("output(r);")
    return "\n".join(lines)


@given(source=queries())
@settings(max_examples=40, deadline=None)
def test_generated_queries_plan(source):
    env = small_env(num_participants=10**6, categories=CATEGORIES)
    result = plan_query(source, env, name="fuzz")
    assert result.succeeded
    cert = result.certificate
    assert 0 < cert.epsilon < 64
    assert math.isfinite(result.plan.cost.participant_expected_seconds)


@given(source=queries())
@settings(max_examples=25, deadline=None)
def test_generated_queries_run_centrally(source):
    import random

    db = one_hot_database([i % CATEGORIES for i in range(24)], CATEGORIES)
    outputs = run_reference(
        source, db, epsilon=2.0, sensitivity=1.0, rng=random.Random(0)
    )
    assert len(outputs) == 1


@given(source=queries())
@settings(max_examples=25, deadline=None)
def test_certified_epsilon_stable_under_simplification(source):
    from repro.lang.simplify import simplify

    env = small_env(num_participants=10**6, categories=CATEGORIES)
    program = parse(source)
    original = certify(program, env)
    simplified = certify(simplify(program), env)
    assert simplified.epsilon == pytest.approx(original.epsilon)
