"""Tests for operator expansion and plan scoring (§4.3-§4.6)."""

import pytest

from repro.planner.costmodel import CostModel
from repro.planner.expand import (
    Choice,
    ExpansionError,
    choice_space,
    instantiate,
    space_size,
)
from repro.planner.ir import SelectMax, VectorTransform
from repro.planner.plan import Location, count_committees, score_vignettes
from tests.test_ir_lowering import lower_source
from tests.conftest import small_env

MODEL = CostModel()


def first_choices(plan, overrides=None):
    """Pick the first option per op, with optional {key_prefix: index}."""
    overrides = overrides or {}
    chosen = []
    for op, options in choice_space(plan):
        index = 0
        for prefix, want in overrides.items():
            if options and options[0].key.startswith(prefix):
                index = want
        chosen.append(options[index])
    return chosen


class TestChoiceSpace:
    def test_top1_space(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        space = choice_space(plan)
        assert len(space) == 4  # input, aggregate, select_max, output
        agg_options = space[1][1]
        assert any(c.option == "flat_aggregator" for c in agg_options)
        assert any(c.option == "participant_tree" for c in agg_options)
        assert any(c.option == "committee_tree" for c in agg_options)
        select_options = space[2][1]
        assert any(c.option == "expo_fhe" for c in select_options)
        assert any(c.option == "gumbel_mpc" for c in select_options)

    def test_space_size_multiplicative(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        total = 1
        for _op, options in choice_space(plan):
            total *= len(options)
        assert space_size(plan) == total

    def test_linear_transform_allows_ahe(self):
        plan = lower_source(
            """
            aggr = sum(db);
            x = aggr[0] + aggr[1];
            n = laplace(x, 2 * sens / epsilon);
            output(n);
            """
        )
        transform_options = next(
            options
            for op, options in choice_space(plan)
            if isinstance(op, VectorTransform)
        )
        assert any(c.option == "aggregator_ahe" for c in transform_options)

    def test_nonlinear_transform_forbids_ahe(self):
        plan = lower_source(
            """
            aggr = sum(db);
            x = abs(aggr[0] - 24);
            n = laplace(x, sens / epsilon);
            output(n);
            """
        )
        transform_options = next(
            options
            for op, options in choice_space(plan)
            if isinstance(op, VectorTransform)
        )
        assert not any(c.option == "aggregator_ahe" for c in transform_options)
        assert any(c.option == "aggregator_fhe" for c in transform_options)

    def test_sampling_exposes_bin_choices(self):
        plan = lower_source(
            "s = sampleUniform(db, 0.1); aggr = sum(s); r = em(aggr); output(r);"
        )
        input_options = choice_space(plan)[0][1]
        assert all(c.option == "binned_upload" for c in input_options)
        assert len(input_options) > 1

    def test_topk_styles(self):
        plan = lower_source("aggr = sum(db); r = em(aggr, 3); output(r[0]);")
        select_options = next(
            options for op, options in choice_space(plan) if isinstance(op, SelectMax)
        )
        styles = {c.params[0] for c in select_options if c.option == "gumbel_mpc"}
        assert styles == {0, 1}  # oneshot and iterative


class TestInstantiation:
    def test_structure_gumbel(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        choices = first_choices(plan, {"select_max": 1})  # first gumbel option
        vignettes, scheme = instantiate(plan, choices, MODEL)
        names = [v.name for v in vignettes]
        assert names[0] == "input"
        assert names[1] == "keygen"
        assert "verify" in names
        assert "forwarding" in names
        assert "aggregate" in names
        assert "decrypt" in names
        assert "em-noise" in names
        assert "em-argmax" in names
        assert scheme.name == "ahe"  # gumbel path needs only additions

    def test_expo_path_uses_fhe(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        choices = first_choices(plan)  # expo_fhe is the first select option
        assert choices[2].option == "expo_fhe"
        vignettes, scheme = instantiate(plan, choices, MODEL)
        assert scheme.name == "fhe"
        assert any(v.name == "em-expo" for v in vignettes)

    def test_keygen_always_first_committee(self):
        plan = lower_source(
            "aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);"
        )
        vignettes, _ = instantiate(plan, first_choices(plan), MODEL)
        keygen = [v for v in vignettes if v.name == "keygen"]
        assert len(keygen) == 1
        assert keygen[0].committee_type == "keygen"

    def test_partial_prefix_is_subset(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        choices = first_choices(plan, {"select_max": 1})
        full, _ = instantiate(plan, choices, MODEL)
        partial, _ = instantiate(plan, choices[:2], MODEL, partial=True)
        assert len(partial) < len(full)

    def test_wrong_choice_count_rejected(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        with pytest.raises(ExpansionError):
            instantiate(plan, first_choices(plan)[:-1], MODEL)

    def test_committee_tree_aggregate(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        space = choice_space(plan)
        agg_choice = next(
            c for c in space[1][1] if c.option == "committee_tree"
        )
        choices = first_choices(plan, {"select_max": 1})
        choices[1] = agg_choice
        vignettes, _ = instantiate(plan, choices, MODEL)
        tree = [v for v in vignettes if v.name == "aggregate-tree"]
        assert tree and tree[0].location is Location.COMMITTEE


class TestScoring:
    def _score(self, source, overrides=None, env=None):
        plan = lower_source(source, env=env)
        choices = first_choices(plan, overrides or {"select_max": 1})
        vignettes, _ = instantiate(plan, choices, MODEL)
        return score_vignettes(vignettes, plan.env.num_participants, MODEL)

    def test_six_metrics_positive(self):
        score = self._score("aggr = sum(db); r = em(aggr); output(r);")
        cost = score.cost
        for metric in cost.METRICS:
            assert cost.get(metric) > 0, metric

    def test_committee_breakdown_types(self):
        score = self._score("aggr = sum(db); r = em(aggr); output(r);")
        types = {c.committee_type for c in score.committee_breakdown}
        assert "keygen" in types
        assert "decryption" in types
        assert "operations" in types

    def test_max_exceeds_expected(self):
        # At deployment scale the committee probability is tiny, so a
        # selected member's cost dwarfs the expectation.
        score = self._score(
            "aggr = sum(db); r = em(aggr); output(r);",
            env=small_env(num_participants=10**7, categories=8),
        )
        cost = score.cost
        assert cost.participant_max_seconds > cost.participant_expected_seconds

    def test_count_committees(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        choices = first_choices(plan, {"select_max": 1})
        vignettes, _ = instantiate(plan, choices, MODEL)
        assert count_committees(vignettes) >= 3  # keygen + dec + ops

    def test_more_participants_dilute_expected_committee_cost(self):
        src = "aggr = sum(db); r = em(aggr); output(r);"
        small = self._score(src, env=small_env(num_participants=10**5, categories=8))
        large = self._score(src, env=small_env(num_participants=10**8, categories=8))
        small_mpc = small.cost.participant_expected_seconds - small.participant_base_seconds
        large_mpc = large.cost.participant_expected_seconds - large.participant_base_seconds
        assert large_mpc < small_mpc
