"""Tests for the TFHE boolean-FHE model and its planner integration."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.tfhe import (
    TFHEEngine,
    addition_gate_count,
    comparison_gate_count,
)


def make_engine(seed=1):
    engine = TFHEEngine(random.Random(seed))
    return engine, engine.keygen()


class TestBits:
    def test_roundtrip(self):
        engine, sk = make_engine()
        for bit in (True, False):
            ct = engine.encrypt(sk.public, bit)
            assert engine.decrypt(sk, ct) == bit

    def test_int_roundtrip(self):
        engine, sk = make_engine()
        for value in (0, 1, 42, 255):
            bits = engine.encrypt_int(sk.public, value, 8)
            assert engine.decrypt_int(sk, bits) == value

    def test_int_range_checked(self):
        engine, sk = make_engine()
        with pytest.raises(ValueError):
            engine.encrypt_int(sk.public, 256, 8)
        with pytest.raises(ValueError):
            engine.encrypt_int(sk.public, -1, 8)

    def test_wrong_key_rejected(self):
        e1, sk1 = make_engine(1)
        e2, sk2 = make_engine(2)
        ct = e1.encrypt(sk1.public, True)
        with pytest.raises(ValueError):
            e2.decrypt(sk2, ct)


class TestGates:
    def test_truth_tables(self):
        engine, sk = make_engine()
        t = engine.encrypt(sk.public, True)
        f = engine.encrypt(sk.public, False)
        assert engine.decrypt(sk, engine.and_(t, f)) is False
        assert engine.decrypt(sk, engine.or_(t, f)) is True
        assert engine.decrypt(sk, engine.xor(t, t)) is False
        assert engine.decrypt(sk, engine.not_(f)) is True
        assert engine.decrypt(sk, engine.mux(t, t, f)) is True
        assert engine.decrypt(sk, engine.mux(f, t, f)) is False

    def test_gate_counting(self):
        engine, sk = make_engine()
        t = engine.encrypt(sk.public, True)
        before = engine.gates_evaluated
        engine.and_(t, t)
        engine.not_(t)  # free
        assert engine.gates_evaluated == before + 1

    def test_mixed_keys_rejected(self):
        e1, sk1 = make_engine(1)
        a = e1.encrypt(sk1.public, True)
        e2, sk2 = make_engine(2)
        b = e2.encrypt(sk2.public, True)
        with pytest.raises(ValueError):
            e1.and_(a, b)


class TestCircuits:
    def test_adder(self):
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 23, 8)
        b = engine.encrypt_int(sk.public, 19, 8)
        assert engine.decrypt_int(sk, engine.add_int(a, b)) == 42

    def test_adder_wraps(self):
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 200, 8)
        b = engine.encrypt_int(sk.public, 100, 8)
        assert engine.decrypt_int(sk, engine.add_int(a, b)) == (300 % 256)

    def test_comparison(self):
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 5, 8)
        b = engine.encrypt_int(sk.public, 9, 8)
        assert engine.decrypt(sk, engine.less_than(a, b)) is True
        assert engine.decrypt(sk, engine.less_than(b, a)) is False
        assert engine.decrypt(sk, engine.less_than(a, a)) is False

    def test_equals(self):
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 7, 8)
        b = engine.encrypt_int(sk.public, 7, 8)
        c = engine.encrypt_int(sk.public, 8, 8)
        assert engine.decrypt(sk, engine.equals(a, b)) is True
        assert engine.decrypt(sk, engine.equals(a, c)) is False

    def test_max(self):
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 13, 8)
        b = engine.encrypt_int(sk.public, 200, 8)
        assert engine.decrypt_int(sk, engine.max_int(a, b)) == 200

    def test_gate_count_formulas(self):
        """The planner's cost formulas match the circuits' actual counts."""
        engine, sk = make_engine()
        a = engine.encrypt_int(sk.public, 5, 16)
        b = engine.encrypt_int(sk.public, 9, 16)
        before = engine.gates_evaluated
        engine.less_than(a, b)
        assert engine.gates_evaluated - before == comparison_gate_count(16)
        before = engine.gates_evaluated
        engine.add_int(a, b)
        assert engine.gates_evaluated - before == addition_gate_count(16)


class TestPlannerIntegration:
    def test_tfhe_option_offered_for_nonlinear_transform(self):
        from repro.planner.expand import choice_space
        from repro.planner.ir import VectorTransform
        from tests.test_ir_lowering import lower_source

        plan = lower_source(
            """
            aggr = sum(db);
            x = abs(aggr[0] - 24);
            n = laplace(x, sens / epsilon);
            output(n);
            """
        )
        transform_options = next(
            options
            for op, options in choice_space(plan)
            if isinstance(op, VectorTransform)
        )
        assert any(c.option == "aggregator_tfhe" for c in transform_options)

    def test_tfhe_plan_structure(self):
        from repro.planner.costmodel import CostModel
        from repro.planner.expand import choice_space, instantiate
        from repro.planner.ir import VectorTransform
        from tests.test_ir_lowering import lower_source
        from tests.test_expand_plan import first_choices

        plan = lower_source(
            """
            aggr = sum(db);
            x = abs(aggr[0] - 24);
            n = laplace(x, sens / epsilon);
            output(n);
            """
        )
        space = choice_space(plan)
        choices = first_choices(plan)
        for i, (op, options) in enumerate(space):
            if isinstance(op, VectorTransform):
                choices[i] = next(
                    c for c in options if c.option == "aggregator_tfhe"
                )
        vignettes, _ = instantiate(plan, choices, CostModel())
        names = [v.name for v in vignettes]
        assert "scheme-switch" in names
        assert "scheme-convert" in names
        tfhe_stage = next(v for v in vignettes if v.crypto == "tfhe")
        assert tfhe_stage.work.tfhe_gates > 0

    def test_planner_prefers_tfhe_when_comparisons_dominate(self):
        """§3.3's dependency: for a comparison-heavy transform under a
        tight committee-time limit, the boolean scheme can win."""
        from repro.planner.costmodel import Constraints, Goal
        from repro.planner.search import Planner
        from tests.conftest import small_env

        env = small_env(num_participants=10**9, categories=2**12, epsilon=0.1)
        source = """
        aggr = sum(db);
        c = len(aggr);
        for i = 0 to c - 1 do
          scores[i] = clip(aggr[i], 0, 1000);
        endfor
        n = laplace(scores[0], sens / epsilon);
        output(n);
        """
        result = Planner(env, goal=Goal("participant_max_seconds")).plan_source(
            source, "cmp-heavy"
        )
        # The plan must at least have considered the TFHE stage; whichever
        # wins, the search space contained both and produced a valid plan.
        assert result.succeeded
