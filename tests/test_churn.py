"""Tests for committee failover under churn (§5.1).

The paper tolerates a fraction g of each committee going offline; if a
committee loses more than that, its tasks move to committee i+1 mod c.
"""

import random

import pytest

from repro.planner.search import plan_query
from repro.queries.catalog import get
from repro.runtime.committee import CommitteeError, CommitteePool
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork


class TestPoolFailover:
    def _online_filter(self, offline):
        return lambda members: [m for m in members if m not in offline]

    def test_healthy_committee_used(self):
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter(set()),
        )
        assert pool.allocate("a").members == [1, 2, 3, 4]

    def test_partial_churn_tolerated(self):
        """Losing one of four members (25%) keeps the committee usable."""
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter({2}),
        )
        committee = pool.allocate("a")
        assert committee.members == [1, 3, 4]

    def test_dead_committee_skipped(self):
        """A committee past the churn bound is skipped; the task moves on."""
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter({1, 2}),
        )
        committee = pool.allocate("a")
        assert committee.members == [5, 6, 7, 8]
        assert pool.skipped == [[1, 2, 3, 4]]

    def test_all_dead_raises(self):
        pool = CommitteePool(
            [[1, 2, 3, 4]],
            random.Random(0),
            online_filter=self._online_filter({1, 2, 3, 4}),
        )
        with pytest.raises(CommitteeError):
            pool.allocate("a")


class TestNetworkChurn:
    def test_take_offline(self):
        net = FederatedNetwork(10, rng=random.Random(0))
        net.take_offline([3, 7])
        assert not net.device(3).online
        assert net.online_members([1, 3, 5, 7]) == [1, 5]


class TestEndToEndWithChurn:
    def test_query_survives_churn(self):
        spec = get("top1")
        env = spec.environment(64, categories=8, epsilon=8.0)
        planning = plan_query(spec.source, env, name="top1")
        net = FederatedNetwork(64, rng=random.Random(20))
        net.load_categorical_data(8, distribution=[30, 1, 1, 1, 1, 1, 1, 1])
        # Take a quarter of the population offline before execution.
        net.take_offline(list(range(1, 17)))
        executor = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(21),
        )
        result = executor.run()
        assert result.value == 0

    def test_offline_devices_do_not_upload(self):
        spec = get("cms")
        env = spec.environment(40, categories=1, epsilon=8.0)
        planning = plan_query(spec.source, env, name="cms")
        net = FederatedNetwork(40, rng=random.Random(22))
        net.load_numeric_data(1, 1, width=1)  # everyone reports exactly 1
        net.take_offline(list(range(1, 11)))  # 10 devices gone
        executor = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(23),
        )
        result = executor.run()
        # Noisy count reflects only the 30 online devices.
        assert abs(result.value - 30) < 4.0
