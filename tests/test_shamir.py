"""Tests for Shamir secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import MERSENNE_61, PrimeField
from repro.crypto.shamir import (
    Share,
    add_shares,
    lagrange_coefficients_at_zero,
    reconstruct_secret,
    scale_share,
    share_secret,
    share_vector,
)

FIELD = PrimeField(MERSENNE_61)


class TestSharing:
    def test_roundtrip(self, rng):
        shares = share_secret(42, 2, [1, 2, 3, 4, 5], FIELD, rng)
        assert reconstruct_secret(shares[:3], FIELD) == 42

    def test_any_quorum_reconstructs(self, rng):
        shares = share_secret(777, 2, [1, 2, 3, 4, 5], FIELD, rng)
        import itertools

        for quorum in itertools.combinations(shares, 3):
            assert reconstruct_secret(quorum, FIELD) == 777

    def test_too_few_shares_give_garbage(self, rng):
        shares = share_secret(1234, 3, [1, 2, 3, 4, 5], FIELD, rng)
        assert reconstruct_secret(shares[:3], FIELD) != 1234  # w.h.p.

    def test_degree_zero_sharing(self, rng):
        shares = share_secret(9, 0, [1, 2, 3], FIELD, rng)
        assert all(s.y == 9 for s in shares)

    def test_rejects_duplicate_ids(self, rng):
        with pytest.raises(ValueError):
            share_secret(1, 1, [1, 1, 2], FIELD, rng)

    def test_rejects_party_zero(self, rng):
        with pytest.raises(ValueError):
            share_secret(1, 1, [0, 1, 2], FIELD, rng)

    def test_rejects_underfull_committee(self, rng):
        with pytest.raises(ValueError):
            share_secret(1, 3, [1, 2, 3], FIELD, rng)

    def test_reconstruct_empty_raises(self):
        with pytest.raises(ValueError):
            reconstruct_secret([], FIELD)

    def test_secrecy_of_single_share(self, rng):
        """Any single share of a degree-1 sharing is uniform-ish: two
        different secrets can produce the same share value."""
        share_values = set()
        for _ in range(200):
            shares = share_secret(5, 1, [1, 2, 3], FIELD, rng)
            share_values.add(shares[0].y)
        # With 200 fresh sharings of the same secret, party 1's share takes
        # many different values — the share alone carries no information.
        assert len(share_values) > 190


class TestHomomorphism:
    def test_share_addition(self, rng):
        a = share_secret(10, 2, [1, 2, 3, 4, 5], FIELD, rng)
        b = share_secret(32, 2, [1, 2, 3, 4, 5], FIELD, rng)
        summed = [add_shares(x, y, FIELD) for x, y in zip(a, b)]
        assert reconstruct_secret(summed[:3], FIELD) == 42

    def test_mismatched_parties_cannot_add(self, rng):
        a = share_secret(1, 1, [1, 2, 3], FIELD, rng)
        with pytest.raises(ValueError):
            add_shares(a[0], Share(2, 5), FIELD)

    def test_scalar_multiplication(self, rng):
        a = share_secret(7, 2, [1, 2, 3, 4, 5], FIELD, rng)
        scaled = [scale_share(s, 6, FIELD) for s in a]
        assert reconstruct_secret(scaled[:3], FIELD) == 42


class TestVectorSharing:
    def test_share_vector_shapes(self, rng):
        per_party = share_vector([1, 2, 3], 1, [1, 2, 3], FIELD, rng)
        assert set(per_party) == {1, 2, 3}
        assert all(len(v) == 3 for v in per_party.values())

    def test_share_vector_roundtrip(self, rng):
        values = [5, 10, 15, 20]
        per_party = share_vector(values, 1, [1, 2, 3], FIELD, rng)
        for i, expected in enumerate(values):
            shares = [per_party[p][i] for p in (1, 2)]
            assert reconstruct_secret(shares, FIELD) == expected


class TestLagrange:
    def test_weights_sum_property(self):
        # Interpolating the constant polynomial 1 must give 1.
        weights = lagrange_coefficients_at_zero([1, 2, 3], FIELD)
        assert sum(weights) % FIELD.modulus == 1

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            lagrange_coefficients_at_zero([1, 1, 2], FIELD)


@given(
    secret=st.integers(min_value=0, max_value=MERSENNE_61 - 1),
    threshold=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=60)
def test_roundtrip_property(secret, threshold):
    rng = random.Random(secret ^ threshold)
    ids = list(range(1, 11))
    shares = share_secret(secret, threshold, ids, FIELD, rng)
    rng.shuffle(shares)
    quorum = shares[: threshold + 1]
    assert reconstruct_secret(quorum, FIELD) == secret
