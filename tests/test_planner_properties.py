"""Property-based tests for planner invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.costmodel import Constraints, Goal
from repro.planner.search import Planner, PlanningFailed, plan_query
from tests.conftest import small_env

TOP1 = "aggr = sum(db); output(em(aggr));"
COUNT = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"


@given(
    exponent=st.integers(min_value=14, max_value=30),
    categories_log2=st.integers(min_value=3, max_value=15),
)
@settings(max_examples=12, deadline=None)
def test_returned_plans_always_positive_and_finite(exponent, categories_log2):
    env = small_env(num_participants=2**exponent, categories=2**categories_log2)
    result = plan_query(TOP1, env)
    cost = result.plan.cost
    for metric in cost.METRICS:
        value = cost.get(metric)
        assert math.isfinite(value)
        assert value > 0


@given(
    max_minutes=st.floats(min_value=5.0, max_value=300.0),
    max_gb=st.floats(min_value=0.5, max_value=16.0),
)
@settings(max_examples=10, deadline=None)
def test_constraints_always_respected_or_failure(max_minutes, max_gb):
    """Whatever limits the analyst picks, a returned plan obeys them."""
    env = small_env(num_participants=10**9, categories=2**12, epsilon=0.1)
    constraints = Constraints(
        participant_max_seconds=max_minutes * 60,
        participant_max_bytes=max_gb * 1e9,
    )
    try:
        result = plan_query(TOP1, env, constraints=constraints)
    except PlanningFailed:
        return  # acceptable outcome: nothing satisfies the limits
    cost = result.plan.cost
    assert cost.participant_max_seconds <= max_minutes * 60 + 1e-6
    assert cost.participant_max_bytes <= max_gb * 1e9 + 1e-6


@given(metric=st.sampled_from(list(Constraints().__dataclass_fields__)))
@settings(max_examples=6, deadline=None)
def test_goal_optimality_within_search(metric):
    """The plan the planner returns for goal g is never worse on g than
    the plan it returns for any other goal."""
    env = small_env(num_participants=10**8, categories=2**10, epsilon=0.1)
    chosen = plan_query(TOP1, env, goal=Goal(metric))
    other = plan_query(TOP1, env, goal=Goal("participant_max_bytes"))
    assert chosen.plan.cost.get(metric) <= other.plan.cost.get(metric) + 1e-6


def test_aggregator_cost_monotone_in_participants():
    values = []
    for exponent in (20, 24, 28):
        env = small_env(num_participants=2**exponent, categories=2**10, epsilon=0.1)
        values.append(plan_query(TOP1, env).plan.cost.aggregator_core_seconds)
    assert values == sorted(values)


def test_expected_committee_burden_vanishes_at_scale():
    burdens = []
    for exponent in (18, 24, 30):
        env = small_env(num_participants=2**exponent, categories=2**10, epsilon=0.1)
        result = plan_query(TOP1, env)
        score = result.plan.score
        burdens.append(
            result.plan.cost.participant_expected_seconds
            - score.participant_base_seconds
        )
    assert burdens[0] > burdens[-1]


def test_laplace_queries_cheaper_than_em_everywhere():
    env = small_env(num_participants=10**9, categories=2**12, epsilon=0.1)
    em_cost = plan_query(TOP1, env).plan.cost
    lap_cost = plan_query(COUNT, env).plan.cost
    assert lap_cost.aggregator_bytes <= em_cost.aggregator_bytes
    assert (
        lap_cost.participant_expected_seconds
        <= em_cost.participant_expected_seconds
    )


def test_deterministic_planning():
    """Planning is a pure function of (query, env, constraints, goal)."""
    env = small_env(num_participants=10**7, categories=2**8)
    a = plan_query(TOP1, env)
    b = plan_query(TOP1, env)
    assert a.plan.choices == b.plan.choices
    assert a.plan.cost == b.plan.cost
