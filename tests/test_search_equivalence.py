"""The optimized search must be a pure speedup, never a behavior change.

The incremental engine (prefix expansion + emission/cost caches +
cheapest-first ordering + optional parallel root split) must select the
*identical* plan — byte-for-byte after serialization — and traverse the
search space with identical effort counters as the retained reference
engine, on every catalog query, with and without the branch-and-bound
heuristics, and for any ``workers`` setting. These tests are the contract
that lets the benchmark call the two engines interchangeable.
"""

import json

import pytest

from repro.eval.experiments import PAPER_CONSTRAINTS, PAPER_N
from repro.planner.costmodel import Goal
from repro.planner.search import Planner, PlannerOutOfMemory, plan_query
from repro.planner.serialize import plan_to_dict
from repro.queries.catalog import ALL_QUERIES

#: Effort counters that must match between engines at identical settings.
#: (Cache and runtime counters are engine-specific by design.)
COUNTERS = (
    "space_size",
    "prefixes_considered",
    "candidates_scored",
    "candidates_feasible",
    "pruned_by_constraint",
    "pruned_by_bound",
    "nodes_reordered",
)

_cache = {}


def _run(spec, **kwargs):
    key = (spec.name, tuple(sorted(kwargs.items())))
    if key not in _cache:
        env = spec.environment(PAPER_N)
        planner = Planner(
            env,
            constraints=PAPER_CONSTRAINTS,
            goal=Goal("participant_expected_seconds"),
            **kwargs,
        )
        result = planner.plan_source(spec.source, spec.name)
        _cache[key] = (
            json.dumps(plan_to_dict(result.plan), sort_keys=True),
            {name: getattr(result.statistics, name) for name in COUNTERS},
        )
    return _cache[key]


@pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda spec: spec.name)
class TestEngineEquivalence:
    def test_plan_and_counters_match_reference(self, spec):
        optimized = _run(spec, engine="incremental")
        reference = _run(spec, engine="reference")
        assert optimized[0] == reference[0]
        assert optimized[1] == reference[1]

    def test_naive_ablation_matches_reference(self, spec):
        optimized = _run(spec, engine="incremental", heuristics=False)
        reference = _run(spec, engine="reference", heuristics=False)
        assert optimized[0] == reference[0]
        assert optimized[1] == reference[1]

    def test_parallel_workers_select_identical_plan(self, spec):
        sequential = _run(spec, engine="incremental")
        parallel = _run(spec, engine="incremental", workers=2)
        assert parallel[0] == sequential[0]

    def test_ordering_off_matches_reference_traversal(self, spec):
        optimized = _run(spec, engine="incremental", order_choices=False)
        reference = _run(spec, engine="reference", order_choices=False)
        assert optimized[0] == reference[0]
        assert optimized[1] == reference[1]


class TestNaiveSemanticsPreserved:
    def test_memory_budget_raises_in_both_engines(self):
        spec = ALL_QUERIES[1]  # topK: large enough space to overflow
        env = spec.environment(PAPER_N)
        for engine in ("incremental", "reference"):
            planner = Planner(
                env,
                constraints=PAPER_CONSTRAINTS,
                goal=Goal("participant_expected_seconds"),
                heuristics=False,
                memory_budget_candidates=5,
                engine=engine,
            )
            with pytest.raises(PlannerOutOfMemory):
                planner.plan_source(spec.source, spec.name)

    def test_plan_query_plumbs_budget_and_verify(self):
        # The convenience wrapper used to drop both kwargs silently.
        spec = ALL_QUERIES[1]
        env = spec.environment(PAPER_N)
        with pytest.raises(PlannerOutOfMemory):
            plan_query(
                spec.source,
                env,
                name=spec.name,
                heuristics=False,
                memory_budget_candidates=5,
                verify=False,
            )
        result = plan_query(spec.source, env, name=spec.name, verify=True)
        assert result.plan is not None
