"""Tests for runtime committees and cross-committee VSR."""

import random

import pytest

from repro.mpc.engine import CheatingDetected
from repro.runtime.committee import (
    Committee,
    CommitteePool,
    bigint_to_limbs,
    limbs_to_bigint,
)


def make_committee(name="c", members=(1, 2, 3, 4, 5), seed=1):
    return Committee(name, list(members), random.Random(seed))


class TestLimbs:
    def test_roundtrip(self):
        for value in (0, 1, 2**95, 2**200 + 12345, 2**300 - 1):
            limbs = bigint_to_limbs(value, 4)
            assert limbs_to_bigint(limbs) == value

    def test_overflow_detected(self):
        with pytest.raises(OverflowError):
            bigint_to_limbs(2**400, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bigint_to_limbs(-1, 2)


class TestCommittee:
    def test_share_and_open(self):
        c = make_committee()
        values = c.share_values([10, -20, 30])
        assert [c.engine.open(v) for v in values] == [10, -20, 30]

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Committee("tiny", [1, 2], random.Random(0))

    def test_vsr_between_committees(self):
        a = make_committee("a", seed=1)
        b = make_committee("b", (10, 11, 12, 13, 14), seed=2)
        values = a.share_values([7, 8, 9])
        moved = a.send_via_vsr(values, b)
        assert [b.engine.open(v) for v in moved] == [7, 8, 9]

    def test_vsr_into_different_size_committee(self):
        a = make_committee("a", (1, 2, 3, 4, 5, 6, 7), seed=3)
        b = make_committee("b", (1, 2, 3), seed=4)
        moved = a.send_via_vsr(a.share_values([42]), b)
        assert b.engine.open(moved[0]) == 42

    def test_vsr_then_compute(self):
        """Received shares are first-class: the new committee computes on
        them (the §5.4 pattern: decrypt committee -> noising committee)."""
        a = make_committee("a", seed=5)
        b = make_committee("b", (20, 21, 22, 23, 24), seed=6)
        moved = a.send_via_vsr(a.share_values([6, 7]), b)
        product = b.engine.mul(moved[0], moved[1])
        assert b.engine.open(product) == 42

    def test_chain_of_committees(self):
        committees = [
            make_committee(f"c{i}", tuple(range(10 * i + 1, 10 * i + 6)), seed=i)
            for i in range(4)
        ]
        values = committees[0].share_values([123])
        for src, dst in zip(committees, committees[1:]):
            values = src.send_via_vsr(values, dst)
        assert committees[-1].engine.open(values[0]) == 123

    def test_corrupted_share_detected_after_vsr(self):
        a = make_committee("a", seed=7)
        b = make_committee("b", (30, 31, 32, 33, 34), seed=8)
        moved = a.send_via_vsr(a.share_values([5]), b)
        b.engine.corrupt_share(moved[0], party_id=2)
        with pytest.raises(CheatingDetected):
            b.engine.open(moved[0])


class TestPool:
    def test_allocation_order(self):
        pool = CommitteePool([[1, 2, 3], [4, 5, 6]], random.Random(0))
        a = pool.allocate("first")
        b = pool.allocate("second")
        assert a.members == [1, 2, 3]
        assert b.members == [4, 5, 6]

    def test_wraparound(self):
        """When a small deployment has fewer committees than the plan
        needs, tasks wrap to committee i+1 mod c (§5.1)."""
        pool = CommitteePool([[1, 2, 3]], random.Random(0))
        a = pool.allocate("a")
        b = pool.allocate("b")
        assert b.members == a.members
        assert len(pool.allocated) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CommitteePool([], random.Random(0))
