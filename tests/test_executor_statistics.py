"""Statistical and adversarial end-to-end tests for the executor.

These are the heavier integration checks: output distributions of the
federated mechanisms (noise actually has the right scale after all the
fixpoint plumbing), and Byzantine-aggregator behaviour.
"""

import math
import random
import statistics

import pytest

from repro.planner.search import plan_query
from repro.queries.catalog import get
from repro.runtime.executor import ExecutionError, QueryExecutor
from repro.runtime.network import FederatedNetwork
from tests.conftest import small_env

COUNT = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"


class TestFederatedNoiseDistribution:
    def test_laplace_scale_correct(self):
        """Run the federated count query repeatedly on fixed data; the
        released values must center on the true count with the Laplace
        variance 2*(sens/eps)^2 that the certificate promises."""
        epsilon = 1.0  # scale 1.0 -> variance 2
        env = small_env(num_participants=32, categories=4, epsilon=epsilon)
        planning = plan_query(COUNT, env, name="count")
        network = FederatedNetwork(32, rng=random.Random(500))
        for device in network.devices:
            device.value = 0 if device.device_id <= 20 else 1
        true_count = 20
        samples = []
        for seed in range(40):
            executor = QueryExecutor(
                network,
                planning,
                committee_size=4,
                key_prime_bits=96,
                rng=random.Random(1000 + seed),
            )
            samples.append(executor.run().value)
            # Each run advances sortition; bring the registry back so runs
            # stay comparable.
        mean = statistics.mean(samples)
        variance = statistics.pvariance(samples)
        assert abs(mean - true_count) < 1.0
        assert 0.5 < variance < 8.0  # true variance 2, wide sampling band

    def test_em_randomizes_near_ties(self):
        """With two nearly-tied categories and moderate epsilon, the
        federated exponential mechanism must pick both sometimes."""
        spec = get("top1")
        env = spec.environment(33, categories=2, epsilon=0.4)
        planning = plan_query(spec.source, env, name="top1")
        network = FederatedNetwork(33, rng=random.Random(501))
        for device in network.devices:
            device.value = 0 if device.device_id <= 17 else 1
        winners = set()
        for seed in range(10):
            executor = QueryExecutor(
                network,
                planning,
                committee_size=4,
                key_prime_bits=96,
                rng=random.Random(2000 + seed),
            )
            winners.add(executor.run().value)
            if winners == {0, 1}:
                break
        assert winners == {0, 1}


class TestByzantineAggregator:
    def test_tampered_step_fails_audits(self):
        """A Byzantine aggregator that rewrites a committed step is caught
        by the participant audits, and the query aborts (§5.3)."""
        spec = get("top1")
        env = spec.environment(40, categories=4, epsilon=8.0)
        planning = plan_query(spec.source, env, name="top1")
        network = FederatedNetwork(40, rng=random.Random(502))
        network.load_categorical_data(4)

        executor = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(503),
        )

        # Intercept: corrupt the aggregator's step log right before the
        # audits run.
        from repro.runtime import executor as executor_module

        original = executor_module.AggregatorNode.run_audits

        def corrupt_then_audit(self, rng, auditors, leaves_each=2):
            self.publish_step_root()
            self.corrupt_step(0)
            return original(self, rng, auditors, leaves_each)

        executor_module.AggregatorNode.run_audits = corrupt_then_audit
        try:
            with pytest.raises(ExecutionError, match="audits failed"):
                executor.run()
        finally:
            executor_module.AggregatorNode.run_audits = original

    def test_upload_tampering_only_hurts_the_tampered(self):
        """If the aggregator corrupts stored uploads, the bound proofs fail
        and those uploads drop out — the query completes on the rest."""
        spec = get("top1")
        env = spec.environment(40, categories=4, epsilon=8.0)
        planning = plan_query(spec.source, env, name="top1")
        network = FederatedNetwork(40, rng=random.Random(504))
        network.load_categorical_data(4, distribution=[20, 1, 1, 1])

        executor = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(505),
        )
        from repro.runtime import executor as executor_module

        original = executor_module.AggregatorNode.verify_uploads

        def tamper_then_verify(self):
            self.tamper_with_upload(0)
            self.tamper_with_upload(1)
            return original(self)

        executor_module.AggregatorNode.verify_uploads = tamper_then_verify
        try:
            result = executor.run()
        finally:
            executor_module.AggregatorNode.verify_uploads = original
        assert len(result.rejected_devices) == 2
        assert result.value == 0  # dominant category still wins
