"""Tests for the extension features: manual certificates (CertiPriv-style),
quantile queries, and CostCO-style auto-calibration."""

import random

import pytest

from repro.lang.parser import parse
from repro.planner.costmodel import CostModel
from repro.planner.search import Planner, plan_query
from repro.privacy.certify import CertificationError, certify, manual_certificate
from repro.queries.extensions import quantile_query, range_count_query
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork
from tests.conftest import small_env


class TestManualCertificates:
    # A program whose conservative auto-certification fails: it releases a
    # value computed through a nonlinear product. The analyst knows the
    # product is bounded (every factor is 0/1) and supplies their own proof.
    SOURCE = """
    aggr = sum(db);
    x = aggr[0] * aggr[1];
    n = laplace(clip(x, 0, 100), 100 * sens / epsilon);
    output(n);
    """

    def test_auto_certification_accepts_clipped(self, env):
        # With the clip the program certifies automatically; strip the clip
        # to make the rejection case.
        rejected = self.SOURCE.replace("clip(x, 0, 100)", "x")
        with pytest.raises(CertificationError):
            certify(parse(rejected), env)

    def test_manual_certificate_plans(self, env):
        rejected = self.SOURCE.replace("clip(x, 0, 100)", "x")
        program = parse(rejected)
        cert = manual_certificate(program, env, epsilon=0.7, delta=1e-10)
        result = Planner(env).plan_program(program, "manual", certificate=cert)
        assert result.succeeded
        assert result.certificate.epsilon == pytest.approx(0.7)
        assert result.certificate.mechanisms[0].mechanism == "manual"

    def test_invalid_claims_rejected(self, env):
        program = parse(self.SOURCE)
        with pytest.raises(ValueError):
            manual_certificate(program, env, epsilon=0.0)
        with pytest.raises(ValueError):
            manual_certificate(program, env, epsilon=1.0, delta=-1.0)

    def test_manual_certificate_still_type_checks(self, env):
        program = parse("aggr = sum(db); output(em(undefined_var));")
        from repro.analysis.types import AnalysisError

        with pytest.raises(AnalysisError):
            manual_certificate(program, env, epsilon=1.0)


class TestQuantileQueries:
    def test_median_special_case(self):
        spec = quantile_query(0.5, categories=8)
        env = spec.environment(num_participants=10**6, categories=8)
        result = plan_query(spec.source, env, name=spec.name)
        assert result.succeeded

    @pytest.mark.parametrize("q", [0.25, 0.75, 0.9])
    def test_quantile_plans(self, q):
        spec = quantile_query(q, categories=8)
        env = spec.environment(num_participants=10**6, categories=8)
        assert plan_query(spec.source, env, name=spec.name).succeeded

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            quantile_query(0.0)
        with pytest.raises(ValueError):
            quantile_query(1.0)

    def test_quantile_end_to_end(self):
        """The 0.75-quantile of a population concentrated in bins 5-6."""
        spec = quantile_query(0.75, categories=8)
        env = spec.environment(num_participants=48, categories=8, epsilon=8.0)
        planning = plan_query(spec.source, env, name=spec.name)
        net = FederatedNetwork(48, rng=random.Random(41))
        net.load_categorical_data(8, distribution=[4, 4, 4, 4, 4, 20, 8, 1])
        result = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(42),
        ).run()
        assert result.value in (5, 6)


class TestRangeCount:
    def test_plans_and_runs(self):
        spec = range_count_query(2, 5, categories=8)
        env = spec.environment(num_participants=48, categories=8, epsilon=8.0)
        planning = plan_query(spec.source, env, name=spec.name)
        net = FederatedNetwork(48, rng=random.Random(43))
        net.load_categorical_data(8)
        result = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(44),
        ).run()
        truth = sum(1 for d in net.devices if 2 <= d.value <= 5)
        assert abs(result.value - truth) < 6.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_count_query(5, 2)


class TestAutoCalibration:
    def test_calibrated_model_usable(self):
        model = CostModel.calibrated_from_engine(num_parties=4, operations=8)
        assert model.constants["mpc_triple_seconds"] > 0
        assert model.constants["mpc_comparison_triples"] >= 1
        assert model.constants["mpc_comparison_rounds"] >= 1
        # Non-MPC constants keep the paper-anchored defaults.
        assert model.constants["zkp_verify"] == CostModel().constants["zkp_verify"]

    def test_calibrated_model_plans(self, env):
        model = CostModel.calibrated_from_engine(
            num_parties=4, operations=8, platform_scale=100.0
        )
        result = Planner(env, model=model).plan_source(
            "aggr = sum(db); output(em(aggr));", "calibrated"
        )
        assert result.succeeded

    def test_comparison_counts_match_protocol(self):
        """Derived comparison counts reflect the real edaBit circuit, which
        uses ~2 triples per masked bit."""
        model = CostModel.calibrated_from_engine(num_parties=4, operations=8)
        # bit_width 32 -> 73-bit mask -> ~146 triples (+ selects).
        assert 100 < model.constants["mpc_comparison_triples"] < 250
