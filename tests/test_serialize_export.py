"""Tests for plan serialization and CSV artifact export."""

import csv
import json

import pytest

from repro.cli import main
from repro.planner.search import plan_query
from repro.planner.serialize import plan_to_dict, planning_result_to_dict
from tests.conftest import small_env

TOP1 = "aggr = sum(db); output(em(aggr));"


class TestPlanSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        return plan_query(TOP1, small_env(num_participants=10**6), name="top1")

    def test_json_roundtrip(self, result):
        document = planning_result_to_dict(result)
        text = json.dumps(document)  # must be JSON-safe
        parsed = json.loads(text)
        assert parsed["succeeded"] is True
        assert parsed["plan"]["query"] == "top1"

    def test_cost_metrics_complete(self, result):
        document = plan_to_dict(result.plan)
        assert set(document["cost"]) == {
            "aggregator_core_seconds",
            "aggregator_bytes",
            "participant_expected_seconds",
            "participant_expected_bytes",
            "participant_max_seconds",
            "participant_max_bytes",
        }

    def test_vignettes_serialized(self, result):
        document = plan_to_dict(result.plan)
        names = [v["name"] for v in document["vignettes"]]
        assert "input" in names
        assert "keygen" in names
        committee = next(
            v for v in document["vignettes"] if v.get("committee_group")
        )
        assert committee["committee_type"] in ("keygen", "decryption", "operations")

    def test_work_omits_zero_counters(self, result):
        document = plan_to_dict(result.plan)
        for vignette in document["vignettes"]:
            assert all(value for value in vignette["work"].values())

    def test_certificate_section(self, result):
        document = planning_result_to_dict(result)
        cert = document["certificate"]
        assert cert["epsilon"] > 0
        assert cert["mechanisms"][0]["mechanism"] == "em"

    def test_cli_json_output(self, capsys):
        code = main(
            [
                "plan", "cms", "--json",
                "--participants", "1000000", "--categories", "1",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["plan"]["scheme"]["name"] == "ahe"


class TestExport:
    def test_export_all(self, tmp_path, capsys):
        # Use the CLI path so it is covered too; this regenerates every
        # artifact, so it is the slowest unit test in the suite.
        code = main(["eval", "--export", str(tmp_path)])
        assert code == 0
        expected = {
            "table1.csv",
            "table2.csv",
            "fig6_participant_costs.csv",
            "fig7_committee_costs.csv",
            "fig8_aggregator_costs.csv",
            "fig9_planner_runtime.csv",
            "fig10_scalability.csv",
            "fig11_power.csv",
            "hetero.csv",
        }
        written = {p.name for p in tmp_path.iterdir()}
        assert expected <= written
        with open(tmp_path / "table2.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        assert {"query", "action", "lines"} <= set(rows[0])
        with open(tmp_path / "fig10_scalability.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 42  # 14 sizes x 3 limits


class TestReproductionReport:
    def test_all_checks_pass(self, tmp_path):
        from repro.eval.report import main, run_checks

        checks = run_checks()
        failing = [c for c in checks if not c.passed]
        assert not failing, [f"{c.section}: {c.claim} -> {c.measured}" for c in failing]
        path = tmp_path / "REPORT.md"
        assert main(str(path)) == 0
        text = path.read_text()
        assert "checks pass" in text
        assert "FAIL" not in text
