"""Tests for the static plan verifier and the privacy-invariant source lint.

The mutation tests each corrupt one aspect of a known-good plan and assert
that exactly the matching invariant fires with a diagnostic naming the
guilty op/vignette — the verifier's job is not just "fail" but "say what
broke and where".
"""

import copy
import dataclasses
import random

import pytest

from repro import (
    FederatedNetwork,
    PlanVerificationError,
    Planner,
    QueryEnvironment,
    QueryExecutor,
)
from repro.cli import main
from repro.lang.ast import Assign, Var
from repro.planner.costmodel import Work, fhe_params_for
from repro.planner.expand import Choice, TREE_FANOUTS
from repro.planner.ir import NoiseOutput
from repro.planner.plan import Location, Vignette
from repro.privacy.accountant import PrivacyAccountant, PrivacyCost
from repro.queries.catalog import ALL_QUERIES
from repro.verify import (
    INVARIANTS,
    VerificationReport,
    Violation,
    lint_paths,
    verify_plan,
    verify_planning_result,
)
from repro.verify.invariants import INVARIANTS_BY_RULE

EM_SOURCE = "aggr = sum(db);\nresult = em(aggr);\noutput(result);"
LAPLACE_SOURCE = (
    "aggr = sum(db);\nresult = laplace(aggr[0], sens / epsilon);\noutput(result);"
)


def small_env() -> QueryEnvironment:
    return QueryEnvironment(num_participants=10**6, row_width=64, epsilon=1.0)


def plan_em():
    return Planner(small_env()).plan_source(EM_SOURCE, "em-query")


def plan_laplace():
    return Planner(small_env()).plan_source(LAPLACE_SOURCE, "laplace-query")


def failing_rules(report: VerificationReport):
    return {v.rule for v in report.violations}


def violation_for(report: VerificationReport, rule: str) -> Violation:
    matches = [v for v in report.violations if v.rule == rule]
    assert matches, (
        f"expected a {rule!r} violation, got: "
        + "; ".join(str(v) for v in report.violations)
    )
    return matches[0]


class TestCleanPlans:
    def test_em_plan_verifies_clean(self):
        report = verify_planning_result(plan_em())
        assert report.ok
        assert not report.violations
        # Every catalogued invariant except the accountant replay (which
        # needs a ledger) ran.
        assert len(report.checked_rules) == len(INVARIANTS) - 1

    def test_accountant_rule_runs_when_ledger_given(self):
        result = plan_laplace()
        acc = PrivacyAccountant(epsilon_budget=10.0, delta_budget=1e-3)
        report = verify_planning_result(result, accountant=acc)
        assert report.ok
        assert "dp-budget-afford" in report.checked_rules

    def test_all_catalog_queries_verify_clean_at_paper_scale(self):
        from repro.eval.experiments import plan_paper_query

        for spec in ALL_QUERIES:
            result = plan_paper_query(spec)
            report = verify_planning_result(result)
            assert report.ok, f"{spec.name} failed verification:\n{report.format()}"


class TestMutationDetection:
    """Each test injects one defect and asserts the matching rule fires
    with a diagnostic naming the corrupted op/vignette."""

    def test_undefined_variable_in_post_block(self):
        result = plan_em()
        result.logical_plan.post_statements.append(
            Assign("bogus", Var("ghost", line=9), line=9)
        )
        v = violation_for(verify_planning_result(result), "ssa-def-before-use")
        assert "'ghost'" in v.message
        assert "line 9" in v.subject

    def test_dropped_noise_op_leaves_unnoised_output(self):
        result = plan_laplace()
        result.logical_plan.ops = [
            op for op in result.logical_plan.ops if not isinstance(op, NoiseOutput)
        ]
        v = violation_for(
            verify_planning_result(result), "dp-noise-dominates-output"
        )
        assert "output" in v.subject
        assert "un-noised" in v.message

    def test_decrypt_moved_to_aggregator(self):
        result = plan_laplace()
        decrypt = next(v for v in result.plan.vignettes if v.name == "decrypt")
        assert decrypt.work.dist_decryptions > 0
        decrypt.location = Location.AGGREGATOR
        v = violation_for(
            verify_planning_result(result), "enc-decrypt-in-committee"
        )
        assert "'decrypt'" in v.subject
        assert "aggregator" in v.message

    def test_mechanism_vignette_in_the_clear(self):
        result = plan_laplace()
        agg = next(v for v in result.plan.vignettes if v.name == "aggregate")
        agg.crypto = "clear"
        v = violation_for(verify_planning_result(result), "enc-no-clear-secrets")
        assert "'aggregate'" in v.subject

    def test_multiplicative_work_under_ahe(self):
        result = plan_laplace()
        assert result.plan.scheme.name == "ahe"
        agg = next(v for v in result.plan.vignettes if v.name == "aggregate")
        agg.work.he_ct_mults = 4.0
        v = violation_for(verify_planning_result(result), "enc-ahe-depth")
        assert "'aggregate'" in v.subject
        assert "AHE" in v.message

    def test_tampered_certificate_epsilon(self):
        result = plan_laplace()
        cost = result.certificate.cost
        result.certificate.cost = PrivacyCost(cost.epsilon * 2, cost.delta)
        v = violation_for(verify_planning_result(result), "dp-epsilon-matches")
        assert "certificate" in v.subject
        assert "mechanism" in v.message

    def test_understaffed_committee_breaks_tail_bound(self):
        result = plan_laplace()
        params = result.plan.committee_params
        result.plan.score.committee_params = dataclasses.replace(
            params, committee_size=1
        )
        v = violation_for(verify_planning_result(result), "com-tail-bound")
        assert "m=1" in v.message
        assert "binomial tail" in v.message

    def test_committee_count_undercounts_plan(self):
        result = plan_laplace()
        params = result.plan.committee_params
        result.plan.score.committee_params = dataclasses.replace(
            params, num_committees=0
        )
        v = violation_for(
            verify_planning_result(result), "com-count-covers-plan"
        )
        assert "sized for 0 committees" in v.message

    def test_scheme_swap_detected(self):
        result = plan_laplace()
        assert result.plan.scheme.name == "ahe"
        result.plan.scheme = fhe_params_for(64, depth=6)
        v = violation_for(verify_planning_result(result), "ty-scheme-consistent")
        assert "fhe" in v.message and "ahe" in v.message

    def test_aggregator_he_after_decryption_committee(self):
        result = plan_laplace()
        names = [v.name for v in result.plan.vignettes]
        idx = names.index("decrypt")
        result.plan.vignettes.insert(
            idx + 1,
            Vignette("transform", Location.AGGREGATOR, "ahe", Work()),
        )
        v = violation_for(
            verify_planning_result(result), "enc-no-he-after-share"
        )
        assert "'transform'" in v.subject
        assert "sharings" in v.message

    def test_duplicate_keygen_committee(self):
        result = plan_laplace()
        keygen = next(v for v in result.plan.vignettes if v.name == "keygen")
        result.plan.vignettes.append(copy.deepcopy(keygen))
        v = violation_for(verify_planning_result(result), "com-keygen-unique")
        assert "2 keygen vignettes" in v.message

    def test_fanin_beyond_committee_capacity(self):
        result = plan_laplace()
        choices = result.plan.choice_list
        victim = next(i for i, c in enumerate(choices) if c.key.startswith("aggregate"))
        choices[victim] = Choice(
            choices[victim].key, "committee_tree", (max(TREE_FANOUTS) * 2,)
        )
        v = violation_for(verify_planning_result(result), "com-fanin-capacity")
        assert str(max(TREE_FANOUTS) * 2) in v.message

    def test_exhausted_budget_flagged_when_accountant_given(self):
        result = plan_laplace()
        acc = PrivacyAccountant(epsilon_budget=1e-6, delta_budget=1e-12)
        report = verify_planning_result(result, accountant=acc)
        v = violation_for(report, "dp-budget-afford")
        assert "ledger" in v.message

    def test_each_mutation_rule_is_catalogued(self):
        # Diagnostics always carry a paper reference via the catalog.
        for rule, inv in INVARIANTS_BY_RULE.items():
            assert inv.paper_ref, rule


class TestWiring:
    def test_planner_verify_flag_runs_clean(self):
        result = Planner(small_env(), verify=True).plan_source(
            LAPLACE_SOURCE, "laplace-query"
        )
        assert result.succeeded

    def test_planner_verify_default_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert Planner(small_env()).verify is True
        monkeypatch.delenv("REPRO_VERIFY")
        assert Planner(small_env()).verify is False

    def test_executor_gate_rejects_tampered_planning(self):
        result = plan_laplace()
        cost = result.certificate.cost
        result.certificate.cost = PrivacyCost(cost.epsilon * 2, cost.delta)
        network = FederatedNetwork(8, rng=random.Random(0))
        executor = QueryExecutor(network, result, rng=random.Random(0))
        with pytest.raises(PlanVerificationError) as excinfo:
            executor.run()
        assert not excinfo.value.report.ok
        assert "dp-epsilon-matches" in failing_rules(excinfo.value.report)

    def test_verify_plan_entry_point_matches_result_fields(self):
        result = plan_laplace()
        direct = verify_plan(
            result.plan, result.logical_plan, result.certificate
        )
        wrapped = verify_planning_result(result)
        assert direct.ok and wrapped.ok
        assert direct.checked_rules == wrapped.checked_rules


class TestCli:
    def test_verify_plan_command_clean(self, capsys):
        code = main(
            ["verify-plan", "cms", "--participants", "1000000", "--categories", "1"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_command_clean_on_src(self, capsys):
        code = main(["lint", "src/repro"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_command_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import math\n")
        code = main(["lint", str(bad)])
        assert code == 1
        assert "no-unused-imports" in capsys.readouterr().out


class TestSourceLint:
    def test_repro_sources_are_clean(self):
        report = lint_paths(["src/repro"])
        assert report.ok, report.format()

    def test_private_state_access_flagged(self, tmp_path):
        bad = tmp_path / "runtime" / "probe.py"
        bad.parent.mkdir()
        bad.write_text("def peek(ct):\n    return ct._plaintext\n")
        report = lint_paths([bad])
        v = violation_for(report, "no-private-state")
        assert "_plaintext" in v.message

    def test_cipher_forgery_flagged(self, tmp_path):
        bad = tmp_path / "forge.py"
        bad.write_text(
            "def forge(paillier):\n"
            "    return paillier.PaillierCiphertext(1, 2)\n"
        )
        v = violation_for(lint_paths([bad]), "no-private-state")
        assert "PaillierCiphertext" in v.message

    def test_crypto_modules_may_touch_cipher_state(self, tmp_path):
        ok = tmp_path / "crypto" / "inside.py"
        ok.parent.mkdir()
        ok.write_text("def peek(ct):\n    return ct._plaintext\n")
        assert lint_paths([ok]).ok

    def test_global_rng_in_privacy_flagged(self, tmp_path):
        bad = tmp_path / "privacy" / "noise.py"
        bad.parent.mkdir()
        bad.write_text("import random\n\ndef draw():\n    return random.random()\n")
        v = violation_for(lint_paths([bad]), "no-unseeded-rng")
        assert "random.random()" in v.message

    def test_unseeded_random_instance_flagged(self, tmp_path):
        bad = tmp_path / "mpc" / "shares.py"
        bad.parent.mkdir()
        bad.write_text("import random\n\ndef make():\n    return random.Random()\n")
        v = violation_for(lint_paths([bad]), "no-unseeded-rng")
        assert "seed" in v.message

    def test_seeded_random_instance_allowed(self, tmp_path):
        ok = tmp_path / "mpc" / "shares.py"
        ok.parent.mkdir()
        ok.write_text("import random\n\ndef make(s):\n    return random.Random(s)\n")
        assert lint_paths([ok]).ok

    def test_float_division_on_secret_flagged(self, tmp_path):
        bad = tmp_path / "mpc" / "maths.py"
        bad.parent.mkdir()
        bad.write_text('def half(x: "Share"):\n    return x / 2\n')
        v = violation_for(lint_paths([bad]), "no-float-on-secret")
        assert "division" in v.message

    def test_floor_division_on_secret_allowed(self, tmp_path):
        ok = tmp_path / "mpc" / "maths.py"
        ok.parent.mkdir()
        ok.write_text('def half(x: "Share"):\n    return x // 2\n')
        assert lint_paths([ok]).ok

    def test_unused_import_flagged_and_suppressible(self, tmp_path):
        bad = tmp_path / "a.py"
        bad.write_text("import math\n")
        assert not lint_paths([bad]).ok
        ok = tmp_path / "b.py"
        ok.write_text("import math  # verify: allow(no-unused-imports)\n")
        assert lint_paths([ok]).ok
