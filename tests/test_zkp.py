"""Tests for input well-formedness proofs (§5.3)."""

import pytest

from repro.crypto.zkp import (
    InputProof,
    InvalidProof,
    one_hot_statement,
    prove,
    range_statement,
    verify,
    verify_or_raise,
)

DIGEST = b"\xab" * 32


class TestOneHot:
    def test_valid_one_hot(self):
        stmt = one_hot_statement(4)
        values = [0, 0, 1, 0]
        proof = prove(stmt, values, device_id=7, round_number=1, ciphertext_digest=DIGEST)
        assert verify(proof, values)

    def test_two_hot_rejected(self):
        stmt = one_hot_statement(4)
        values = [0, 1, 1, 0]
        proof = prove(stmt, values, 7, 1, DIGEST)
        assert not verify(proof, values)

    def test_all_zero_rejected(self):
        stmt = one_hot_statement(3)
        values = [0, 0, 0]
        proof = prove(stmt, values, 7, 1, DIGEST)
        assert not verify(proof, values)

    def test_non_binary_rejected(self):
        stmt = one_hot_statement(3)
        values = [0, 2, 0]
        proof = prove(stmt, values, 7, 1, DIGEST)
        assert not verify(proof, values)

    def test_wrong_length_rejected(self):
        stmt = one_hot_statement(3)
        proof = prove(stmt, [1, 0], 7, 1, DIGEST)
        assert not verify(proof, [1, 0])


class TestRange:
    def test_in_range(self):
        stmt = range_statement(3, 0, 120)
        values = [23, 0, 120]
        proof = prove(stmt, values, 1, 0, DIGEST)
        assert verify(proof, values)

    def test_out_of_range_rejected(self):
        stmt = range_statement(2, 0, 120)
        values = [1000, 5]  # the 1,000-year-old user of §5.3
        proof = prove(stmt, values, 1, 0, DIGEST)
        assert not verify(proof, values)

    def test_negative_rejected(self):
        stmt = range_statement(1, 0, 10)
        proof = prove(stmt, [-1], 1, 0, DIGEST)
        assert not verify(proof, [-1])


class TestBinding:
    def test_witness_substitution_fails(self):
        """The proof commits to the witness: verifying against different
        values fails even if they satisfy the statement."""
        stmt = one_hot_statement(3)
        proof = prove(stmt, [1, 0, 0], 7, 1, DIGEST)
        assert not verify(proof, [0, 1, 0])

    def test_replay_to_other_device_fails(self):
        """Signed proofs prevent replay (§6: G16 is malleable)."""
        stmt = one_hot_statement(3)
        values = [1, 0, 0]
        proof = prove(stmt, values, device_id=7, round_number=1, ciphertext_digest=DIGEST)
        replayed = InputProof(
            statement=proof.statement,
            device_id=8,  # replaying another device's proof
            round_number=proof.round_number,
            ciphertext_digest=proof.ciphertext_digest,
            witness_digest=proof.witness_digest,
            binding=proof.binding,
        )
        assert not verify(replayed, values)

    def test_replay_to_other_round_fails(self):
        stmt = one_hot_statement(3)
        values = [1, 0, 0]
        proof = prove(stmt, values, 7, 1, DIGEST)
        replayed = InputProof(
            statement=proof.statement,
            device_id=proof.device_id,
            round_number=2,
            ciphertext_digest=proof.ciphertext_digest,
            witness_digest=proof.witness_digest,
            binding=proof.binding,
        )
        assert not verify(replayed, values)

    def test_verify_or_raise(self):
        stmt = one_hot_statement(2)
        proof = prove(stmt, [1, 1], 7, 1, DIGEST)
        with pytest.raises(InvalidProof):
            verify_or_raise(proof, [1, 1])

    def test_proof_size_is_constant(self):
        small = prove(one_hot_statement(2), [1, 0], 1, 0, DIGEST)
        large = prove(one_hot_statement(1000), [1] + [0] * 999, 1, 0, DIGEST)
        assert small.size_bytes == large.size_bytes
