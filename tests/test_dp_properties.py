"""Statistical differential-privacy verification.

These tests check the (ε, δ)-DP inequality empirically: run a mechanism
many times on two *neighboring* databases (differing in one participant)
and verify that no outcome's probability ratio exceeds e^ε beyond sampling
error. This is the strongest end-to-end check a reproduction can run on
its mechanisms — it catches both math bugs (wrong noise scale) and
plumbing bugs (noise added to the wrong quantity).
"""

import math
import random
from collections import Counter

import pytest

from repro.lang.interp import one_hot_database, run_reference
from repro.privacy.mechanisms import (
    exponential_mechanism_expo,
    exponential_mechanism_gumbel,
    laplace_mechanism,
)

#: Slack multiplier for sampling error: with ~20k runs per side, observed
#: ratios can exceed the true bound by a modest factor.
SLACK = 1.35


def max_probability_ratio(samples_a, samples_b):
    """Largest P_a(outcome)/P_b(outcome) over outcomes seen in both."""
    count_a, count_b = Counter(samples_a), Counter(samples_b)
    n_a, n_b = len(samples_a), len(samples_b)
    worst = 0.0
    for outcome, ca in count_a.items():
        cb = count_b.get(outcome, 0)
        if ca < 40 or cb < 40:
            continue  # too rare to estimate reliably
        worst = max(worst, (ca / n_a) / (cb / n_b))
    return worst


class TestLaplaceDP:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_ratio_bound(self, epsilon):
        rng = random.Random(100)
        runs = 20000
        # Neighboring counts: 10 vs 11 (one participant flips).
        a = [round(laplace_mechanism(10.0, 1.0, epsilon, rng)) for _ in range(runs)]
        b = [round(laplace_mechanism(11.0, 1.0, epsilon, rng)) for _ in range(runs)]
        ratio = max_probability_ratio(a, b)
        assert ratio <= math.exp(epsilon) * SLACK

    def test_wrong_scale_would_fail(self):
        """Sanity: noise at half the required scale violates the bound —
        the test has teeth."""
        rng = random.Random(101)
        epsilon = 1.0
        runs = 20000
        cheat = 2.5  # mechanism run with effectively 2.5x the epsilon
        a = [
            round(laplace_mechanism(10.0, 1.0, epsilon * cheat, rng))
            for _ in range(runs)
        ]
        b = [
            round(laplace_mechanism(11.0, 1.0, epsilon * cheat, rng))
            for _ in range(runs)
        ]
        ratio = max_probability_ratio(a, b)
        assert ratio > math.exp(epsilon) * SLACK


class TestExponentialMechanismDP:
    @pytest.mark.parametrize(
        "mechanism", [exponential_mechanism_gumbel, exponential_mechanism_expo]
    )
    def test_ratio_bound(self, mechanism):
        epsilon = 1.0
        runs = 20000
        rng = random.Random(102)
        scores_a = [3.0, 2.0, 1.0]
        scores_b = [2.0, 3.0, 1.0]  # one participant moved category
        a = [mechanism(scores_a, 1.0, epsilon, rng) for _ in range(runs)]
        b = [mechanism(scores_b, 1.0, epsilon, rng) for _ in range(runs)]
        ratio = max_probability_ratio(a, b)
        assert ratio <= math.exp(epsilon) * SLACK


class TestEndToEndQueryDP:
    def test_top1_reference_dp(self):
        """The whole top1 query (sum + em) satisfies its certified ε on
        neighboring one-hot databases."""
        epsilon = 1.0
        runs = 15000
        base = [0] * 6 + [1] * 5 + [2] * 5
        neighbor = list(base)
        neighbor[0] = 1  # one participant changes category
        source = "aggr = sum(db); output(em(aggr));"

        def sample(categories, seed):
            db = one_hot_database(categories, 3)
            rng = random.Random(seed)
            return [
                run_reference(source, db, epsilon=epsilon, rng=rng)[0]
                for _ in range(runs)
            ]

        a = sample(base, 103)
        b = sample(neighbor, 104)
        ratio = max_probability_ratio(a, b)
        # Changing one one-hot row moves two scores by 1 each (L∞=1); the
        # em guarantee is ε per draw.
        assert ratio <= math.exp(epsilon) * SLACK

    def test_laplace_count_reference_dp(self):
        epsilon = 1.0
        runs = 15000
        base = [0] * 8 + [1] * 8
        neighbor = [0] * 9 + [1] * 7
        source = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"

        def sample(categories, seed):
            db = one_hot_database(categories, 2)
            rng = random.Random(seed)
            return [
                round(run_reference(source, db, epsilon=epsilon, rng=rng)[0])
                for _ in range(runs)
            ]

        a = sample(base, 105)
        b = sample(neighbor, 106)
        ratio = max_probability_ratio(a, b)
        assert ratio <= math.exp(epsilon) * SLACK
