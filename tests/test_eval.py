"""Shape tests for the evaluation harness (§7).

These assert the *qualitative* claims of each table/figure — who wins, by
roughly what factor, where crossovers fall — which is what the reproduction
is accountable for (absolute numbers come from a calibrated model).
"""

import math

import pytest

from repro.eval.experiments import (
    PAPER_CONSTRAINTS,
    committee_selection_fraction,
    fig6,
    fig7,
    fig8,
    fig10,
    table1,
    table2,
)
from repro.eval.hetero import heterogeneity_experiment
from repro.eval.power import BATTERY_BUDGET_FRACTION, IPHONE_SE_BATTERY_MAH, fig11

EM_QUERIES = {"top1", "topK", "gap", "auction", "secrecy", "median"}
LAPLACE_QUERIES = {"hypotest", "cms", "bayes", "k-medians"}


class TestTable1:
    def test_rows(self):
        rows = table1()
        approaches = [r.approach for r in rows]
        assert approaches == [
            "FHE",
            "All-to-all MPC",
            "Böhler [14]",
            "Orchard [54]",
            "Arboretum",
        ]

    def test_arboretum_is_the_only_full_solution(self):
        rows = {r.approach: r for r in table1()}
        arb = rows["Arboretum"]
        assert arb.categorical == "yes"
        assert arb.optimization == "automatic"
        assert arb.participants_contribute == "yes"
        assert rows["Orchard [54]"].categorical == "limited"

    def test_fhe_takes_years(self):
        rows = {r.approach: r for r in table1()}
        assert "years" in rows["FHE"].aggregator_computation

    def test_arboretum_worst_case_about_a_gigabyte(self):
        rows = {r.approach: r for r in table1()}
        text = rows["Arboretum"].participant_bandwidth_worst
        assert "MB" in text or "GB" in text


class TestTable2:
    def test_ten_rows_with_lines(self):
        rows = table2()
        assert len(rows) == 10
        assert all(3 <= r.lines <= 40 for r in rows)


class TestFig6:
    def test_em_queries_cost_more(self):
        rows = {(r.query, r.system): r for r in fig6()}
        cheapest_em = min(
            rows[(q, "arboretum")].total_seconds for q in EM_QUERIES
        )
        priciest_laplace = max(
            rows[(q, "arboretum")].total_seconds for q in LAPLACE_QUERIES
        )
        assert cheapest_em > priciest_laplace

    def test_expected_costs_low_in_absolute_terms(self):
        """§7.2: each participant sends between ~100 kB and a few MB and
        computes for seconds to about a minute."""
        for r in fig6():
            assert 1e4 < r.total_bytes < 2e7
            assert 0.1 < r.total_seconds < 120

    def test_matches_legacy_systems_in_expectation(self):
        rows = {(r.query, r.system): r for r in fig6()}
        for query, system in (("cms", "Honeycrisp"), ("bayes", "Orchard")):
            ours = rows[(query, "arboretum")].total_seconds
            theirs = rows[(query, system)].total_seconds
            assert 0.5 < ours / theirs < 2.0


class TestFig7:
    def test_keygen_is_most_expensive_committee(self):
        """§7.2: the key-generation committee consumes ~700 MB and ~14 min."""
        rows = [r for r in fig7() if r.system == "arboretum" and r.query == "top1"]
        by_type = {r.committee_type: r for r in rows}
        keygen = by_type["keygen"]
        assert 8 * 60 < keygen.seconds < 20 * 60
        assert 4e8 < keygen.bytes_sent < 1e9

    def test_all_committee_costs_within_device_limits(self):
        """§7.2 constraints: <= 4 GB and <= 20 minutes."""
        for r in fig7():
            if r.system != "arboretum":
                continue
            assert r.seconds <= 20 * 60 + 1
            assert r.bytes_sent <= 4e9

    def test_orchard_committee_worse_than_arboretum_operations(self):
        rows = fig7()
        orchard_bayes = max(
            r.seconds for r in rows if r.query == "bayes" and r.system == "Orchard"
        )
        arboretum_ops = max(
            r.seconds
            for r in rows
            if r.query == "bayes"
            and r.system == "arboretum"
            and r.committee_type == "operations"
        )
        assert arboretum_ops < orchard_bayes

    def test_selection_fraction_below_one_percent(self):
        """§7.2: at most ~0.5% of participants serve per run."""
        for query in ("top1", "topK", "k-medians"):
            assert committee_selection_fraction(query) < 0.01


class TestFig8:
    def test_em_queries_need_more_forwarding(self):
        rows = {(r.query, r.system): r for r in fig8()}
        em_traffic = min(rows[(q, "arboretum")].forwarding_bytes for q in EM_QUERIES)
        lap_traffic = max(
            rows[(q, "arboretum")].forwarding_bytes for q in LAPLACE_QUERIES
        )
        assert em_traffic > 3 * lap_traffic

    def test_total_hours_below_paper_ceiling(self):
        """§7.2: below ~15 hours with 1,000 cores."""
        for r in fig8():
            assert r.hours_on_cores(1000) < 15

    def test_verification_dominates(self):
        """§7.6: checking the ZKPs is the aggregator's dominant job."""
        rows = [r for r in fig8() if r.system == "arboretum"]
        for r in rows:
            assert r.verification_core_seconds > r.operations_core_seconds


class TestFig10:
    @pytest.fixture(scope="class")
    def points(self):
        return fig10(exponents=range(20, 31), limits=(1000.0, None))

    def test_aggregator_grows_with_n(self, points):
        unlimited = [p for p in points if p.limit_core_hours is None]
        hours = [p.aggregator_hours for p in unlimited]
        # The chosen instantiation may switch once at small N (the em
        # crossover); past that the cost grows monotonically — and by
        # orders of magnitude overall.
        tail = hours[3:]
        assert tail == sorted(tail)
        assert hours[-1] > min(hours) * 100

    def test_expected_cost_declines_with_n(self, points):
        """Fig 10(b): the expected participant cost decreases with N
        because the chance of serving on a committee shrinks."""
        unlimited = [p for p in points if p.limit_core_hours is None]
        minutes = [p.expected_minutes for p in unlimited]
        assert minutes[0] > 2 * minutes[-1]

    def test_limited_line_stops(self, points):
        """The A=1000 line becomes infeasible once mandatory verification
        alone exceeds the limit (paper: beyond N=2^28)."""
        limited = [p for p in points if p.limit_core_hours == 1000.0]
        feasible = [p for p in limited if p.aggregator_hours is not None]
        infeasible = [p for p in limited if p.aggregator_hours is None]
        assert feasible and infeasible
        cutoff = max(p.num_participants for p in feasible)
        assert 2**27 <= cutoff <= 2**29
        assert all(p.num_participants > cutoff for p in infeasible)

    def test_limit_respected_when_feasible(self, points):
        for p in points:
            if p.limit_core_hours and p.aggregator_hours is not None:
                assert p.aggregator_hours <= p.limit_core_hours + 1e-6

    def test_max_cost_roughly_constant(self, points):
        unlimited = [p for p in points if p.limit_core_hours is None]
        maxima = [p.max_minutes for p in unlimited]
        assert max(maxima) < 3 * min(maxima)


class TestFig11:
    def test_all_queries_within_battery_budget(self):
        budget = BATTERY_BUDGET_FRACTION * IPHONE_SE_BATTERY_MAH
        rows = fig11()
        assert len(rows) == 10
        for r in rows:
            assert r.mah <= budget, r.query

    def test_power_nontrivial(self):
        """§7.4: 'certainly nontrivial, but manageable'."""
        for r in fig11():
            assert r.mah > 5.0

    def test_base_cost_small(self):
        for r in fig11():
            assert r.base_mah < r.mah


class TestHeterogeneity:
    @pytest.fixture(scope="class")
    def results(self):
        return heterogeneity_experiment(num_parties=12, num_scores=8)

    def test_geo_distribution_dominates(self, results):
        by_name = {r.scenario: r for r in results}
        geo = by_name["geo-distributed"]
        slow = by_name["4 slow devices"]
        # Paper: +606% for geo, +51% for slow devices.
        assert 300 < geo.increase_pct < 900
        assert 20 < slow.increase_pct < 120
        assert geo.increase_pct > 4 * slow.increase_pct

    def test_rounds_are_real_protocol_counts(self, results):
        assert results[0].rounds > 100
