"""Tests for the query-language front end (Fig 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    UnOp,
    Var,
    calls_in,
    format_program,
    walk_statements,
)
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse, parse_expression


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("for foo to total do endfor")
        kinds = [t.kind for t in tokens]
        assert kinds == ["FOR", "IDENT", "TO", "IDENT", "DO", "ENDFOR", "EOF"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.001 1e3 2.5e-2")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["INT", "FLOAT", "FLOAT", "FLOAT", "FLOAT"]

    def test_operators_longest_match(self):
        tokens = tokenize("a <= b == c && d")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == ["<=", "==", "&&"]

    def test_comments(self):
        tokens = tokenize("a = 1; // comment\nb = 2; # another\n")
        idents = [t.text for t in tokens if t.kind == "IDENT"]
        assert idents == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_precedence_cmp_over_and(self):
        expr = parse_expression("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"
        assert expr.right.op == ">"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary(self):
        expr = parse_expression("-x + !y")
        assert isinstance(expr.left, UnOp) and expr.left.op == "-"
        assert isinstance(expr.right, UnOp) and expr.right.op == "!"

    def test_nested_indexing(self):
        expr = parse_expression("db[i][j]")
        assert isinstance(expr, Index)
        assert isinstance(expr.base, Index)
        assert expr.base.base.name == "db"

    def test_call_with_args(self):
        expr = parse_expression("clip(x, 0, 10)")
        assert isinstance(expr, Call)
        assert expr.func == "clip"
        assert len(expr.args) == 3

    def test_call_no_args(self):
        expr = parse_expression("f()")
        assert isinstance(expr, Call) and expr.args == []

    def test_boolean_literals(self):
        from repro.lang.ast import BoolLit

        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_left_associativity(self):
        expr = parse_expression("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 3


class TestStatements:
    def test_assignment(self):
        program = parse("x = 42;")
        assert isinstance(program.statements[0], Assign)

    def test_index_assignment(self):
        program = parse("a[i+1] = 5;")
        stmt = program.statements[0]
        assert isinstance(stmt, IndexAssign)
        assert stmt.var == "a"

    def test_expression_statement(self):
        program = parse("output(x);")
        assert isinstance(program.statements[0], ExprStmt)

    def test_for_loop(self):
        program = parse("for i = 0 to 9 do s = s + i; endfor")
        loop = program.statements[0]
        assert isinstance(loop, For)
        assert loop.var == "i"
        assert len(loop.body) == 1

    def test_if_else(self):
        program = parse("if x > 0 then y = 1; else y = 2; endif")
        branch = program.statements[0]
        assert isinstance(branch, If)
        assert len(branch.then_body) == 1
        assert len(branch.else_body) == 1

    def test_if_without_else(self):
        program = parse("if x > 0 then y = 1; endif")
        assert program.statements[0].else_body == []

    def test_nested_structures(self):
        src = """
        for i = 0 to 3 do
          if a[i] > m then
            m = a[i];
            for j = 0 to i do k = k + 1; endfor
          endif
        endfor
        """
        program = parse(src)
        stmts = list(walk_statements(program.statements))
        assert sum(isinstance(s, For) for s in stmts) == 2
        assert sum(isinstance(s, If) for s in stmts) == 1

    def test_indexed_read_in_expression_statement(self):
        # `a[i]` followed by something that is not '=' must parse as a read.
        program = parse("x = a[i] + 1;")
        assert isinstance(program.statements[0], Assign)

    def test_missing_endfor(self):
        with pytest.raises(ParseError):
            parse("for i = 0 to 3 do x = 1;")

    def test_missing_semicolon_is_ok(self):
        # Semicolons are separators; the final one is optional.
        program = parse("x = 1")
        assert len(program.statements) == 1

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("x = ;")


class TestRoundtrip:
    SOURCES = [
        "aggr = sum(db); result = em(aggr); output(result);",
        "for i = 0 to 9 do a[i] = db[i][0]; endfor",
        "if x > 1 && !(y == 2) then output(x); else output(y); endif",
        "x = laplace(sum(db)[0], sens / epsilon); output(x);",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_format_parse_roundtrip(self, source):
        first = parse(source)
        formatted = format_program(first)
        second = parse(formatted)
        assert format_program(second) == formatted

    def test_calls_in(self):
        program = parse("a = sum(db); b = em(a); output(b);")
        names = sorted(c.func for c in calls_in(program.statements))
        assert names == ["em", "output", "sum"]


@given(
    value=st.integers(min_value=0, max_value=10**12),
)
@settings(max_examples=50)
def test_integer_literal_roundtrip(value):
    expr = parse_expression(str(value))
    assert isinstance(expr, IntLit)
    assert expr.value == value
