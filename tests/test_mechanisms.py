"""Tests for the DP mechanisms."""

import math
import random
import statistics
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.mechanisms import (
    dp_median_from_histogram,
    exponential_mechanism_expo,
    exponential_mechanism_gumbel,
    gumbel_sample,
    laplace_mechanism,
    laplace_sample,
    noisy_max_with_gap,
    quantile_rank,
    top_k_oneshot,
    top_k_pay_what_you_get,
)


class TestLaplace:
    def test_moments(self):
        rng = random.Random(1)
        samples = [laplace_sample(2.0, rng) for _ in range(20000)]
        assert abs(statistics.mean(samples)) < 0.1
        assert abs(statistics.pvariance(samples) - 8.0) < 0.8

    def test_mechanism_centers_on_value(self):
        rng = random.Random(2)
        noised = [laplace_mechanism(100.0, 1.0, 1.0, rng) for _ in range(5000)]
        assert abs(statistics.mean(noised) - 100.0) < 0.2

    def test_invalid_parameters(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            laplace_mechanism(0.0, 1.0, 0.0, rng)
        with pytest.raises(ValueError):
            laplace_mechanism(0.0, -1.0, 1.0, rng)
        with pytest.raises(ValueError):
            laplace_sample(0.0, rng)


class TestExponentialMechanism:
    def _empirical_distribution(self, mechanism, scores, eps, runs=4000, seed=0):
        rng = random.Random(seed)
        counts = Counter(mechanism(scores, 1.0, eps, rng) for _ in range(runs))
        return [counts.get(i, 0) / runs for i in range(len(scores))]

    def test_gumbel_matches_expo_distribution(self):
        """The two instantiations of Fig 4 sample the same distribution."""
        scores = [0.0, 2.0, 4.0]
        eps = 1.0
        p_expo = self._empirical_distribution(exponential_mechanism_expo, scores, eps, seed=1)
        p_gumbel = self._empirical_distribution(
            exponential_mechanism_gumbel, scores, eps, seed=2
        )
        for a, b in zip(p_expo, p_gumbel):
            assert abs(a - b) < 0.05

    def test_matches_theoretical_weights(self):
        scores = [0.0, 1.0, 3.0]
        eps = 2.0
        weights = [math.exp(eps * s / 2.0) for s in scores]
        total = sum(weights)
        expected = [w / total for w in weights]
        observed = self._empirical_distribution(
            exponential_mechanism_gumbel, scores, eps, runs=8000, seed=3
        )
        for o, e in zip(observed, expected):
            assert abs(o - e) < 0.04

    def test_base2_variant(self):
        """Ilvento's base-2 EM (§6) still prefers higher scores."""
        rng = random.Random(4)
        winners = Counter(
            exponential_mechanism_expo([0.0, 10.0], 1.0, 2.0, rng, base=2.0)
            for _ in range(500)
        )
        assert winners[1] > winners[0]

    def test_dominant_score_wins(self):
        rng = random.Random(5)
        assert exponential_mechanism_gumbel([0, 0, 1000, 0], 1.0, 1.0, rng) == 2

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            exponential_mechanism_gumbel([], 1.0, 1.0, random.Random(0))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            exponential_mechanism_expo([1.0], 1.0, 0.0, random.Random(0))


class TestTopK:
    def test_pay_what_you_get_distinct(self):
        rng = random.Random(6)
        scores = [100, 90, 80, 0, 0, 0]
        chosen = top_k_pay_what_you_get(scores, 3, 1.0, 5.0, rng)
        assert len(set(chosen)) == 3
        assert set(chosen) == {0, 1, 2}

    def test_oneshot_distinct(self):
        rng = random.Random(7)
        scores = [100, 90, 80, 0, 0, 0]
        chosen = top_k_oneshot(scores, 3, 1.0, 5.0, rng)
        assert len(set(chosen)) == 3
        assert set(chosen) == {0, 1, 2}

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_oneshot([1.0], 2, 1.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            top_k_pay_what_you_get([1.0, 2.0], 0, 1.0, 1.0, random.Random(0))


class TestGap:
    def test_clear_gap(self):
        rng = random.Random(8)
        winner, gap = noisy_max_with_gap([0.0, 100.0, 50.0], 1.0, 10.0, rng)
        assert winner == 1
        assert 20.0 < gap < 80.0

    def test_gap_nonnegative(self):
        rng = random.Random(9)
        for _ in range(50):
            _w, gap = noisy_max_with_gap([1.0, 1.0], 1.0, 0.5, rng)
            assert gap >= 0.0

    def test_needs_two_candidates(self):
        with pytest.raises(ValueError):
            noisy_max_with_gap([1.0], 1.0, 1.0, random.Random(0))


class TestMedian:
    def test_quantile_rank(self):
        assert quantile_rank(100, 0.5) == 50
        assert quantile_rank(101, 0.5) == 51
        assert quantile_rank(100, 0.25) == 25
        with pytest.raises(ValueError):
            quantile_rank(100, 0.0)

    def test_median_selects_correct_bin(self):
        rng = random.Random(10)
        # Median of [0]*10 + [1]*80 + [2]*10 lives in bin 1.
        hist = [10, 80, 10]
        winners = Counter(
            dp_median_from_histogram(hist, 1.0, 5.0, rng) for _ in range(200)
        )
        assert winners.most_common(1)[0][0] == 1

    def test_quantile_selection(self):
        rng = random.Random(11)
        hist = [50, 10, 40]
        winners = Counter(
            dp_median_from_histogram(hist, 1.0, 5.0, rng, quantile=0.9)
            for _ in range(200)
        )
        assert winners.most_common(1)[0][0] == 2

    def test_empty_histogram(self):
        with pytest.raises(ValueError):
            dp_median_from_histogram([0, 0], 1.0, 1.0, random.Random(0))


@given(
    scores=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50)
def test_em_returns_valid_index(scores, seed):
    rng = random.Random(seed)
    index = exponential_mechanism_gumbel(scores, 1.0, 1.0, rng)
    assert 0 <= index < len(scores)
    index2 = exponential_mechanism_expo(scores, 1.0, 1.0, rng)
    assert 0 <= index2 < len(scores)
