"""Tests for the branch-and-bound planner (§4.6, §7.3)."""

import pytest

from repro.planner.costmodel import Constraints, Goal
from repro.planner.search import (
    Planner,
    PlannerOutOfMemory,
    PlanningFailed,
    plan_query,
)
from repro.queries.catalog import ALL_QUERIES
from tests.conftest import small_env

TOP1 = "aggr = sum(db); r = em(aggr); output(r);"


class TestBasicPlanning:
    def test_plans_top1(self, env):
        result = plan_query(TOP1, env, name="top1")
        assert result.succeeded
        assert result.plan.query_name == "top1"
        assert result.statistics.candidates_scored > 0

    def test_choices_cover_all_ops(self, env):
        result = plan_query(TOP1, env)
        assert len(result.plan.choice_list) == len(result.logical_plan.ops)

    def test_statistics_populated(self, env):
        result = plan_query(TOP1, env)
        stats = result.statistics
        assert stats.space_size > 0
        assert stats.prefixes_considered > 0
        assert stats.runtime_seconds > 0

    def test_describe_is_readable(self, env):
        result = plan_query(TOP1, env)
        text = result.plan.describe()
        assert "vignette" in text
        assert "committees" in text


class TestConstraints:
    def test_infeasible_raises(self, env):
        constraints = Constraints(participant_expected_seconds=1e-9)
        with pytest.raises(PlanningFailed):
            plan_query(TOP1, env, constraints=constraints)

    def test_constraint_forces_outsourcing(self):
        """Limiting the aggregator forces outsourcing the sum (§7.6)."""
        env = small_env(num_participants=2**30, categories=2**15, epsilon=0.1)
        # Force the flat-aggregation baseline by minimizing participant
        # bytes (tree helpers receive fanout-many ciphertexts).
        flat = plan_query(TOP1, env, name="flat", goal=Goal("participant_expected_bytes"))
        assert flat.plan.choices["aggregate[1]"] == "flat_aggregator"
        flat_agg = flat.plan.cost.aggregator_core_seconds
        squeezed = plan_query(
            TOP1,
            env,
            name="squeezed",
            goal=Goal("participant_expected_bytes"),
            constraints=Constraints(aggregator_core_seconds=flat_agg * 0.95),
        )
        # The squeezed plan must have moved the sum off the aggregator.
        assert squeezed.plan.choices["aggregate[1]"] != "flat_aggregator"
        assert squeezed.plan.cost.aggregator_core_seconds < flat_agg
        assert (
            squeezed.plan.cost.participant_expected_bytes
            >= flat.plan.cost.participant_expected_bytes
        )

    def test_impossible_aggregator_limit_raises(self):
        """Below the mandatory ZKP-verification work no plan exists — the
        Fig 10 red line stops (§7.6)."""
        env = small_env(num_participants=2**30, categories=2**15, epsilon=0.1)
        with pytest.raises(PlanningFailed):
            plan_query(
                TOP1,
                env,
                constraints=Constraints(aggregator_core_seconds=1000.0),
            )

    def test_goal_metric_respected(self, env):
        by_seconds = plan_query(TOP1, env, goal=Goal("participant_expected_seconds"))
        by_agg = plan_query(TOP1, env, goal=Goal("aggregator_core_seconds"))
        assert (
            by_agg.plan.cost.aggregator_core_seconds
            <= by_seconds.plan.cost.aggregator_core_seconds + 1e-9
        )


class TestBranchAndBound:
    def test_pruning_reduces_work(self, env):
        with_heuristics = Planner(env).plan_source(TOP1, "bb")
        without = Planner(env, heuristics=False).plan_source(TOP1, "naive")
        assert (
            with_heuristics.statistics.candidates_scored
            <= without.statistics.candidates_scored
        )
        # Both find equally good plans (pruning is safe).
        goal = Goal()
        assert goal.score(with_heuristics.plan.cost) == pytest.approx(
            goal.score(without.plan.cost)
        )

    def test_naive_mode_runs_out_of_memory(self, env):
        """§7.3: without heuristics the planner OOMs on bigger queries."""
        planner = Planner(env, heuristics=False, memory_budget_candidates=5)
        with pytest.raises(PlannerOutOfMemory):
            planner.plan_source(TOP1, "naive")

    def test_bound_prunes_counted(self, env):
        result = Planner(env).plan_source(TOP1, "bb")
        assert result.statistics.pruned_by_bound > 0


class TestAllCatalogQueries:
    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_catalog_query_plans_at_small_scale(self, spec):
        categories = max(8, spec.categories if spec.categories <= 32 else 8)
        if spec.name == "k-medians":
            categories = 20
        if spec.name == "bayes":
            categories = 16
        env = spec.environment(num_participants=10**6, categories=categories)
        result = plan_query(spec.source, env, name=spec.name)
        assert result.succeeded
        cost = result.plan.cost
        assert cost.participant_expected_seconds > 0
        assert cost.aggregator_core_seconds > 0
