"""Tests for the query catalog (Table 2): every query parses, certifies,
lowers, and plans."""

import pytest

from repro.lang.parser import parse
from repro.planner.ir import lower
from repro.planner.search import plan_query
from repro.privacy.certify import certify
from repro.queries.catalog import ALL_QUERIES, BY_NAME, LEGACY_SYSTEMS, get


def small_environment(spec):
    categories = 8
    if spec.name == "k-medians":
        categories = 20
    elif spec.name in ("hypotest", "cms"):
        categories = 1
    elif spec.name == "bayes":
        categories = 16
    return spec.environment(num_participants=10**6, categories=categories)


class TestCatalog:
    def test_ten_queries(self):
        assert len(ALL_QUERIES) == 10
        assert set(BY_NAME) == {
            "top1",
            "topK",
            "gap",
            "auction",
            "hypotest",
            "secrecy",
            "median",
            "cms",
            "bayes",
            "k-medians",
        }

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get("nonexistent")

    def test_legacy_attribution(self):
        assert LEGACY_SYSTEMS["cms"] == "Honeycrisp"
        assert LEGACY_SYSTEMS["bayes"] == "Orchard"
        assert LEGACY_SYSTEMS["k-medians"] == "Orchard"
        assert LEGACY_SYSTEMS["median"] == "Böhler"

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_queries_are_concise(self, spec):
        """Table 2's point: queries are a handful of lines."""
        assert 3 <= spec.lines <= 40

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_parses(self, spec):
        program = parse(spec.source)
        assert program.statements

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_certifies(self, spec):
        env = small_environment(spec)
        certificate = certify(parse(spec.source), env)
        assert certificate.epsilon > 0
        kinds = {m.mechanism for m in certificate.mechanisms}
        if spec.uses_em:
            assert "em" in kinds
        else:
            assert kinds == {"laplace"}

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_lowers(self, spec):
        env = small_environment(spec)
        program = parse(spec.source)
        certificate = certify(program, env)
        logical = lower(program, env, certificate, spec.name)
        assert logical.aggregate_var is not None
        assert logical.post_statements

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_plans_at_paper_scale(self, spec):
        result = plan_query(spec.source, spec.environment(), name=spec.name)
        assert result.succeeded

    def test_secrecy_has_amplification(self):
        spec = get("secrecy")
        env = small_environment(spec)
        certificate = certify(parse(spec.source), env)
        # The sampled mechanism costs far less than the ambient epsilon.
        assert certificate.epsilon < env.epsilon / 2

    def test_topk_charges_sqrt_k(self):
        spec = get("topK")
        env = small_environment(spec)
        certificate = certify(parse(spec.source), env)
        assert certificate.epsilon == pytest.approx(env.epsilon * 5**0.5)

    def test_em_queries_use_exponential_scheme(self):
        for name in ("top1", "topK", "gap", "auction", "secrecy", "median"):
            assert get(name).uses_em
