"""Tests for the BGV FHE model."""

import random

import pytest

from repro.crypto import bgv


def make_key(plaintext_modulus=1 << 30, ring_log2=15, modulus_bits=135, seed=3):
    params = bgv.BGVParams(plaintext_modulus, ring_log2, modulus_bits)
    return bgv.keygen(params, random.Random(seed))


class TestParams:
    def test_paper_typical_parameters(self):
        """§6: plaintext modulus 2^30, 135-bit ciphertext modulus, degree 2^15."""
        params = bgv.BGVParams()
        assert params.plaintext_modulus == 1 << 30
        assert params.slots == 2**15
        assert params.ciphertext_bytes == 2 * 2**15 * 17  # ~1.1 MB
        assert 1.0e6 < params.ciphertext_bytes < 1.2e6

    def test_security_table_enforced(self):
        with pytest.raises(ValueError):
            bgv.BGVParams(ring_degree_log2=12, ciphertext_modulus_bits=135)

    def test_min_ring_degree_monotone(self):
        degrees = [bgv.min_ring_degree_log2(b) for b in (27, 54, 109, 218, 438)]
        assert degrees == sorted(degrees)

    def test_for_depth_scales_modulus(self):
        base = bgv.BGVParams()
        deeper = base.for_depth(5)
        assert deeper.ciphertext_modulus_bits > base.for_depth(1).ciphertext_modulus_bits

    def test_max_levels_positive_for_defaults(self):
        assert bgv.BGVParams().max_levels >= 2


class TestEncryption:
    def test_roundtrip(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [1, 2, 3])
        assert bgv.decrypt(sk, ct, count=3) == [1, 2, 3]

    def test_zero_padding(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [7])
        values = bgv.decrypt(sk, ct)
        assert values[0] == 7
        assert all(v == 0 for v in values[1:])

    def test_too_many_values_rejected(self):
        sk = make_key(ring_log2=12, modulus_bits=109)
        with pytest.raises(ValueError):
            bgv.encrypt(sk.public, [0] * (2**12 + 1))

    def test_wrong_key_rejected(self):
        sk1 = make_key(seed=1)
        sk2 = make_key(seed=2)
        ct = bgv.encrypt(sk1.public, [1])
        with pytest.raises(ValueError):
            bgv.decrypt(sk2, ct)


class TestHomomorphicOps:
    def test_add_sub(self):
        sk = make_key()
        a = bgv.encrypt(sk.public, [10, 20])
        b = bgv.encrypt(sk.public, [1, 2])
        assert bgv.decrypt(sk, bgv.add(a, b), 2) == [11, 22]
        assert bgv.decrypt(sk, bgv.sub(a, b), 2) == [9, 18]

    def test_multiply_consumes_level(self):
        sk = make_key()
        a = bgv.encrypt(sk.public, [3])
        b = bgv.encrypt(sk.public, [4])
        product = bgv.multiply(a, b)
        assert product.level == 1
        assert bgv.decrypt(sk, product, 1) == [12]

    def test_noise_budget_exhaustion(self):
        sk = make_key(plaintext_modulus=1 << 30, modulus_bits=135)
        depth = sk.params.max_levels
        ct = bgv.encrypt(sk.public, [1])
        for _ in range(depth + 1):
            ct = bgv.multiply(ct, ct)
        with pytest.raises(bgv.NoiseBudgetExceeded):
            bgv.decrypt(sk, ct)

    def test_additions_do_not_consume_levels(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [1])
        for _ in range(100):
            ct = bgv.add(ct, ct)
        assert ct.level == 0
        assert bgv.decrypt(sk, ct, 1) == [2**100 % sk.params.plaintext_modulus]

    def test_plaintext_ops(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [5, 6])
        assert bgv.decrypt(sk, bgv.add_plain(ct, [1, 1]), 2) == [6, 7]
        assert bgv.decrypt(sk, bgv.multiply_plain(ct, [2, 3]), 2) == [10, 18]

    def test_rotation(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [1, 2, 3, 4])
        rotated = bgv.rotate(ct, 1)
        assert bgv.decrypt(sk, rotated, 3) == [2, 3, 4]

    def test_total_sum_slots(self):
        sk = make_key()
        ct = bgv.encrypt(sk.public, [1, 2, 3, 4, 5])
        summed = bgv.total_sum_slots(ct, 8)
        assert bgv.decrypt(sk, summed, 1) == [15]

    def test_mixed_keys_rejected(self):
        sk1, sk2 = make_key(seed=5), make_key(seed=6)
        a = bgv.encrypt(sk1.public, [1])
        b = bgv.encrypt(sk2.public, [1])
        with pytest.raises(ValueError):
            bgv.add(a, b)

    def test_sum_ciphertexts(self):
        sk = make_key()
        cts = [bgv.encrypt(sk.public, [i]) for i in range(5)]
        assert bgv.decrypt(sk, bgv.sum_ciphertexts(cts), 1) == [10]


class TestAggregationScenario:
    def test_billion_scale_plaintext_modulus(self):
        """Summing binary one-hot inputs from 10^9 users fits 2^30 slots."""
        sk = make_key()
        ct = bgv.encrypt(sk.public, [1])
        # Simulate huge sums with plaintext multiplication.
        big = bgv.multiply_plain(ct, [10**9])
        assert bgv.decrypt(sk, big, 1) == [10**9]


class TestKernelEdgeCases:
    """Edge cases the numpy kernels must preserve from the seed semantics."""

    def test_negative_rotate_offsets(self):
        sk = make_key(ring_log2=12, modulus_bits=109)
        n = sk.params.slots
        values = list(range(16))
        ct = bgv.encrypt(sk.public, values)
        # rotate(-k) is a right-rotation: slot i moves to slot i+k; with
        # zero padding the first k slots come from the (zero) tail.
        rotated = bgv.decrypt(sk, bgv.rotate(ct, -3))
        assert rotated[:3] == [0, 0, 0]
        assert rotated[3:19] == values
        # A full turn (and multiples) is the identity, either direction.
        assert bgv.decrypt(sk, bgv.rotate(ct, n)) == bgv.decrypt(sk, ct)
        assert bgv.decrypt(sk, bgv.rotate(ct, -n)) == bgv.decrypt(sk, ct)

    @pytest.mark.parametrize("width", [1, 3, 5, 6, 7])
    def test_total_sum_slots_non_power_of_two_widths(self, width):
        sk = make_key(ring_log2=12, modulus_bits=109)
        values = [1, 2, 3, 4, 5, 6, 7][:width]
        ct = bgv.encrypt(sk.public, values)
        assert bgv.decrypt(sk, bgv.total_sum_slots(ct, width), 1) == [sum(values)]

    def test_total_sum_slots_rejects_dirty_tail(self):
        """Slots beyond ``width`` must be zero or the fold silently corrupts."""
        sk = make_key(ring_log2=12, modulus_bits=109)
        ct = bgv.encrypt(sk.public, [1, 2, 3, 4, 9])
        with pytest.raises(ValueError, match="beyond width"):
            bgv.total_sum_slots(ct, 4)
        # A rotation that drags values into the tail is caught too.
        full = bgv.encrypt(sk.public, [1] * sk.params.slots)
        with pytest.raises(ValueError, match="beyond width"):
            bgv.total_sum_slots(full, 8)
        with pytest.raises(ValueError):
            bgv.total_sum_slots(ct, 0)

    def test_object_dtype_fallback_large_modulus(self):
        """Plaintext moduli past the int64 bound fall back to exact big ints."""
        t = (1 << 61) - 1  # (t-1)^2 overflows int64: object dtype required
        sk = make_key(plaintext_modulus=t, ring_log2=13, modulus_bits=218)
        assert sk.params.slot_dtype is object
        big = t - 2
        a = bgv.encrypt(sk.public, [big, 5])
        b = bgv.encrypt(sk.public, [3, big])
        assert bgv.decrypt(sk, bgv.add(a, b), 2) == [(big + 3) % t, (5 + big) % t]
        assert bgv.decrypt(sk, bgv.multiply(a, b), 2) == [
            (big * 3) % t,
            (5 * big) % t,
        ]
        assert bgv.decrypt(sk, bgv.sum_ciphertexts([a, a, a]), 1) == [(3 * big) % t]
        assert bgv.decrypt(sk, bgv.total_sum_slots(a, 2), 1) == [(big + 5) % t]

    def test_fast_path_boundary(self):
        """The int64 fast path is taken exactly while (t-1)^2 fits a word."""
        fits = 1 << 31
        assert bgv.BGVParams(
            plaintext_modulus=fits, ciphertext_modulus_bits=135
        ).slot_dtype is not object
        too_big = 1 << 33
        assert bgv.BGVParams(
            plaintext_modulus=too_big, ciphertext_modulus_bits=135
        ).slot_dtype is object

    def test_noise_budget_propagates_through_vectorized_ops(self):
        sk = make_key()
        depth = sk.params.max_levels
        ct = bgv.encrypt(sk.public, [2])
        for _ in range(depth + 1):
            ct = bgv.multiply_plain(ct, [1])
        # Exhausted budget survives adds, rotations, and stacked sums...
        for derived in (
            bgv.add(ct, bgv.encrypt(sk.public, [0])),
            bgv.rotate(ct, 1),
            bgv.sum_ciphertexts([ct, bgv.encrypt(sk.public, [0])]),
        ):
            with pytest.raises(bgv.NoiseBudgetExceeded):
                bgv.decrypt(sk, derived)
        # ...and the max-level rule matches the seed: the fresh ciphertext
        # does not dilute the exhausted one's level.
        assert bgv.sum_ciphertexts([ct, bgv.encrypt(sk.public, [0])]).level == ct.level

    def test_encrypt_reduces_oversized_inputs(self):
        sk = make_key()
        t = sk.params.plaintext_modulus
        ct = bgv.encrypt(sk.public, [t + 5, 2**80, -1])
        assert bgv.decrypt(sk, ct, 3) == [5, 2**80 % t, t - 1]

    def test_sum_ciphertexts_chunked_reduction_exact(self, monkeypatch):
        """The anti-overflow chunked reduction splits sums without error.

        The real chunk bound only trips past ~2^31 summands, so the test
        shrinks the word-size constant (after key setup, so the int64 slot
        layout is already chosen) to force several chunks over 40 rows.
        """
        sk = make_key(ring_log2=12, modulus_bits=109)
        t = sk.params.plaintext_modulus
        big = t - 1
        count = 40
        cts = [bgv.encrypt(sk.public, [big, big]) for _ in range(count)]
        monkeypatch.setattr(bgv, "_INT64_MAX", 8 * t)  # chunk size ~7 rows
        assert bgv.decrypt(sk, bgv.sum_ciphertexts(cts), 2) == [
            (big * count) % t,
            (big * count) % t,
        ]
