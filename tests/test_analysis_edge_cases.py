"""Edge-case tests for the analysis and certification layers: nested
control flow, repeated sampling, and pathological-but-legal programs."""

import pytest

from repro.analysis.ranges import Interval
from repro.analysis.types import AnalysisError, infer_types
from repro.lang.parser import parse
from repro.privacy.certify import CertificationError, certify
from tests.conftest import small_env


def infer(source, env=None):
    return infer_types(parse(source), env or small_env())


def cert(source, env=None):
    return certify(parse(source), env or small_env())


class TestNestedControlFlow:
    def test_loop_in_loop(self):
        checker = infer(
            """
            s = 0;
            for i = 0 to 3 do
              for j = 0 to 3 do
                s = s + 1;
              endfor
            endfor
            """
        )
        assert checker.bindings["s"].interval.hi == 16

    def test_widened_loop_containing_if(self):
        checker = infer(
            """
            s = 0;
            for i = 0 to 999 do
              if i < 500 then
                s = s + 1;
              else
                s = s + 2;
              endif
            endfor
            """
        )
        hi = checker.bindings["s"].interval.hi
        assert 2000 <= hi <= 2020  # conservative but linear

    def test_if_containing_widened_loop(self):
        checker = infer(
            """
            s = 0;
            if 1 < 2 then
              for i = 0 to 999 do
                s = s + 1;
              endfor
            endif
            """
        )
        assert checker.bindings["s"].interval.hi >= 1000

    def test_loop_over_empty_range(self):
        checker = infer("s = 5; for i = 3 to 2 do s = 99; endfor")
        # Zero iterations: s keeps its pre-loop value.
        assert checker.bindings["s"].interval == Interval(5, 5)

    def test_nested_widened_loops(self):
        checker = infer(
            """
            s = 0;
            for i = 0 to 99 do
              for j = 0 to 99 do
                s = s + 1;
              endfor
            endfor
            """
        )
        hi = checker.bindings["s"].interval.hi
        assert 10000 <= hi <= 12000


class TestCertifierEdgeCases:
    def test_double_sampling_uses_strongest_phi(self):
        # Sampling twice composes; we conservatively keep the max phi.
        c = cert(
            """
            s1 = sampleUniform(db, 0.5);
            s2 = sampleUniform(s1, 0.1);
            aggr = sum(s2);
            r = em(aggr);
            output(r);
            """
        )
        assert c.epsilon < 1.0  # amplified below the ambient epsilon

    def test_mechanism_on_mixed_released_and_raw(self):
        # released + raw is still raw: the raw part needs a mechanism.
        with pytest.raises(CertificationError):
            cert(
                """
                aggr = sum(db);
                a = laplace(aggr[0], sens / epsilon);
                mixed = a + aggr[1];
                output(mixed);
                """
            )

    def test_mechanism_on_mixed_then_noised(self):
        c = cert(
            """
            aggr = sum(db);
            a = laplace(aggr[0], sens / epsilon);
            mixed = a + aggr[1];
            n = laplace(mixed, sens / epsilon);
            output(n);
            """
        )
        assert c.epsilon == pytest.approx(2.0)

    def test_negation_preserves_sensitivity(self):
        c = cert(
            """
            aggr = sum(db);
            x = 0 - aggr[0];
            n = laplace(x, sens / epsilon);
            output(n);
            """
        )
        assert c.epsilon == pytest.approx(1.0)

    def test_em_on_explicit_scores_array(self):
        c = cert(
            """
            aggr = sum(db);
            for i = 0 to 7 do
              scores[i] = aggr[i] * 2;
            endfor
            r = em(scores);
            output(r);
            """
        )
        assert c.mechanisms[0].sensitivity.linf == pytest.approx(2.0)

    def test_output_inside_loop_counts_each(self):
        c = cert(
            """
            aggr = sum(db);
            for i = 0 to 3 do
              n[i] = laplace(aggr[i], sens / epsilon);
              output(n[i]);
            endfor
            """
        )
        assert c.epsilon == pytest.approx(4.0)

    def test_row_l1_promise_tightens_bound(self):
        env_loose = small_env(categories=8, row_encoding="bounded")
        from dataclasses import replace

        env_tight = replace(env_loose, row_l1=1.0)
        # The joint bound applies to vector-level operations (sum over the
        # whole aggregate); element-wise access falls back to per-element
        # composition, which cannot exploit it.
        src = """
        aggr = sum(db);
        total = sum(aggr);
        n = laplace(total, 2 * sens / epsilon);
        output(n);
        """
        loose = certify(parse(src), env_loose)
        tight = certify(parse(src), env_tight)
        assert tight.epsilon < loose.epsilon


class TestCliWithMaliciousDevices:
    def test_run_command_rejects_malicious(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run", "top1",
                "--devices", "36",
                "--categories", "4",
                "--epsilon", "8.0",
                "--malicious", "0.15",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejected: [" in out
