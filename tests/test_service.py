"""Tests for the multi-tenant query service (admission/schedule/cache)."""

import dataclasses
import random
import threading

import pytest

from repro.planner.serialize import query_fingerprint
from repro.privacy.accountant import PrivacyAccountant, PrivacyCost
from repro.runtime.executor import BudgetExhausted, QueryRejected
from repro.runtime.network import FederatedNetwork
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    BudgetScheduler,
    PlanCache,
    QueryService,
    SchedulerPolicy,
    Submission,
    TenantPolicy,
    TenantRegistry,
)
from repro.session import AnalyticsSession

TOP1 = "aggr = sum(db); output(em(aggr));"
COUNT = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"


def make_session(budget=20.0, devices=24, seed=71):
    network = FederatedNetwork(devices, rng=random.Random(seed))
    network.load_categorical_data(8, distribution=[25, 1, 1, 1, 1, 1, 1, 1])
    return AnalyticsSession(
        network,
        epsilon_budget=budget,
        delta_budget=1e-6,
        rng=random.Random(seed + 1),
    )


def make_service(budget=20.0, tenants=None, seed=71, devices=24):
    session = make_session(budget=budget, seed=seed, devices=devices)
    policies = tenants or [TenantPolicy("alice", 10.0, 1e-6),
                           TenantPolicy("bob", 10.0, 1e-6)]
    return QueryService(session, policies)


# --------------------------------------------------------------- accountant


class TestConcurrentAccountant:
    """Satellite: the accountant lock under hammering concurrent charges."""

    def test_same_label_charges_exactly_once(self):
        accountant = PrivacyAccountant(100.0, 0.0)
        barrier = threading.Barrier(16)
        outcomes = []

        def worker():
            barrier.wait()
            for _ in range(50):
                outcomes.append(accountant.charge_once(PrivacyCost(1.0, 0.0), "q"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 800 attempts under one label: exactly one may debit.
        assert outcomes.count(True) == 1
        assert accountant.spent.epsilon == 1.0
        assert len(accountant.history) == 1

    def test_distinct_labels_all_charge_exactly_once(self):
        accountant = PrivacyAccountant(1000.0, 0.0)
        barrier = threading.Barrier(8)

        def worker(worker_id):
            barrier.wait()
            for i in range(25):
                label = f"w{worker_id}/q{i}"
                accountant.charge_once(PrivacyCost(1.0, 0.0), label)
                # Retry under the same label must be a no-op.
                accountant.charge_once(PrivacyCost(1.0, 0.0), label)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert accountant.spent.epsilon == 200.0
        labels = [label for label, _ in accountant.history]
        assert len(labels) == 200
        assert len(set(labels)) == 200

    def test_concurrent_plain_charges_never_lose_updates(self):
        accountant = PrivacyAccountant(10_000.0, 0.0)
        barrier = threading.Barrier(8)

        def worker(worker_id):
            barrier.wait()
            for i in range(100):
                accountant.charge(PrivacyCost(1.0, 0.0), f"w{worker_id}/{i}")

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert accountant.spent.epsilon == 800.0
        assert len(accountant.history) == 800


# ------------------------------------------------------------------ tenants


class TestTenants:
    def test_envelope_isolation(self):
        registry = TenantRegistry([TenantPolicy("a", 5.0)])
        account = registry.account("a")
        assert account.fits(PrivacyCost(5.0, 0.0))
        account.spent = PrivacyCost(3.0, 0.0)
        account.reserved = PrivacyCost(1.0, 0.0)
        assert account.fits(PrivacyCost(1.0, 0.0))
        assert not account.fits(PrivacyCost(1.5, 0.0))
        assert account.headroom().epsilon == pytest.approx(1.0)

    def test_unknown_tenant(self):
        registry = TenantRegistry()
        with pytest.raises(KeyError):
            registry.account("ghost")

    def test_duplicate_registration_rejected(self):
        registry = TenantRegistry([TenantPolicy("a", 1.0)])
        with pytest.raises(ValueError):
            registry.register(TenantPolicy("a", 2.0))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy("a", -1.0)
        with pytest.raises(ValueError):
            TenantPolicy("a", 1.0, weight=0.0)


# ---------------------------------------------------------------- admission


def _submission(seq, tenant, epsilon, utility=0.5, deadline=None, tick=1):
    return Submission(
        seq=seq,
        tenant=tenant,
        source=COUNT,
        categories=8,
        epsilon=epsilon,
        name=f"{tenant}/{seq:04d}",
        utility=utility,
        deadline=deadline,
        submit_tick=tick,
        cost=PrivacyCost(epsilon, 0.0),
    )


class TestAdmission:
    def make(self, global_epsilon=10.0, tenant_epsilon=6.0):
        accountant = PrivacyAccountant(global_epsilon, 1e-6)
        registry = TenantRegistry([TenantPolicy("a", tenant_epsilon, 1e-6),
                                   TenantPolicy("b", tenant_epsilon, 1e-6)])
        return AdmissionController(accountant, registry)

    def test_admit_reserves_both_ledgers(self):
        controller = self.make()
        score = controller.admit(_submission(1, "a", 2.0))
        assert 0.0 <= score.priority <= 1.0
        assert controller.reserved.epsilon == pytest.approx(2.0)
        assert controller.tenants.account("a").reserved.epsilon == pytest.approx(2.0)

    def test_tenant_envelope_rejection_is_typed(self):
        controller = self.make(tenant_epsilon=3.0)
        with pytest.raises(BudgetExhausted):
            controller.admit(_submission(1, "a", 4.0))
        # Nothing held after a rejection.
        assert controller.reserved.epsilon == 0.0

    def test_reservations_serialize_concurrent_admissions(self):
        # Each submission fits alone; together they overflow the pool.
        controller = self.make(global_epsilon=5.0, tenant_epsilon=5.0)
        first = _submission(1, "a", 3.0)
        second = _submission(2, "b", 3.0)
        controller.admit(first)
        with pytest.raises(BudgetExhausted):
            controller.admit(second)
        # Releasing the first hold lets the second through.
        controller.settle_rejected(first)
        second.cost = PrivacyCost(3.0, 0.0)
        controller.admit(second)

    def test_policy_rejections(self):
        controller = self.make()
        with pytest.raises(AdmissionRejected):
            controller.admit(_submission(1, "ghost", 1.0))
        with pytest.raises(AdmissionRejected):
            controller.admit(_submission(2, "a", 1.0, utility=1.5))
        with pytest.raises(AdmissionRejected):
            controller.admit(_submission(3, "a", 1.0, deadline=1, tick=2))
        with pytest.raises(AdmissionRejected):
            controller.admit(_submission(4, "a", 100.0))  # per-query ε cap

    def test_reprice_down_releases_difference(self):
        controller = self.make()
        submission = _submission(1, "a", 4.0)
        controller.admit(submission)
        controller.reprice(submission, PrivacyCost(1.0, 0.0))
        assert controller.reserved.epsilon == pytest.approx(1.0)
        assert submission.cost.epsilon == pytest.approx(1.0)

    def test_reprice_up_past_budget_dies_with_hold_released(self):
        controller = self.make(global_epsilon=5.0)
        submission = _submission(1, "a", 2.0)
        controller.admit(submission)
        with pytest.raises(BudgetExhausted):
            controller.reprice(submission, PrivacyCost(6.0, 0.0))
        assert controller.reserved.epsilon == 0.0
        assert controller.tenants.account("a").reserved.epsilon == 0.0

    def test_settle_executed_books_tenant_spend(self):
        controller = self.make()
        submission = _submission(1, "a", 2.0)
        controller.admit(submission)
        controller.settle_executed(submission)
        account = controller.tenants.account("a")
        assert account.spent.epsilon == pytest.approx(2.0)
        assert account.reserved.epsilon == 0.0
        assert controller.reserved.epsilon == 0.0
        assert account.executed == 1


# ---------------------------------------------------------------- scheduler


class TestScheduler:
    def test_cost_utility_ordering(self):
        scheduler = BudgetScheduler()
        controller = TestAdmission().make(global_epsilon=50.0, tenant_epsilon=50.0)
        cheap = _submission(1, "a", 0.5, utility=0.9)
        dear = _submission(2, "a", 8.0, utility=0.2)
        for s in (cheap, dear):
            controller.admit(s)
            scheduler.enqueue(s)
        picked, expired = scheduler.pick(now_tick=3)
        assert picked is cheap and not expired
        picked, _ = scheduler.pick(now_tick=4)
        assert picked is dear

    def test_tie_breaks_on_sequence(self):
        scheduler = BudgetScheduler()
        a = _submission(1, "a", 1.0)
        b = _submission(2, "a", 1.0)
        scheduler.enqueue(b)
        scheduler.enqueue(a)
        picked, _ = scheduler.pick(now_tick=2)
        assert picked is a

    def test_starvation_fence_promotes_fifo(self):
        policy = SchedulerPolicy(aging_horizon=4)
        scheduler = BudgetScheduler(policy)
        controller = TestAdmission().make(global_epsilon=50.0, tenant_epsilon=50.0)
        old = _submission(1, "a", 8.0, utility=0.0, tick=1)
        controller.admit(old)
        scheduler.enqueue(old)
        # A stream of newer, better-scored arrivals.
        for seq in range(2, 6):
            fresh = _submission(seq, "a", 0.5, utility=0.9, tick=seq)
            controller.admit(fresh)
            scheduler.enqueue(fresh)
        # Past the fence, the old submission wins regardless of score.
        picked, _ = scheduler.pick(now_tick=1 + policy.aging_horizon)
        assert picked is old

    def test_expired_deadlines_are_never_dispatched(self):
        scheduler = BudgetScheduler()
        dead = _submission(1, "a", 1.0, deadline=3, tick=1)
        live = _submission(2, "a", 1.0, tick=1)
        scheduler.enqueue(dead)
        scheduler.enqueue(live)
        picked, expired = scheduler.pick(now_tick=5)
        assert picked is live
        assert expired == [dead]
        assert len(scheduler) == 0

    def test_dynamic_priority_is_pure_in_clock_and_fields(self):
        scheduler = BudgetScheduler()
        s = _submission(1, "a", 1.0, deadline=10, tick=1)
        first = scheduler.dynamic_priority(s, 5)
        assert scheduler.dynamic_priority(s, 5) == first
        assert scheduler.dynamic_priority(s, 9) > first


# --------------------------------------------------------------- plan cache


class TestPlanCache:
    def plan(self, session, source=COUNT, epsilon=1.0):
        env = session.environment(8, epsilon, None, "one_hot", None)
        return env, session.planner(env).plan_source(source, name="shape")

    def test_roundtrip_hit_validates(self):
        session = make_session()
        env, planning = self.plan(session)
        cache = PlanCache()
        key = cache.fingerprint(COUNT, env)
        assert cache.store(key, planning)
        assert cache.lookup(key) is planning
        assert cache.statistics.hits == 1
        assert cache.statistics.stale_evictions == 0

    def test_tampered_digest_is_evicted_never_returned(self):
        """Satellite: a stale plan can never bypass the verifier."""
        session = make_session()
        env, planning = self.plan(session)
        cache = PlanCache()
        key = cache.fingerprint(COUNT, env)
        cache.store(key, planning)
        # Corrupt the stored digest — models any insert-time/lookup-time
        # divergence (tampered entry, analyzer semantics change).
        cache._entries[key].certificate_digest = "0" * 64
        assert cache.lookup(key) is None
        assert cache.statistics.stale_evictions == 1
        assert len(cache) == 0  # evicted, so the caller re-plans

    def test_tampered_plan_is_evicted_never_returned(self):
        session = make_session()
        env, planning = self.plan(session)
        cache = PlanCache()
        key = cache.fingerprint(COUNT, env)
        cache.store(key, planning)
        # Swap the cached plan's attached certificate for a near-copy:
        # re-derivation still succeeds but the attached-digest comparison
        # must fail closed.
        entry = cache._entries[key]
        entry.planning.privacy_certificate = dataclasses.replace(
            entry.planning.privacy_certificate, query_name="tampered"
        )
        assert cache.lookup(key) is None
        assert cache.statistics.stale_evictions == 1

    def test_uncertified_results_are_not_cached(self):
        session = make_session()
        env, planning = self.plan(session)
        planning.privacy_certificate = None
        cache = PlanCache()
        key = cache.fingerprint(COUNT, env)
        assert not cache.store(key, planning)
        assert cache.lookup(key) is None

    def test_lru_capacity_eviction(self):
        session = make_session()
        env, planning = self.plan(session)
        cache = PlanCache(max_entries=2)
        for i in range(3):
            cache.store(f"key-{i}", planning)
        assert len(cache) == 2
        assert cache.statistics.capacity_evictions == 1
        assert cache.lookup("key-0") is None  # the oldest fell out

    def test_fingerprint_normalizes_and_discriminates(self):
        session = make_session()
        env = session.environment(8, 1.0, None, "one_hot", None)
        base = query_fingerprint(COUNT, env)
        spaced = "aggr = sum(db);   output(laplace(aggr[0], sens/epsilon));"
        assert query_fingerprint(spaced, env) == base
        env_other = session.environment(8, 2.0, None, "one_hot", None)
        assert query_fingerprint(COUNT, env_other) != base
        assert query_fingerprint(TOP1, env) != base


# ------------------------------------------------------------- the service


class TestQueryService:
    def test_submit_execute_settles_everything(self):
        service = make_service()
        ticket = service.submit("alice", COUNT, categories=8, epsilon=1.0)
        assert not ticket.done
        record = service.process_next()
        assert record.outcome == "executed"
        assert ticket.done and ticket.result() == record.value
        assert record.epsilon_charged == pytest.approx(1.0)
        assert service.session.accountant.spent.epsilon == pytest.approx(1.0)
        account = service.tenants.account("alice")
        assert account.spent.epsilon == pytest.approx(1.0)
        assert account.reserved.epsilon == 0.0
        assert service.admission.reserved.epsilon == 0.0

    def test_budget_rejection_happens_before_planning(self):
        service = make_service(tenants=[TenantPolicy("alice", 2.0, 1e-6)])
        with pytest.raises(BudgetExhausted):
            service.submit("alice", COUNT, categories=8, epsilon=3.0)
        # Admission refused the query without invoking the planner.
        assert service.statistics.planner_invocations == 0
        assert service.statistics.rejected_budget == 1
        assert service.session.accountant.spent.epsilon == 0.0

    def test_policy_rejection_is_typed(self):
        service = make_service()
        with pytest.raises(AdmissionRejected):
            service.submit("ghost", COUNT, categories=8, epsilon=1.0)
        assert service.statistics.rejected_policy == 1

    def test_repeated_shape_hits_cache_and_still_charges(self):
        service = make_service()
        service.submit("alice", COUNT, categories=8, epsilon=1.0)
        service.submit("bob", COUNT, categories=8, epsilon=1.0)
        first = service.process_next()
        second = service.process_next()
        assert not first.cache_hit and second.cache_hit
        assert service.statistics.planner_invocations == 1
        # The cached plan still charges, under the second unique label.
        assert service.session.accountant.spent.epsilon == pytest.approx(2.0)
        labels = [label for label, _ in service.session.accountant.history]
        assert len(set(labels)) == 2

    def test_stale_cache_entry_replans_and_executes_fresh(self):
        service = make_service()
        service.submit("alice", COUNT, categories=8, epsilon=1.0)
        service.process_next()
        # Poison the single cached entry, then resubmit the same shape.
        (key,) = list(service.cache._entries)
        service.cache._entries[key].certificate_digest = "f" * 64
        service.submit("bob", COUNT, categories=8, epsilon=1.0)
        record = service.process_next()
        assert record.outcome == "executed"
        assert not record.cache_hit
        assert service.cache.statistics.stale_evictions == 1
        assert service.statistics.planner_invocations == 2

    def test_deadline_expiry_releases_hold_without_charging(self):
        service = make_service()
        ticket = service.submit(
            "alice", COUNT, categories=8, epsilon=1.0, deadline=2
        )
        # Competing traffic advances the clock past the deadline.
        service.submit("bob", COUNT, categories=8, epsilon=1.0)
        service.submit("bob", COUNT, categories=8, epsilon=1.0)
        records = service.drain()
        outcomes = {r.name: r.outcome for r in records}
        assert outcomes[ticket.submission.name] == "expired"
        with pytest.raises(AdmissionRejected):
            ticket.result()
        # Expiry never touches the accountant.
        assert service.session.accountant.spent.epsilon == pytest.approx(2.0)
        assert service.admission.reserved.epsilon == 0.0
        assert service.statistics.expired_deadlines == 1

    def test_deterministic_replay(self):
        def replay(seed):
            service = make_service(seed=seed)
            rng = random.Random(97)
            requests = [
                dict(
                    tenant=rng.choice(["alice", "bob"]),
                    source=COUNT,
                    categories=8,
                    epsilon=round(rng.uniform(0.5, 1.5), 2),
                    utility=round(rng.uniform(0.0, 1.0), 2),
                )
                for _ in range(6)
            ]
            service.submit_many(requests, workers=1)
            return [
                (r.seq, r.name, r.outcome, r.epsilon_charged, repr(r.value))
                for r in service.drain()
            ]

        assert replay(5) == replay(5)

    def test_concurrent_replay_accounting_is_exact(self):
        service = make_service(budget=100.0,
                               tenants=[TenantPolicy("a", 50.0, 1e-6),
                                        TenantPolicy("b", 50.0, 1e-6)])
        requests = [
            dict(tenant="a" if i % 2 else "b", source=COUNT,
                 categories=8, epsilon=1.0)
            for i in range(8)
        ]
        outcomes = service.submit_many(requests, workers=8)
        assert all(not isinstance(o, Exception) for o in outcomes)
        records = service.drain()
        executed = [r for r in records if r.outcome == "executed"]
        total = 0.0
        for record in executed:
            total += record.epsilon_charged
        assert service.session.accountant.spent.epsilon == total
        labels = [label for label, _ in service.session.accountant.history]
        assert len(labels) == len(set(labels)) == len(executed)

    def test_rejected_submissions_charge_nothing(self):
        service = make_service(budget=2.5,
                               tenants=[TenantPolicy("a", 2.5, 1e-6)])
        admitted, refused = 0, 0
        for _ in range(4):
            try:
                service.submit("a", COUNT, categories=8, epsilon=1.0)
                admitted += 1
            except BudgetExhausted:
                refused += 1
        assert (admitted, refused) == (2, 2)
        service.drain()
        assert service.session.accountant.spent.epsilon == pytest.approx(2.0)

    def test_statistics_block(self):
        service = make_service()
        service.submit("alice", COUNT, categories=8, epsilon=1.0)
        service.drain()
        stats = service.statistics.as_dict()
        for key in ("submitted", "admitted", "executed", "cache_misses",
                    "epsilon_charged", "dispatch_ticks"):
            assert key in stats
        assert stats["executed"] == 1


# ------------------------------------------------------- session satellites


class TestSessionBudgetReport:
    def test_ask_raises_typed_budget_exhausted(self):
        session = make_session(budget=1.5)
        session.ask(COUNT, categories=8, epsilon=1.0, name="q1")
        with pytest.raises(BudgetExhausted):
            session.ask(COUNT, categories=8, epsilon=1.0, name="q2")
        # BudgetExhausted is still a QueryRejected for old callers.
        assert issubclass(BudgetExhausted, QueryRejected)

    def test_budget_report_structure(self):
        session = make_session(budget=10.0)
        session.ask(COUNT, categories=8, epsilon=1.0, name="q1")
        session.ask(COUNT, categories=8, epsilon=2.0, name="q2")
        report = session.budget_report()
        assert report.spent_epsilon == pytest.approx(3.0)
        assert report.remaining_epsilon == pytest.approx(7.0)
        lines = {line.label: line for line in report.by_label}
        assert lines["q1"].epsilon == pytest.approx(1.0)
        assert lines["q2"].epsilon == pytest.approx(2.0)
        as_dict = report.as_dict()
        assert as_dict["spent_epsilon"] == pytest.approx(3.0)
        assert [line["label"] for line in as_dict["by_label"]] == ["q1", "q2"]
