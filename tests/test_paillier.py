"""Tests for the Paillier AHE implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import paillier

# A single session keypair: keygen is the slow part, the tests share it.
_RNG = random.Random(42)
KEY = paillier.keygen(bits=128, rng=_RNG)
PK = KEY.public


class TestRoundtrip:
    def test_encrypt_decrypt(self, rng):
        for m in (0, 1, 42, 10**9, PK.n - 1):
            ct = paillier.encrypt(PK, m, rng)
            assert paillier.decrypt(KEY, ct) == m % PK.n

    def test_encryption_is_randomized(self, rng):
        a = paillier.encrypt(PK, 5, rng)
        b = paillier.encrypt(PK, 5, rng)
        assert a.value != b.value
        assert paillier.decrypt(KEY, a) == paillier.decrypt(KEY, b) == 5

    def test_negative_plaintext_wraps(self, rng):
        ct = paillier.encrypt(PK, -3, rng)
        assert paillier.decrypt(KEY, ct) == PK.n - 3

    def test_wrong_key_rejected(self, rng):
        other = paillier.keygen(bits=128, rng=random.Random(7))
        ct = paillier.encrypt(PK, 1, rng)
        with pytest.raises(ValueError):
            paillier.decrypt(other, ct)


class TestHomomorphism:
    def test_addition(self, rng):
        a = paillier.encrypt(PK, 20, rng)
        b = paillier.encrypt(PK, 22, rng)
        assert paillier.decrypt(KEY, paillier.add_ciphertexts(a, b)) == 42

    def test_addition_mod_n(self, rng):
        a = paillier.encrypt(PK, PK.n - 1, rng)
        b = paillier.encrypt(PK, 2, rng)
        assert paillier.decrypt(KEY, paillier.add_ciphertexts(a, b)) == 1

    def test_add_plain(self, rng):
        ct = paillier.encrypt(PK, 40, rng)
        assert paillier.decrypt(KEY, paillier.add_plain(PK, ct, 2)) == 42

    def test_mul_plain(self, rng):
        ct = paillier.encrypt(PK, 6, rng)
        assert paillier.decrypt(KEY, paillier.mul_plain(ct, 7)) == 42

    def test_sum_ciphertexts(self, rng):
        cts = [paillier.encrypt(PK, v, rng) for v in (1, 2, 3, 4, 5)]
        assert paillier.decrypt(KEY, paillier.sum_ciphertexts(cts)) == 15

    def test_sum_empty_raises(self):
        with pytest.raises(ValueError):
            paillier.sum_ciphertexts([])

    def test_mixed_keys_rejected(self, rng):
        other = paillier.keygen(bits=128, rng=random.Random(9))
        a = paillier.encrypt(PK, 1, rng)
        b = paillier.encrypt(other.public, 1, rng)
        with pytest.raises(ValueError):
            paillier.add_ciphertexts(a, b)


class TestAggregationScenario:
    def test_one_hot_histogram(self, rng):
        """The Arboretum input path: sum encrypted one-hot vectors."""
        categories = 4
        data = [0, 1, 1, 3, 1, 2, 1, 0]
        totals = None
        for value in data:
            row = [paillier.encrypt(PK, 1 if i == value else 0, rng) for i in range(categories)]
            if totals is None:
                totals = row
            else:
                totals = [paillier.add_ciphertexts(a, b) for a, b in zip(totals, row)]
        counts = [paillier.decrypt(KEY, ct) for ct in totals]
        assert counts == [2, 4, 1, 1]


@given(
    a=st.integers(min_value=0, max_value=2**40),
    b=st.integers(min_value=0, max_value=2**40),
    k=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_homomorphic_identity_property(a, b, k):
    rng = random.Random(a ^ b ^ k)
    ca = paillier.encrypt(PK, a, rng)
    cb = paillier.encrypt(PK, b, rng)
    combined = paillier.add_ciphertexts(paillier.mul_plain(ca, k), cb)
    assert paillier.decrypt(KEY, combined) == (a * k + b) % PK.n
