"""Tests for the honest-majority MPC engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.engine import CheatingDetected, MPCEngine


def make_engine(parties=5, seed=1, bit_width=32):
    return MPCEngine(parties, rng=random.Random(seed), bit_width=bit_width)


class TestConstruction:
    def test_needs_three_parties(self):
        with pytest.raises(ValueError):
            MPCEngine(2)

    def test_honest_majority_bound(self):
        with pytest.raises(ValueError):
            MPCEngine(4, threshold=2)  # needs n >= 2t+1 = 5

    def test_field_must_fit_masking(self):
        from repro.crypto.field import PrimeField, MERSENNE_61

        with pytest.raises(ValueError):
            MPCEngine(3, field=PrimeField(MERSENNE_61), bit_width=40)


class TestLinearOps:
    def test_input_open_roundtrip(self):
        e = make_engine()
        for v in (0, 1, -1, 1000, -12345):
            assert e.open(e.input_value(v)) == v

    def test_add_sub(self):
        e = make_engine()
        a, b = e.input_value(30), e.input_value(12)
        assert e.open(e.add(a, b)) == 42
        assert e.open(e.sub(a, b)) == 18

    def test_public_ops(self):
        e = make_engine()
        a = e.input_value(10)
        assert e.open(e.add_public(a, 5)) == 15
        assert e.open(e.mul_public(a, -3)) == -30

    def test_constant(self):
        e = make_engine()
        assert e.open(e.constant(-7)) == -7

    def test_sum_values(self):
        e = make_engine()
        values = [e.input_value(i) for i in range(10)]
        assert e.open(e.sum_values(values)) == 45
        assert e.open(e.sum_values([])) == 0

    def test_linear_ops_are_local(self):
        """Additions must not consume communication rounds."""
        e = make_engine()
        a, b = e.input_value(1), e.input_value(2)
        rounds_before = e.counters.rounds
        e.add(a, b)
        e.sub(a, b)
        e.add_public(a, 9)
        assert e.counters.rounds == rounds_before


class TestMultiplication:
    def test_mul(self):
        e = make_engine()
        assert e.open(e.mul(e.input_value(6), e.input_value(7))) == 42

    def test_mul_negative(self):
        e = make_engine()
        assert e.open(e.mul(e.input_value(-6), e.input_value(7))) == -42

    def test_mul_consumes_triple(self):
        e = make_engine()
        a, b = e.input_value(2), e.input_value(3)
        before = e.counters.triples_consumed
        e.mul(a, b)
        assert e.counters.triples_consumed == before + 1

    def test_deep_multiplication_chain(self):
        e = make_engine()
        acc = e.input_value(1)
        for i in range(2, 8):
            acc = e.mul(acc, e.input_value(i))
        assert e.open(acc) == 5040


class TestComparison:
    def test_basic(self):
        e = make_engine()
        a, b = e.input_value(3), e.input_value(9)
        assert e.open(e.less_than(a, b)) == 1
        assert e.open(e.less_than(b, a)) == 0

    def test_equal_values(self):
        e = make_engine()
        a, b = e.input_value(5), e.input_value(5)
        assert e.open(e.less_than(a, b)) == 0

    def test_negative_values(self):
        e = make_engine()
        assert e.open(e.less_than(e.input_value(-10), e.input_value(-2))) == 1
        assert e.open(e.less_than(e.input_value(-2), e.input_value(-10))) == 0
        assert e.open(e.less_than(e.input_value(-1), e.input_value(1))) == 1

    def test_boundary_magnitudes(self):
        e = make_engine(bit_width=16)
        big = 2**15
        assert e.open(e.less_than(e.input_value(-big), e.input_value(big))) == 1

    def test_greater_than(self):
        e = make_engine()
        assert e.open(e.greater_than(e.input_value(4), e.input_value(2))) == 1


class TestSelection:
    def test_select(self):
        e = make_engine()
        t, f = e.input_value(10), e.input_value(20)
        one, zero = e.constant(1), e.constant(0)
        assert e.open(e.select(one, t, f)) == 10
        assert e.open(e.select(zero, t, f)) == 20

    def test_argmax(self):
        e = make_engine()
        values = [e.input_value(v) for v in (3, 1, 9, 9, 2)]
        assert e.open(e.argmax(values)) == 2  # first maximum wins

    def test_argmax_single(self):
        e = make_engine()
        assert e.open(e.argmax([e.input_value(5)])) == 0

    def test_argmax_empty_raises(self):
        with pytest.raises(ValueError):
            make_engine().argmax([])

    def test_maximum(self):
        e = make_engine()
        values = [e.input_value(v) for v in (-5, 12, 7)]
        assert e.open(e.maximum(values)) == 12


class TestIntegrity:
    def test_cheating_detected_on_open(self):
        e = make_engine()
        a = e.input_value(5)
        e.corrupt_share(a, party_id=5, delta=3)
        with pytest.raises(CheatingDetected):
            e.open(a)

    def test_cheating_in_quorum_detected(self):
        e = make_engine()
        a = e.input_value(5)
        e.corrupt_share(a, party_id=1, delta=1)
        with pytest.raises(CheatingDetected):
            e.open(a)

    def test_foreign_values_rejected(self):
        e1, e2 = make_engine(seed=1), make_engine(seed=2)
        a = e1.input_value(5)
        b = e2.input_value(5)
        with pytest.raises(ValueError):
            e1.add(a, b)


class TestCounters:
    def test_bytes_and_rounds_accumulate(self):
        e = make_engine()
        a, b = e.input_value(3), e.input_value(4)
        e.open(e.mul(a, b))
        c = e.counters
        assert c.bytes_sent > 0
        assert c.rounds >= 2
        assert c.multiplications == 1
        assert c.openings >= 3

    def test_comparison_counters(self):
        e = make_engine()
        e.less_than(e.input_value(1), e.input_value(2))
        assert e.counters.comparisons == 1
        assert e.counters.edabits_consumed == 1


@given(
    a=st.integers(min_value=-(2**20), max_value=2**20),
    b=st.integers(min_value=-(2**20), max_value=2**20),
)
@settings(max_examples=20, deadline=None)
def test_comparison_property(a, b):
    e = make_engine(parties=3, seed=a & 0xFFFF, bit_width=24)
    result = e.open(e.less_than(e.input_value(a), e.input_value(b)))
    assert result == int(a < b)


@given(
    values=st.lists(
        st.integers(min_value=-(2**18), max_value=2**18), min_size=2, max_size=5
    )
)
@settings(max_examples=15, deadline=None)
def test_argmax_property(values):
    e = make_engine(parties=3, seed=sum(values) & 0xFFFF, bit_width=24)
    secrets = [e.input_value(v) for v in values]
    index = e.open(e.argmax(secrets))
    assert values[index] == max(values)
    assert index == values.index(max(values))
