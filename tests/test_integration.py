"""Full-pipeline integration tests: every catalog query runs end-to-end.

Each test takes one Table 2 query through the complete Arboretum pipeline
at small scale — parse, certify, lower, plan, then execute over a
simulated network with real crypto — and checks the released answer
against ground truth (allowing for the calibrated DP noise).
"""

import random

import pytest

from repro.planner.search import plan_query
from repro.queries.catalog import get
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork
from tests.conftest import small_env


def execute(spec, env, network, seed=31):
    planning = plan_query(spec.source, env, name=spec.name)
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed),
    )
    return executor.run()


class TestTop1EndToEnd:
    def test_answer(self):
        spec = get("top1")
        env = spec.environment(48, categories=8, epsilon=6.0)
        net = FederatedNetwork(48, rng=random.Random(1))
        net.load_categorical_data(8, distribution=[1, 25, 1, 1, 1, 1, 1, 1])
        result = execute(spec, env, net)
        assert result.value == 1


class TestTopKEndToEnd:
    def test_answer(self):
        spec = get("topK")
        env = spec.environment(60, categories=8, epsilon=8.0)
        net = FederatedNetwork(60, rng=random.Random(2))
        net.load_categorical_data(8, distribution=[30, 20, 12, 8, 1, 1, 1, 1])
        result = execute(spec, env, net)
        winners = result.outputs
        assert len(winners) == 5
        assert len(set(winners)) == 5
        assert {0, 1} <= set(winners)  # the two dominant categories


class TestGapEndToEnd:
    def test_answer(self):
        spec = get("gap")
        env = spec.environment(60, categories=8, epsilon=8.0)
        net = FederatedNetwork(60, rng=random.Random(3))
        net.load_categorical_data(8, distribution=[40, 5, 1, 1, 1, 1, 1, 1])
        result = execute(spec, env, net)
        winner, gap = result.outputs
        assert winner == 0
        # True gap ~ count(0) - count(1); noise scale 2*sens/eps = 0.25.
        counts = [0] * 8
        for d in net.devices:
            counts[d.value] += 1
        true_gap = counts[0] - max(c for i, c in enumerate(counts) if i != 0)
        assert abs(gap - true_gap) < 6.0


class TestAuctionEndToEnd:
    def test_answer(self):
        spec = get("auction")
        env = spec.environment(48, categories=8, epsilon=8.0)
        # Auction sensitivity is the max price (=C); use high epsilon so
        # the revenue-optimal price wins clearly.
        net = FederatedNetwork(48, rng=random.Random(4))
        # Everyone bids at price index 6 or above: revenue peaks near 6.
        net.load_categorical_data(8, distribution=[1, 1, 1, 1, 1, 1, 30, 12])
        result = execute(spec, env, net)
        assert result.value in (6, 7)


class TestHypotestEndToEnd:
    def test_answer(self):
        spec = get("hypotest")
        env = spec.environment(48, categories=1, epsilon=8.0)
        net = FederatedNetwork(48, rng=random.Random(5))
        # Everyone reports success: count ~ 48 > N/2 -> reject.
        net.load_categorical_data(1)
        result = execute(spec, env, net)
        reject, noisy = result.outputs
        assert reject == 1
        assert abs(noisy - 48) < 4.0


class TestSecrecyEndToEnd:
    def test_answer(self):
        spec = get("secrecy")
        env = spec.environment(64, categories=8, epsilon=8.0)
        net = FederatedNetwork(64, rng=random.Random(6))
        net.load_categorical_data(8, distribution=[50, 1, 1, 1, 1, 1, 1, 1])
        result = execute(spec, env, net)
        assert result.value == 0
        assert any("sampled window" in e for e in result.events)


class TestMedianEndToEnd:
    def test_answer(self):
        spec = get("median")
        env = spec.environment(48, categories=8, epsilon=8.0)
        net = FederatedNetwork(48, rng=random.Random(7))
        net.load_categorical_data(8, distribution=[1, 1, 1, 24, 24, 1, 1, 1])
        result = execute(spec, env, net)
        assert result.value in (3, 4)


class TestCmsEndToEnd:
    def test_answer(self):
        spec = get("cms")
        env = spec.environment(48, categories=1, epsilon=8.0)
        net = FederatedNetwork(48, rng=random.Random(8))
        net.load_numeric_data(0, 1, width=1)
        result = execute(spec, env, net)
        truth = sum(
            d.value if isinstance(d.value, int) else d.value[0]
            for d in net.devices
        )
        assert abs(result.value - truth) < 4.0


class TestBayesEndToEnd:
    def test_answer(self):
        spec = get("bayes")
        env = spec.environment(48, categories=8, epsilon=16.0)
        net = FederatedNetwork(48, rng=random.Random(9))
        net.load_numeric_data(0, 1, width=8)
        result = execute(spec, env, net)
        assert len(result.outputs) == 8
        truths = [sum(d.value[i] for d in net.devices) for i in range(8)]
        for noisy, truth in zip(result.outputs, truths):
            # Per-coordinate scale: c*sens/eps = 8/16 = 0.5.
            assert abs(noisy - truth) < 8.0


class TestKMediansEndToEnd:
    def test_answer(self):
        spec = get("k-medians")
        env = spec.environment(60, categories=20, epsilon=40.0)
        net = FederatedNetwork(60, rng=random.Random(10))
        # Rows: one-hot assignment over 10 centers || coordinate sums.
        rng = random.Random(11)
        for d in net.devices:
            center = rng.randrange(10)
            row = [0] * 20
            row[center] = 1
            row[10 + center] = 1  # coordinate contribution in {0,1}
            d.value = row
        result = execute(spec, env, net)
        assert len(result.outputs) == 10
        for center in result.outputs:
            assert -10.0 < center < 10.0


class TestRepeatedQueriesAdvanceSortition:
    def test_two_queries_different_committees(self):
        spec = get("top1")
        env = spec.environment(60, categories=8, epsilon=8.0)
        net = FederatedNetwork(60, rng=random.Random(12))
        net.load_categorical_data(8, distribution=[30, 1, 1, 1, 1, 1, 1, 1])
        planning = plan_query(spec.source, env, name="top1")
        first = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(13),
        )
        r1 = first.run()
        second = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(14),
        )
        r2 = second.run()
        assert r1.value == r2.value == 0
        # Fresh randomness means fresh committees (w.h.p.).
        keygen1 = next(e for e in r1.events if "keygen" in e)
        keygen2 = next(e for e in r2.events if "keygen" in e)
        assert keygen1 != keygen2
