"""Shared fixtures for the test suite."""

import random

import pytest

from repro.analysis.ranges import Interval
from repro.analysis.types import QueryEnvironment, ValueType
from repro.crypto.field import MERSENNE_61, MERSENNE_127, PrimeField


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_field():
    return PrimeField(MERSENNE_61)


@pytest.fixture
def field():
    return PrimeField(MERSENNE_127)


def small_env(
    num_participants=48,
    categories=8,
    epsilon=1.0,
    sensitivity=1.0,
    row_encoding="one_hot",
):
    """A deployment environment small enough for functional execution."""
    return QueryEnvironment(
        num_participants=num_participants,
        row_width=categories,
        db_element=ValueType("int", Interval(0.0, 1.0)),
        epsilon=epsilon,
        sensitivity=sensitivity,
        row_encoding=row_encoding,
    )


@pytest.fixture
def env():
    return small_env()
