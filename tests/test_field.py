"""Tests for prime-field arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import (
    DEFAULT_FIELD,
    MERSENNE_61,
    MERSENNE_127,
    PrimeField,
    is_probable_prime,
    next_prime,
    random_prime,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 91, 561, 7917):
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that naive tests miss.
        for c in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(c)

    def test_mersenne_constants_are_prime(self):
        assert is_probable_prime(MERSENNE_61)
        assert is_probable_prime(MERSENNE_127)

    def test_next_prime(self):
        assert next_prime(2) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(90) == 97

    def test_random_prime_has_requested_bits(self):
        rng = random.Random(1)
        for bits in (16, 32, 64):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_prime(1, random.Random(0))


class TestFieldOps:
    def test_modulus_validation(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_add_sub_roundtrip(self):
        f = PrimeField(97)
        assert f.add(50, 60) == 13
        assert f.sub(f.add(50, 60), 60) == 50

    def test_inverse(self):
        f = PrimeField(MERSENNE_61)
        for x in (1, 2, 12345, MERSENNE_61 - 1):
            assert f.mul(x, f.inv(x)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(97).inv(0)

    def test_div(self):
        f = PrimeField(97)
        assert f.mul(f.div(10, 7), 7) == 10

    def test_signed_encoding_roundtrip(self):
        f = DEFAULT_FIELD
        for x in (0, 1, -1, 12345, -98765, 2**60, -(2**60)):
            assert f.decode_signed(f.encode_signed(x)) == x

    def test_signed_encoding_overflow(self):
        f = PrimeField(97)
        with pytest.raises(OverflowError):
            f.encode_signed(49)

    def test_random_element_in_range(self):
        f = PrimeField(97)
        rng = random.Random(5)
        for _ in range(100):
            assert 0 <= f.random_element(rng) < 97
        for _ in range(100):
            assert 1 <= f.random_nonzero(rng) < 97


@given(
    a=st.integers(min_value=-(2**60), max_value=2**60),
    b=st.integers(min_value=-(2**60), max_value=2**60),
)
@settings(max_examples=100)
def test_signed_arithmetic_matches_integers(a, b):
    """Field arithmetic on signed encodings agrees with plain integers."""
    f = DEFAULT_FIELD
    ea, eb = f.encode_signed(a), f.encode_signed(b)
    assert f.decode_signed(f.add(ea, eb)) == a + b
    assert f.decode_signed(f.sub(ea, eb)) == a - b
    assert f.decode_signed(f.neg(ea)) == -a


@given(x=st.integers(min_value=1, max_value=MERSENNE_61 - 1))
@settings(max_examples=50)
def test_inverse_property(x):
    f = PrimeField(MERSENNE_61)
    assert f.mul(x, f.inv(x)) == 1
