"""Sharded event-driven runtime: scheduler, shards, tree, and equivalence.

The sharded data plane's contract differs from the vectorized one's: it
owns its RNG schedule (per-shard labelled streams), so its released
values are not compared against the flat planes. Its oracle is *itself*:
``shard_workers=0`` drains the event pipeline one event at a time, and
every other worker count must release a byte-identical ``QueryResult``.
On top of that sit the multi-level aggregation tree's audit guarantees
(any internal level reproduces the shard-leaf inclusion proofs) and the
shard-scoped journal checkpoints (a coordinator death mid-intake resumes
bit-identically).
"""

import json
import random
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.crypto import paillier
from repro.crypto.zkp import one_hot_statement
from repro.faults import (
    COORDINATOR_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    get_scenario,
)
from repro.planner.search import plan_query
from repro.runtime.aggregator import AggregatorNode, AggregatorTree, Upload
from repro.runtime.executor import QueryExecutor
from repro.runtime.journal import run_to_completion
from repro.runtime.network import FederatedNetwork
from repro.runtime.scheduler import (
    AGGREGATE,
    CHURN,
    EventScheduler,
    FOLD,
    UPLOAD,
    VERIFY,
)
from repro.runtime.shard import (
    DeviceShard,
    ObfuscatorPool,
    ShardContext,
    build_shards,
    upload_shard,
    verify_shard,
)
from tests.conftest import small_env

REPO_ROOT = Path(__file__).resolve().parent.parent
TOP1 = "aggr = sum(db); r = em(aggr); output(r);"
SEED = 11


def _run(
    data_plane="sharded",
    devices=64,
    seed=SEED,
    malicious_fraction=0.0,
    scenario=None,
    shard_size=8,
    shard_workers=0,
    tree_fanout=2,
    journal=None,
):
    env = small_env(num_participants=devices, categories=8, epsilon=8.0)
    planning = plan_query(TOP1, env, name="sharded-equiv")
    network = FederatedNetwork(
        devices, rng=random.Random(seed), malicious_fraction=malicious_fraction
    )
    network.load_categorical_data(8)
    faults = None
    if scenario is not None:
        plan = scenario if isinstance(scenario, FaultPlan) else get_scenario(scenario)
        faults = FaultInjector(plan, seed=seed)
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        faults=faults,
        data_plane=data_plane,
        shard_size=shard_size,
        shard_workers=shard_workers,
        tree_fanout=tree_fanout,
        journal=journal,
    )
    return executor.run()


# ------------------------------------------------------------- scheduler


class TestEventScheduler:
    def _pipeline(self, workers, items=10):
        """A churn->upload->verify->aggregate pipeline over plain ints."""
        sched = EventScheduler(workers=workers)
        trace = []

        sched.register(
            CHURN,
            lambda ev: (None, [(UPLOAD, ev.shard_id, ev.shard_id * 10)]),
        )
        sched.register(
            UPLOAD, lambda ev: (ev.payload + 1, [(VERIFY, ev.shard_id, ev.payload + 1)]),
            parallel=True,
        )
        sched.register(
            VERIFY, lambda ev: (ev.payload, [(AGGREGATE, ev.shard_id, ev.payload)]),
            parallel=True,
        )
        sched.register(
            AGGREGATE,
            lambda ev: (trace.append((ev.shard_id, ev.payload)), []),
        )
        for i in range(items):
            sched.post(CHURN, i)
        handled = sched.drain()
        return trace, handled, sched.stats

    def test_serial_and_parallel_traces_identical(self):
        serial, handled_s, _ = self._pipeline(workers=0)
        parallel, handled_p, stats = self._pipeline(workers=4)
        assert serial == parallel
        assert handled_s == handled_p == 40
        assert serial == [(i, i * 10 + 1) for i in range(10)]
        assert stats.max_batch > 1  # parallel dispatch actually batched

    def test_serial_kinds_never_batch(self):
        _, _, stats = self._pipeline(workers=4)
        # aggregate is serial: 10 events -> 10 single-event batches.
        assert stats.events_processed[AGGREGATE] == 10

    def test_unregistered_kind_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError, match="no handler"):
            sched.post(FOLD, 0)
        with pytest.raises(ValueError, match="unknown event kind"):
            sched.register("teleport", lambda ev: (None, []))

    def test_followups_run_after_batch_in_seq_order(self):
        sched = EventScheduler(workers=4)
        order = []
        sched.register(
            UPLOAD, lambda ev: (order.append(("u", ev.shard_id)), [(VERIFY, ev.shard_id, None)]),
            parallel=True,
        )
        sched.register(VERIFY, lambda ev: (order.append(("v", ev.shard_id)), []))
        for i in range(6):
            sched.post(UPLOAD, i)
        sched.drain()
        # All verifies post after the upload batch merges, in seq order.
        assert order[6:] == [("v", i) for i in range(6)]


# ------------------------------------------------------- shards and pool


@pytest.fixture(scope="module")
def keypair():
    sk = paillier.keygen(bits=96, rng=random.Random(3))
    return sk.public, sk


@pytest.fixture(scope="module")
def shard_ctx(keypair):
    pk, _ = keypair
    return ShardContext(
        public_key=pk,
        statement=one_hot_statement(8),
        categories=8,
        bins=1,
        one_hot=True,
        width=8,
        round_number=1,
        packing=None,
        pool=ObfuscatorPool(pk, random.Random(42), pool_size=16, subset_size=4),
    )


def _make_shard(n=12, shard_id=0, offline=(), malicious=()):
    ids = np.arange(1, n + 1, dtype=np.int64)
    values = np.arange(n, dtype=np.int64) % 8
    online = np.ones(n, dtype=bool)
    online[list(offline)] = False
    mal = np.zeros(n, dtype=bool)
    mal[list(malicious)] = True
    return DeviceShard(shard_id, ids, values, online, mal, "sharded/upload/0")


class TestShardStages:
    def test_pool_draws_decrypt_correctly(self, keypair):
        pk, sk = keypair
        pool = ObfuscatorPool(pk, random.Random(7), pool_size=8, subset_size=3)
        rng = random.Random(9)
        for m in (0, 1, 12345):
            ct = paillier.encrypt_with_pad(pk, m, pool.draw(rng))
            assert paillier.decrypt(sk, ct) == m

    def test_pool_and_upload_deterministic(self, keypair, shard_ctx):
        pk, _ = keypair
        pads_a = ObfuscatorPool(pk, random.Random(42), pool_size=16)._pads
        pads_b = ObfuscatorPool(pk, random.Random(42), pool_size=16)._pads
        assert pads_a == pads_b
        batch_a = upload_shard(_make_shard(), shard_ctx, random.Random(5))
        batch_b = upload_shard(_make_shard(), shard_ctx, random.Random(5))
        assert [u.ciphertexts[0].value for u in batch_a.uploads] == [
            u.ciphertexts[0].value for u in batch_b.uploads
        ]

    def test_offline_devices_never_upload(self, shard_ctx):
        batch = upload_shard(_make_shard(offline=[2, 5]), shard_ctx, random.Random(5))
        uploaded = {u.device_id for u in batch.uploads}
        assert uploaded == set(range(1, 13)) - {3, 6}

    def test_malicious_uploads_rejected_at_the_leaf(self, shard_ctx):
        batch = upload_shard(
            _make_shard(malicious=[1, 4]), shard_ctx, random.Random(5)
        )
        result = verify_shard(batch, shard_ctx)
        assert result.rejected == [2, 5]
        assert result.accepted == 10
        assert result.uploads_received == 12
        assert len(result.upload_digests) == 10

    def test_build_shards_slices_and_labels(self):
        ids = np.arange(1, 21, dtype=np.int64)
        values = np.zeros(20, dtype=np.int64)
        online = np.ones(20, dtype=bool)
        mal = np.zeros(20, dtype=bool)
        shards = build_shards(ids, values, online, mal, shard_size=8)
        assert [len(s) for s in shards] == [8, 8, 4]
        assert [s.stream_label for s in shards] == [
            "sharded/upload/0", "sharded/upload/1", "sharded/upload/2"
        ]
        # Snapshots are copies: churn on one shard cannot leak to another.
        shards[0].online[0] = False
        assert online[0]


# ------------------------------------------------- upload digest caching


class TestUploadDigestCache:
    def _upload(self, keypair):
        pk, _ = keypair
        rng = random.Random(4)
        vector = [1, 0, 0, 0, 0, 0, 0, 0]
        from repro.crypto.zkp import prove
        from repro.runtime.aggregator import ciphertext_vector_digest

        cts = [paillier.encrypt(pk, v, rng) for v in vector]
        proof = prove(
            one_hot_statement(8), vector, 1, 1, ciphertext_vector_digest(cts)
        )
        return Upload(1, cts, proof, vector)

    def test_digest_cached_after_first_call(self, keypair):
        upload = self._upload(keypair)
        first = upload.digest()
        assert upload._digest == first
        assert upload.digest() is first  # reused, not recomputed

    def test_tamper_after_cache_still_caught_by_verify(self, keypair):
        pk, _ = keypair
        node = AggregatorNode(pk)
        upload = self._upload(keypair)
        upload.digest()  # populate the cache
        node.receive_upload(upload)
        node.tamper_with_upload(0)
        # The cached digest is stale, but the verify path recomputes the
        # ciphertext digest from the stored ciphertexts and rejects.
        assert node.verify_uploads() == []
        assert node.rejected == [1]

    def test_tamper_after_cache_still_caught_by_shard_verify(
        self, keypair, shard_ctx
    ):
        batch = upload_shard(_make_shard(n=4), shard_ctx, random.Random(5))
        for upload in batch.uploads:
            upload.digest()
        batch.uploads[2].ciphertexts[0] = paillier.tampered(
            batch.uploads[2].ciphertexts[0]
        )
        result = verify_shard(batch, shard_ctx)
        assert result.rejected == [3]
        assert result.accepted == 3


# ------------------------------------------------------ aggregator tree


class TestAggregatorTree:
    def _folded_tree(self, keypair, shard_ctx, num_shards=9, fanout=2):
        pk, _ = keypair
        tree = AggregatorTree(pk, num_leaves=num_shards, fanout=fanout)
        ready = []
        for sid in range(num_shards):
            shard = _make_shard(shard_id=sid)
            result = verify_shard(
                upload_shard(shard, shard_ctx, random.Random(100 + sid)),
                shard_ctx,
            )
            parent = tree.ingest_leaf(result)
            if parent:
                ready.append(parent)
        while ready:
            parent = tree.fold_node(*ready.pop(0))
            if parent:
                ready.append(parent)
        return tree

    def test_depth_and_fanout(self, keypair):
        pk, _ = keypair
        assert AggregatorTree(pk, num_leaves=9, fanout=2).depth == 5
        assert AggregatorTree(pk, num_leaves=16, fanout=4).depth == 3
        assert AggregatorTree(pk, num_leaves=1, fanout=2).depth == 2
        with pytest.raises(ValueError):
            AggregatorTree(pk, num_leaves=0)
        with pytest.raises(ValueError):
            AggregatorTree(pk, num_leaves=4, fanout=1)

    def test_root_totals_decrypt_to_population_sum(self, keypair, shard_ctx):
        pk, sk = keypair
        tree = self._folded_tree(keypair, shard_ctx)
        counts = [paillier.decrypt(sk, ct) for ct in tree.totals()]
        # 9 shards x 12 devices, values i % 8: categories 0..3 get 2 per
        # shard, categories 4..7 get 1 per shard.
        assert counts == [18, 18, 18, 18, 9, 9, 9, 9]
        assert tree.root.accepted == 9 * 12

    def test_audits_at_internal_levels_reproduce_leaf_proofs(
        self, keypair, shard_ctx
    ):
        tree = self._folded_tree(keypair, shard_ctx)
        assert tree.depth >= 4  # the point: audits cross multiple levels
        assert tree.run_audits(random.Random(5), auditors=16) == 0
        for leaf_index in range(9):
            assert tree.verify_leaf_inclusion(leaf_index)

    def test_rewritten_child_commitment_detected_on_path(self, keypair, shard_ctx):
        tree = self._folded_tree(keypair, shard_ctx)
        victim = tree.levels[1][2]  # parent of leaves 4 and 5
        victim.node.corrupt_step(0)  # rewrite the child/0.4 commitment
        assert not tree.verify_leaf_inclusion(4)
        assert tree.verify_leaf_inclusion(0)  # other paths unaffected

    def test_rewritten_fold_detected_by_internal_audit(self, keypair, shard_ctx):
        tree = self._folded_tree(keypair, shard_ctx)
        victim = tree.levels[1][2]
        victim.node.corrupt_step(len(victim.children))  # the fold step
        # The inclusion chain only walks child commitments; the random
        # internal-level step audit is what covers fold steps.
        assert tree.run_audits(random.Random(5), auditors=32) > 0

    def test_substituted_leaf_digest_detected(self, keypair, shard_ctx):
        tree = self._folded_tree(keypair, shard_ctx)
        tree.levels[0][4].digest = b"\x00" * 32
        assert not tree.verify_leaf_inclusion(4)
        assert tree.verify_leaf_inclusion(0)  # other paths unaffected

    def test_double_ingest_and_premature_fold_rejected(self, keypair, shard_ctx):
        pk, _ = keypair
        tree = AggregatorTree(pk, num_leaves=4, fanout=2)
        result = verify_shard(
            upload_shard(_make_shard(shard_id=0), shard_ctx, random.Random(1)),
            shard_ctx,
        )
        tree.ingest_leaf(result)
        with pytest.raises(ValueError, match="ingested twice"):
            tree.ingest_leaf(result)
        with pytest.raises(ValueError, match="waits on"):
            tree.fold_node(1, 0)
        with pytest.raises(ValueError, match="has not folded"):
            tree.totals()


# ------------------------------------------- network struct-of-arrays


class TestNetworkSoA:
    def test_soa_view_matches_devices(self):
        net = FederatedNetwork(20, rng=random.Random(2), malicious_fraction=0.3)
        net.load_categorical_data(8)
        net.take_offline([3, 9])
        ids, values, online, malicious = net.soa_view()
        assert list(ids) == list(range(1, 21))
        assert values.tolist() == [d.value for d in net.devices]
        assert online.tolist() == [d.online for d in net.devices]
        assert malicious.tolist() == [d.malicious for d in net.devices]

    def test_contiguous_id_invariant_enforced(self):
        net = FederatedNetwork(8, rng=random.Random(2))
        net.devices[3], net.devices[4] = net.devices[4], net.devices[3]
        with pytest.raises(ValueError, match="contiguously numbered"):
            net._check_contiguous_ids()


# --------------------------------------------------- end-to-end oracle


class TestShardedEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return _run(shard_workers=0, malicious_fraction=0.1)

    def test_parallel_workers_byte_identical_to_serial(self, serial):
        for workers in (2, 5):
            assert _run(shard_workers=workers, malicious_fraction=0.1) == serial

    def test_sharded_stats_populated(self, serial):
        stats = serial.statistics
        assert stats.data_plane == "sharded"
        assert stats.shards == 8
        assert stats.tree_depth == 4  # 8 leaves at fanout 2
        assert stats.scheduler_events == 8 * 4 + 7  # 4 stages + 7 folds
        assert stats.uploads_submitted == 64
        assert stats.packing_lanes > 1  # slot packing engaged

    def test_malicious_rejection_independent_of_workers(self):
        serial = _run(seed=21, malicious_fraction=0.25, shard_workers=0)
        parallel = _run(seed=21, malicious_fraction=0.25, shard_workers=3)
        assert serial.rejected_devices
        assert serial == parallel

    def test_shard_topology_changes_do_not_change_rejections(self):
        # Different shard sizes reshape the tree, but accept/reject is a
        # per-upload decision: the rejected set must be stable.
        a = _run(seed=21, malicious_fraction=0.25, shard_size=8)
        b = _run(seed=21, malicious_fraction=0.25, shard_size=32, tree_fanout=4)
        assert a.rejected_devices == b.rejected_devices

    @pytest.mark.parametrize("scenario", ["keygen-loss", "churn-wave", "vsr-loss"])
    def test_chaos_scenarios_bit_identical_under_parallelism(self, scenario):
        serial = _run(scenario=scenario, shard_workers=0)
        parallel = _run(scenario=scenario, shard_workers=4)
        assert serial.outputs == parallel.outputs
        assert serial.rejected_devices == parallel.rejected_devices


class TestShardedCrashResume:
    def test_crash_at_shard_checkpoint_resumes_bit_identically(self, tmp_path):
        baseline = _run(scenario="none")
        plan = FaultPlan(
            "crash-at-shard",
            "coordinator dies mid-intake, at the third shard checkpoint",
            events=(FaultEvent(COORDINATOR_CRASH, "input", target="input/shard2"),),
        )
        result, resumes = run_to_completion(
            lambda j: None or _run_builder(plan, j),
            str(tmp_path / "shard-crash.journal"),
            {"recipe": "test"},
        )
        assert resumes == 1
        assert result == baseline


def _run_builder(plan, journal):
    """An executor factory for run_to_completion (mirrors _run's recipe)."""
    env = small_env(num_participants=64, categories=8, epsilon=8.0)
    planning = plan_query(TOP1, env, name="sharded-equiv")
    network = FederatedNetwork(64, rng=random.Random(SEED))
    network.load_categorical_data(8)
    return QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(SEED + 1),
        faults=FaultInjector(plan, seed=SEED),
        data_plane="sharded",
        shard_size=8,
        shard_workers=0,
        tree_fanout=2,
        journal=journal,
    )


# ------------------------------------------------------- bench schema


class TestBenchSchema:
    @pytest.fixture()
    def bench(self):
        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            import bench_runtime
        finally:
            sys.path.pop(0)
        return bench_runtime

    def test_committed_bench_file_passes_schema(self, bench):
        payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
        assert bench.check_schema(payload) == []

    def test_dropping_sharded_series_fails_schema(self, bench):
        payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
        broken = dict(payload)
        del broken["sharded_scale"]
        assert any("sharded_scale" in p for p in bench.check_schema(broken))
        hollow = dict(payload)
        hollow["end_to_end"] = [
            {k: v for k, v in row.items() if "sharded" not in k}
            for row in payload["end_to_end"]
        ]
        assert bench.check_schema(hollow)

    def test_scale_series_must_reach_a_million(self, bench):
        payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
        capped = dict(payload)
        capped["sharded_scale"] = [
            row for row in payload["sharded_scale"] if row["devices"] < 10**6
        ]
        assert any("10^6" in p for p in bench.check_schema(capped))
