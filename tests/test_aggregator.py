"""Tests for the aggregator node (§5.3, §5.4)."""

import random

import pytest

from repro.crypto import paillier
from repro.crypto.zkp import one_hot_statement, prove
from repro.runtime.aggregator import (
    AggregatorNode,
    Upload,
    ciphertext_vector_digest,
)

RNG = random.Random(5)
KEY = paillier.keygen(bits=128, rng=RNG)
PK = KEY.public


def make_upload(device_id, vector, malformed=False):
    cts = [paillier.encrypt(PK, v, RNG) for v in vector]
    digest = ciphertext_vector_digest(cts)
    witness = vector if not malformed else vector
    proof = prove(one_hot_statement(len(vector)), witness, device_id, 0, digest)
    return Upload(device_id, cts, proof, witness)


class TestUploadVerification:
    def test_valid_uploads_accepted(self):
        agg = AggregatorNode(PK)
        agg.receive_upload(make_upload(1, [1, 0, 0]))
        agg.receive_upload(make_upload(2, [0, 0, 1]))
        accepted = agg.verify_uploads()
        assert len(accepted) == 2
        assert agg.rejected == []

    def test_malformed_rejected(self):
        agg = AggregatorNode(PK)
        agg.receive_upload(make_upload(1, [1, 0, 0]))
        agg.receive_upload(make_upload(2, [1, 1, 0]))  # two-hot
        accepted = agg.verify_uploads()
        assert [u.device_id for u in accepted] == [1]
        assert agg.rejected == [2]

    def test_ciphertext_swap_detected(self):
        """A proof is bound to its ciphertexts: swapping them post-hoc
        (e.g. by a Byzantine aggregator) fails verification."""
        agg = AggregatorNode(PK)
        agg.receive_upload(make_upload(1, [1, 0, 0]))
        agg.tamper_with_upload(0)
        accepted = agg.verify_uploads()
        assert accepted == []
        assert agg.rejected == [1]


class TestAggregation:
    def test_sums_accepted_uploads(self):
        agg = AggregatorNode(PK)
        data = [[1, 0, 0], [0, 1, 0], [0, 1, 0], [0, 0, 1]]
        for i, row in enumerate(data, start=1):
            agg.receive_upload(make_upload(i, row))
        totals = agg.aggregate(agg.verify_uploads())
        counts = [paillier.decrypt(KEY, ct) for ct in totals]
        assert counts == [1, 2, 1]

    def test_no_uploads_rejected(self):
        agg = AggregatorNode(PK)
        with pytest.raises(ValueError):
            agg.aggregate([])

    def test_inconsistent_widths_rejected(self):
        agg = AggregatorNode(PK)
        agg.receive_upload(make_upload(1, [1, 0]))
        agg.receive_upload(make_upload(2, [1, 0, 0]))
        accepted = agg.verify_uploads()
        with pytest.raises(ValueError):
            agg.aggregate(accepted)


class TestAudits:
    def _committed(self):
        agg = AggregatorNode(PK)
        for i in range(4):
            agg.commit_step(f"step{i}", bytes([i]) * 32)
        return agg

    def test_honest_aggregator_passes_audits(self):
        agg = self._committed()
        assert agg.run_audits(random.Random(1), auditors=8) == 0

    def test_audit_answers_verify(self):
        from repro.crypto.merkle import verify_inclusion

        agg = self._committed()
        root = agg.publish_step_root()
        leaf, proof = agg.answer_audit(2)
        assert verify_inclusion(root, leaf, proof)

    def test_corrupted_step_caught(self):
        agg = self._committed()
        agg.publish_step_root()
        agg.corrupt_step(1)
        failures = agg.run_audits(random.Random(2), auditors=16, leaves_each=4)
        assert failures > 0

    def test_no_steps_rejected(self):
        agg = AggregatorNode(PK)
        with pytest.raises(ValueError):
            agg.publish_step_root()


class TestMailbox:
    def test_post_and_fetch(self):
        agg = AggregatorNode(PK)
        agg.post("dec->noise", b"shares1")
        agg.post("dec->noise", b"shares2")
        assert agg.fetch("dec->noise") == [b"shares1", b"shares2"]
        assert agg.fetch("dec->noise") == []  # drained

    def test_channels_isolated(self):
        agg = AggregatorNode(PK)
        agg.post("a", 1)
        agg.post("b", 2)
        assert agg.fetch("a") == [1]
        assert agg.fetch("b") == [2]
