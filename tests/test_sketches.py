"""Tests for the count-mean sketch (the real cms workload)."""

import random

import pytest

from repro.planner.search import plan_query
from repro.queries.sketches import (
    CountMeanSketch,
    SketchParams,
    aggregate_rows,
    build_sketch,
    encode_row,
    noise_sketch,
    sketch_environment,
    sketch_query_source,
)
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork


def skewed_items(rng, n=400):
    """A population where 'popular' dominates a long tail."""
    items = []
    for _ in range(n):
        r = rng.random()
        if r < 0.4:
            items.append("popular")
        elif r < 0.55:
            items.append("second")
        else:
            items.append(f"tail-{rng.randrange(500)}")
    return items


class TestEncoding:
    def test_row_shape(self):
        params = SketchParams(depth=4, width=64)
        row = encode_row("hello", params)
        assert len(row) == 256
        assert sum(row) == 4  # exactly one cell per hash row
        for r in range(4):
            assert sum(row[r * 64 : (r + 1) * 64]) == 1

    def test_deterministic(self):
        params = SketchParams()
        assert encode_row("x", params) == encode_row("x", params)

    def test_different_items_differ(self):
        params = SketchParams(depth=4, width=1024)
        assert encode_row("a", params) != encode_row("b", params)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SketchParams(depth=0)
        with pytest.raises(ValueError):
            SketchParams(width=1)


class TestEstimation:
    def test_noiseless_estimate_accurate(self):
        rng = random.Random(7)
        items = skewed_items(rng)
        params = SketchParams(depth=4, width=256)
        sketch = build_sketch(items, params)
        truth = items.count("popular")
        assert abs(sketch.estimate("popular") - truth) < 0.15 * truth + 5

    def test_absent_item_near_zero(self):
        rng = random.Random(8)
        sketch = build_sketch(skewed_items(rng), SketchParams(4, 256))
        assert abs(sketch.estimate("never-seen")) < 15

    def test_noised_estimate_still_useful(self):
        rng = random.Random(9)
        items = skewed_items(rng)
        params = SketchParams(depth=4, width=256)
        sketch = build_sketch(items, params, epsilon=2.0, rng=rng)
        truth = items.count("popular")
        assert abs(sketch.estimate("popular") - truth) < 0.25 * truth + 15

    def test_heavy_hitters(self):
        rng = random.Random(10)
        items = skewed_items(rng)
        sketch = build_sketch(items, SketchParams(4, 256))
        candidates = ["popular", "second", "never-seen", "tail-1"]
        hitters = sketch.heavy_hitters(candidates, threshold=40.0)
        assert "popular" in hitters
        assert "never-seen" not in hitters

    def test_noise_scale_validation(self):
        with pytest.raises(ValueError):
            noise_sketch([1.0], 0.0, SketchParams(), random.Random(0))

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rows([[1, 0]], SketchParams(depth=4, width=64))


class TestFederatedSketch:
    def test_query_certifies_at_epsilon(self):
        params = SketchParams(depth=2, width=8)
        env = sketch_environment(params, num_participants=10**6, epsilon=1.0)
        result = plan_query(sketch_query_source(params), env, name="cms-sketch")
        # Vector Laplace with row_l1 = depth certifies at exactly epsilon.
        assert result.certificate.epsilon == pytest.approx(1.0, rel=1e-6)

    def test_end_to_end_estimation(self):
        """The full federated pipeline: devices encode sketch rows, the
        executor aggregates and noises them, the analyst estimates."""
        params = SketchParams(depth=2, width=8)
        devices = 48
        env = sketch_environment(params, num_participants=devices, epsilon=8.0)
        planning = plan_query(sketch_query_source(params), env, name="cms-sketch")
        network = FederatedNetwork(devices, rng=random.Random(11))
        rng = random.Random(12)
        truth = 0
        for device in network.devices:
            item = "popular" if rng.random() < 0.5 else f"tail-{rng.randrange(50)}"
            truth += item == "popular"
            device.value = encode_row(item, params)
        result = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(13),
        ).run()
        # The outputs are the noised cells, in order.
        cells = [float(v) for v in result.outputs]
        assert len(cells) == params.cells
        sketch = CountMeanSketch(params, cells, devices)
        assert abs(sketch.estimate("popular") - truth) < 12
