"""Vectorized vs legacy data plane: byte-identical execution results.

The vectorization PR's contract mirrors the one PR 2 established for the
planner: the numpy slot kernels, batched Vandermonde sharing, Paillier
slot packing, and tree reductions may change *how fast* the runtime
computes, never *what* it computes. Under identical seeds the two data
planes must release identical ``QueryResult``s — outputs, rejected
devices, audit verdicts, committee usage, event logs, certificates — and
identical DP accounting, in fault-free runs and across injected-fault
recovery schedules alike.
"""

import random

import numpy as np
import pytest

from repro.crypto import bgv, paillier, shamir
from repro.crypto.field import MERSENNE_61, MERSENNE_127, PrimeField
from repro.faults import FaultInjector, get_scenario
from repro.mpc.engine import MPCEngine
from repro.planner.search import plan_query
from repro.privacy.accountant import PrivacyAccountant
from repro.queries.catalog import get
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork
from repro.runtime.packing import SlotPacking, plan_packing
from tests.conftest import small_env

TOP1 = "aggr = sum(db); r = em(aggr); output(r);"


def _run(
    data_plane,
    devices=32,
    seed=11,
    malicious_fraction=0.0,
    scenario=None,
    accountant=None,
    source=TOP1,
    numeric=None,
    categories=8,
):
    env = small_env(num_participants=devices, categories=categories, epsilon=8.0)
    planning = plan_query(source, env, name="equiv")
    network = FederatedNetwork(
        devices, rng=random.Random(seed), malicious_fraction=malicious_fraction
    )
    if numeric is not None:
        network.load_numeric_data(*numeric, width=categories)
    else:
        network.load_categorical_data(categories)
    faults = (
        FaultInjector(get_scenario(scenario), seed=seed) if scenario else None
    )
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        accountant=accountant,
        faults=faults,
        data_plane=data_plane,
    )
    return executor.run()


def _fault_trail(log):
    return [(r.fault.kind, r.detection, r.recovery, r.outcome) for r in log.records]


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", [3, 11, 21])
    def test_plain_runs_byte_identical(self, seed):
        legacy = _run("legacy", seed=seed)
        vectorized = _run("vectorized", seed=seed)
        # QueryResult equality covers outputs, rejected devices, audits,
        # committees, epsilon, events, and the authorization certificate
        # (statistics are excluded from equality by design).
        assert legacy == vectorized
        assert vectorized.statistics.packing_lanes > 1  # packing engaged

    def test_malicious_uploads_rejected_identically(self):
        legacy = _run("legacy", seed=21, malicious_fraction=0.25)
        vectorized = _run("vectorized", seed=21, malicious_fraction=0.25)
        assert legacy.rejected_devices  # the seed produced some
        assert legacy == vectorized

    def test_numeric_range_rows_byte_identical(self):
        # Unsigned numeric rows: packing uses the ZKP range bound.
        base = small_env(num_participants=40, categories=4, epsilon=8.0)
        env = type(base)(
            num_participants=40,
            row_width=4,
            db_element=base.db_element,
            epsilon=8.0,
            sensitivity=1.0,
            row_encoding="bounded",
        )
        source = "aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);"
        planning = plan_query(source, env, name="bounded")

        def run(plane):
            network = FederatedNetwork(
                40, rng=random.Random(7), malicious_fraction=0.15
            )
            network.load_numeric_data(0, 1, width=4)
            executor = QueryExecutor(
                network,
                planning,
                committee_size=4,
                key_prime_bits=96,
                rng=random.Random(8),
                data_plane=plane,
            )
            return executor.run()

        legacy = run("legacy")
        vectorized = run("vectorized")
        assert legacy == vectorized
        assert vectorized.statistics.packing_lanes > 1

    def test_dp_accounting_identical(self):
        acc_legacy = PrivacyAccountant(epsilon_budget=64.0, delta_budget=1e-6)
        acc_vectorized = PrivacyAccountant(epsilon_budget=64.0, delta_budget=1e-6)
        legacy = _run("legacy", seed=5, accountant=acc_legacy)
        vectorized = _run("vectorized", seed=5, accountant=acc_vectorized)
        assert legacy == vectorized
        assert acc_legacy == acc_vectorized
        assert legacy.epsilon_charged == vectorized.epsilon_charged

    @pytest.mark.parametrize("scenario", ["keygen-loss", "vsr-loss"])
    def test_chaos_recovery_byte_identical(self, scenario):
        legacy = _run("legacy", seed=5, scenario=scenario)
        vectorized = _run("vectorized", seed=5, scenario=scenario)
        assert legacy.fault_log.records  # the scenario actually fired
        assert legacy.outputs == vectorized.outputs
        assert legacy.rejected_devices == vectorized.rejected_devices
        assert legacy.audits_failed == vectorized.audits_failed
        assert legacy.committees_used == vectorized.committees_used
        assert legacy.events == vectorized.events
        assert legacy.epsilon_charged == vectorized.epsilon_charged
        assert _fault_trail(legacy.fault_log) == _fault_trail(vectorized.fault_log)

    def test_garbage_upload_chaos_byte_identical(self):
        legacy = _run("legacy", seed=5, scenario="garbage-upload")
        vectorized = _run("vectorized", seed=5, scenario="garbage-upload")
        assert legacy.rejected_devices  # garbage uploads were injected
        assert legacy.rejected_devices == vectorized.rejected_devices
        assert legacy.outputs == vectorized.outputs
        assert legacy.events == vectorized.events
        assert _fault_trail(legacy.fault_log) == _fault_trail(vectorized.fault_log)

    def test_chaos_matches_fault_free_twin_under_packing(self):
        spec = get("top1")
        env = spec.environment(32, categories=8, epsilon=8.0)
        planning = plan_query(spec.source, env, name=spec.name)

        def run(scenario):
            net = FederatedNetwork(32, rng=random.Random(5))
            net.load_categorical_data(8, distribution=[20, 4, 1, 1, 1, 1, 1, 1])
            executor = QueryExecutor(
                net,
                planning,
                committee_size=4,
                key_prime_bits=96,
                rng=random.Random(6),
                faults=FaultInjector(get_scenario(scenario), seed=5),
                data_plane="vectorized",
            )
            return executor.run()

        baseline = run("none")
        recovered = run("decrypt-crash")
        assert recovered.outputs == baseline.outputs
        assert recovered.fault_log.all_recovered

    def test_statistics_populated(self):
        result = _run("vectorized", seed=3)
        stats = result.statistics
        assert stats.data_plane == "vectorized"
        assert stats.uploads_submitted == 32
        assert stats.uploads_verified == 32
        assert stats.logical_width == 8
        assert stats.packed_width < stats.logical_width
        assert stats.submit_seconds > 0
        assert stats.uploads_verified_per_second > 0

    def test_legacy_plane_never_packs(self):
        result = _run("legacy", seed=3)
        stats = result.statistics
        assert stats.data_plane == "legacy"
        assert stats.packing_lanes == 1
        assert stats.packed_width == stats.logical_width

    def test_unknown_data_plane_rejected(self):
        env = small_env(num_participants=8)
        planning = plan_query(TOP1, env, name="q")
        network = FederatedNetwork(8, rng=random.Random(1))
        network.load_categorical_data(8)
        with pytest.raises(ValueError, match="data plane"):
            QueryExecutor(network, planning, rng=random.Random(2), data_plane="simd")


class TestKernelEquivalence:
    """The array kernels against inline copies of the seed algorithms."""

    def test_bgv_ops_match_seed_tuple_kernels(self):
        params = bgv.BGVParams(ring_degree_log2=12, ciphertext_modulus_bits=109)
        sk = bgv.keygen(params, random.Random(0))
        rng = random.Random(1)
        t = params.plaintext_modulus
        a = [rng.randrange(t) for _ in range(params.slots)]
        b = [rng.randrange(t) for _ in range(params.slots)]
        ct_a = bgv.encrypt(sk.public, a)
        ct_b = bgv.encrypt(sk.public, b)
        assert bgv.decrypt(sk, bgv.add(ct_a, ct_b)) == [
            (x + y) % t for x, y in zip(a, b)
        ]
        assert bgv.decrypt(sk, bgv.sub(ct_a, ct_b)) == [
            (x - y) % t for x, y in zip(a, b)
        ]
        assert bgv.decrypt(sk, bgv.multiply_plain(ct_a, b)) == [
            (x * y) % t for x, y in zip(a, b)
        ]
        for k in (1, 7, params.slots - 1):
            assert bgv.decrypt(sk, bgv.rotate(ct_a, k)) == list(a[k:] + a[:k])

    def test_bgv_sum_matches_linear_fold(self):
        params = bgv.BGVParams(ring_degree_log2=10, ciphertext_modulus_bits=27)
        sk = bgv.keygen(params, random.Random(0))
        rng = random.Random(2)
        t = params.plaintext_modulus
        cts = [
            bgv.encrypt(sk.public, [rng.randrange(t) for _ in range(params.slots)])
            for _ in range(37)
        ]
        folded = cts[0]
        for ct in cts[1:]:
            folded = bgv.add(folded, ct)
        stacked = bgv.sum_ciphertexts(cts)
        assert bgv.decrypt(sk, stacked) == bgv.decrypt(sk, folded)
        assert stacked.level == folded.level

    @pytest.mark.parametrize("modulus", [MERSENNE_61, MERSENNE_127])
    def test_share_vector_matches_reference_and_rng_stream(self, modulus):
        field = PrimeField(modulus)
        rng = random.Random(9)
        values = [rng.randrange(field.modulus) for _ in range(17)]
        party_ids = [1, 2, 3, 5, 8]
        rng_a, rng_b = random.Random(42), random.Random(42)
        batched = shamir.share_vector(values, 2, party_ids, field, rng_a)
        reference = shamir.share_vector_reference(values, 2, party_ids, field, rng_b)
        assert batched == reference
        # Identical draw count and order: the streams stay in lockstep.
        assert rng_a.random() == rng_b.random()

    def test_reconstruct_vector_roundtrip(self):
        field = PrimeField(MERSENNE_127)
        rng = random.Random(4)
        values = [rng.randrange(field.modulus) for _ in range(9)]
        per_party = shamir.share_vector(values, 2, [1, 2, 3, 4, 5], field, rng)
        rows = [
            [per_party[pid][i] for pid in (1, 2, 3, 4, 5)]
            for i in range(len(values))
        ]
        assert shamir.reconstruct_vector(rows, field) == values
        assert shamir.reconstruct_vector([], field) == []
        with pytest.raises(ValueError):
            shamir.reconstruct_vector([rows[0], rows[1][::-1]], field)

    def test_paillier_tree_sum_matches_linear_fold(self):
        sk = paillier.keygen(64, random.Random(0))
        rng = random.Random(1)
        cts = [paillier.encrypt(sk.public, i, rng) for i in range(11)]
        folded = cts[0]
        for ct in cts[1:]:
            folded = paillier.add_ciphertexts(folded, ct)
        assert paillier.sum_ciphertexts(cts) == folded

    def test_paillier_split_encrypt_matches_encrypt(self):
        sk = paillier.keygen(64, random.Random(0))
        rng_a, rng_b = random.Random(5), random.Random(5)
        direct = paillier.encrypt(sk.public, 41, rng_a)
        r = paillier.draw_obfuscator(sk.public, rng_b)
        assert paillier.encrypt_with_obfuscator(sk.public, 41, r) == direct
        assert rng_a.getrandbits(32) == rng_b.getrandbits(32)

    def test_mpc_input_values_matches_input_value_loop(self):
        def build():
            return MPCEngine(5, field=PrimeField(MERSENNE_127), rng=random.Random(3))

        batched_engine, loop_engine = build(), build()
        values = [5, -7, 0, 123, -1]
        batched = batched_engine.input_values(values)
        looped = [loop_engine.input_value(v) for v in values]
        for sv_a, sv_b in zip(batched, looped):
            assert {p: s.y for p, s in sv_a.shares.items()} == {
                p: s.y for p, s in sv_b.shares.items()
            }
        assert vars(batched_engine.counters) == vars(loop_engine.counters)
        assert batched_engine.rng.random() == loop_engine.rng.random()

    def test_mpc_tree_sum_matches_linear_fold(self):
        engine = MPCEngine(5, field=PrimeField(MERSENNE_127), rng=random.Random(3))
        values = engine.input_values(list(range(-3, 10)))
        assert engine.open(engine.sum_values(values)) == sum(range(-3, 10))
        assert engine.open(engine.sum_values([])) == 0
        assert engine.open(engine.sum_values(values[:1])) == -3


class TestSlotPacking:
    def test_pack_unpack_roundtrip(self):
        packing = SlotPacking(width=10, slot_bits=7, lanes=3)
        vector = [1, 0, 5, 9, 0, 0, 2, 0, 0, 1]
        assert packing.packed_width == 4
        assert packing.unpack(packing.pack(vector)) == vector

    def test_packed_sum_equals_slotwise_sum(self):
        packing = SlotPacking(width=8, slot_bits=12, lanes=4)
        rng = random.Random(0)
        vectors = [[rng.randrange(16) for _ in range(8)] for _ in range(50)]
        packed_total = [0] * packing.packed_width
        for v in vectors:
            for j, p in enumerate(packing.pack(v)):
                packed_total[j] += p
        expected = [sum(col) for col in zip(*vectors)]
        assert packing.unpack(packed_total) == expected

    def test_unpack_detects_lane_overflow(self):
        packing = SlotPacking(width=2, slot_bits=4, lanes=2)
        with pytest.raises(ValueError, match="overflow"):
            packing.unpack([1 << 8])
        assert packing.unpack([1 << 8], check=False)  # masked, no raise

    def test_plan_packing_bounds(self):
        # 64 devices of one-hot bits -> 7+1 slot bits; 127 usable bits -> 15 lanes.
        packing = plan_packing(32, 64, (1 << 127) - 1)
        assert packing.lanes == 15 and packing.slot_bits == 8
        # Lanes never exceed the width.
        assert plan_packing(4, 64, (1 << 127) - 1).lanes == 4
        # Too-large sums leave fewer than 2 lanes: packing declined.
        assert plan_packing(8, 1 << 80, (1 << 127) - 1) is None
        with pytest.raises(ValueError):
            plan_packing(0, 1, 1 << 64)

    def test_pack_rejects_wrong_width(self):
        packing = SlotPacking(width=4, slot_bits=8, lanes=2)
        with pytest.raises(ValueError):
            packing.pack([1, 2, 3])
        with pytest.raises(ValueError):
            packing.unpack([1, 2, 3])


class TestNumpyBackingInvariants:
    def test_slots_are_int64_on_fast_path(self):
        params = bgv.BGVParams()  # t = 2^30 qualifies
        sk = bgv.keygen(params, random.Random(0))
        ct = bgv.encrypt(sk.public, [1, 2, 3])
        assert isinstance(ct.slots, np.ndarray)
        assert ct.slots.dtype == np.int64

    def test_decrypt_returns_python_ints(self):
        params = bgv.BGVParams()
        sk = bgv.keygen(params, random.Random(0))
        values = bgv.decrypt(sk, bgv.encrypt(sk.public, [5, 7]), count=2)
        assert values == [5, 7]
        assert all(type(v) is int for v in values)
