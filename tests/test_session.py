"""Tests for the analytics-session layer."""

import random

import pytest

from repro.runtime.executor import QueryRejected
from repro.runtime.network import FederatedNetwork
from repro.session import AnalyticsSession

TOP1 = "aggr = sum(db); output(em(aggr));"
COUNT = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"


def make_session(budget=10.0, epsilon=4.0, devices=40, seed=71):
    network = FederatedNetwork(devices, rng=random.Random(seed))
    network.load_categorical_data(8, distribution=[25, 1, 1, 1, 1, 1, 1, 1])
    return AnalyticsSession(
        network,
        epsilon_budget=budget,
        epsilon_per_query=epsilon,
        rng=random.Random(seed + 1),
    )


class TestLifecycle:
    def test_single_query(self):
        session = make_session()
        result = session.ask(TOP1, categories=8, name="top1")
        assert result.value == 0
        assert session.queries_answered == 1
        assert session.spent_epsilon() == pytest.approx(4.0)

    def test_budget_decreases_across_queries(self):
        session = make_session(budget=10.0, epsilon=4.0)
        session.ask(TOP1, categories=8, name="q1")
        session.ask(COUNT, categories=8, name="q2")
        assert session.remaining_epsilon() == pytest.approx(2.0)
        assert len(session.history) == 2

    def test_refusal_when_exhausted(self):
        session = make_session(budget=5.0, epsilon=4.0)
        session.ask(TOP1, categories=8, name="q1")
        with pytest.raises(QueryRejected):
            session.ask(TOP1, categories=8, name="q2")
        # Refusal costs nothing and is recorded.
        assert session.spent_epsilon() == pytest.approx(4.0)
        assert session.history[-1].result is None

    def test_can_afford(self):
        session = make_session(budget=5.0, epsilon=4.0)
        assert session.can_afford(TOP1, categories=8)
        session.ask(TOP1, categories=8)
        assert not session.can_afford(TOP1, categories=8)

    def test_sortition_advances_per_query(self):
        session = make_session(budget=20.0)
        session.ask(TOP1, categories=8)
        assert session.network.sortition.round_number == 1
        session.ask(COUNT, categories=8)
        assert session.network.sortition.round_number == 2

    def test_plan_only_spends_nothing(self):
        session = make_session()
        planning = session.plan(TOP1, categories=8)
        assert planning.succeeded
        assert session.spent_epsilon() == 0.0

    def test_planner_cache_reused(self):
        session = make_session(budget=20.0)
        session.plan(TOP1, categories=8)
        session.plan(COUNT, categories=8)
        assert len(session._planners) == 1  # same environment key

    def test_per_query_epsilon_override(self):
        session = make_session(budget=10.0, epsilon=4.0)
        session.ask(TOP1, categories=8, epsilon=1.0)
        assert session.spent_epsilon() == pytest.approx(1.0)
