"""Tests for the cleartext reference interpreter, including semantic
equivalence between centralized and federated execution."""

import random
from collections import Counter

import pytest

from repro.lang.interp import (
    ReferenceError_,
    ReferenceInterpreter,
    one_hot_database,
    run_reference,
)
from repro.planner.search import plan_query
from repro.queries.catalog import get
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork


class TestBasics:
    def test_sum_over_db(self):
        db = one_hot_database([0, 1, 1, 2], width=3)
        outputs = run_reference(
            "aggr = sum(db); n = laplace(aggr[1], 0.0001); output(n);",
            db,
            rng=random.Random(1),
        )
        assert round(outputs[0]) == 2

    def test_loops_and_arrays(self):
        db = one_hot_database([0], width=2)
        outputs = run_reference(
            """
            aggr = sum(db);
            s = 0;
            for i = 0 to 4 do
              a[i] = i * i;
              s = s + a[i];
            endfor
            output(s);
            """,
            db,
        )
        assert outputs == [30]

    def test_conditionals(self):
        outputs = run_reference(
            "x = 3; if x > 2 && !(x == 4) then output(1); else output(0); endif",
            one_hot_database([0], 2),
        )
        assert outputs == [1]

    def test_builtins(self):
        outputs = run_reference(
            "output(clip(15, 0, 10)); output(abs(0 - 4)); output(len(sum(db)));",
            one_hot_database([0, 1], 3),
        )
        assert outputs == [10, 4, 3]

    def test_em_prefers_top_score(self):
        db = one_hot_database([2] * 50 + [0, 1], width=4)
        winners = Counter(
            run_reference(
                "aggr = sum(db); output(em(aggr));",
                db,
                epsilon=4.0,
                rng=random.Random(seed),
            )[0]
            for seed in range(30)
        )
        assert winners.most_common(1)[0][0] == 2

    def test_unknown_function(self):
        with pytest.raises(ReferenceError_):
            run_reference("output(spin(db));", one_hot_database([0], 2))

    def test_undefined_variable(self):
        with pytest.raises(ReferenceError_):
            run_reference("output(x);", one_hot_database([0], 2))

    def test_sampling(self):
        db = one_hot_database([0] * 100, width=2)
        interp = ReferenceInterpreter(db, rng=random.Random(3))
        outputs = interp.run_source(
            "s = sampleUniform(db, 0.5); aggr = sum(s); "
            "n = laplace(aggr[0], 0.0001); output(n);"
        )
        assert 30 < outputs[0] < 70


class TestCatalogQueriesRunCentrally:
    @pytest.mark.parametrize(
        "name", ["top1", "topK", "gap", "auction", "hypotest", "secrecy", "median"]
    )
    def test_one_hot_queries(self, name):
        spec = get(name)
        width = 8 if name != "hypotest" else 1
        db = one_hot_database([i % width for i in range(40)], width=width)
        outputs = run_reference(
            spec.source,
            db,
            epsilon=4.0,
            sensitivity=2.0 if name == "median" else 1.0,
            rng=random.Random(7),
        )
        assert outputs

    @pytest.mark.parametrize("name", ["cms", "bayes", "k-medians"])
    def test_bounded_queries(self, name):
        spec = get(name)
        width = {"cms": 1, "bayes": 8, "k-medians": 20}[name]
        rng = random.Random(9)
        db = [[rng.randint(0, 1) for _ in range(width)] for _ in range(40)]
        outputs = run_reference(
            spec.source,
            db,
            epsilon=8.0,
            rng=random.Random(11),
            constants=dict(spec.constants or {}),
        )
        assert outputs


class TestFederatedMatchesReference:
    """For deterministic-given-data answers (dominant categories, high ε),
    centralized and federated execution must agree exactly."""

    def _both(self, name, categories, distribution, epsilon=8.0, seed=51):
        spec = get(name)
        env = spec.environment(48, categories=categories, epsilon=epsilon)
        planning = plan_query(spec.source, env, name=name)
        net = FederatedNetwork(48, rng=random.Random(seed))
        net.load_categorical_data(categories, distribution)
        federated = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(seed + 1),
        ).run()
        db = one_hot_database([d.value for d in net.devices], categories)
        central = run_reference(
            spec.source,
            db,
            epsilon=epsilon,
            sensitivity=env.sensitivity,
            rng=random.Random(seed + 2),
        )
        return federated.outputs, central

    def test_top1_agreement(self):
        fed, central = self._both("top1", 8, [1, 1, 1, 1, 1, 1, 1, 40])
        assert fed[0] == central[0] == 7

    def test_median_agreement(self):
        fed, central = self._both(
            "median", 8, [0.01, 0.01, 0.01, 0.01, 44, 0.01, 0.01, 0.01]
        )
        assert fed[0] == central[0] == 4

    def test_hypotest_agreement(self):
        fed, central = self._both("hypotest", 1, [1.0])
        assert fed[0] == central[0] == 1  # everyone succeeds -> reject
