"""Differential fuzz suite: crypto backends must be bit-identical.

The backend PR's contract is the same one every perf PR in this repo has
carried: a backend may change *how fast* a kernel runs, never *what* it
computes. ``PureBackend`` is the oracle — the seed's pure-python/numpy
kernels, unchanged — and every other backend must reproduce its outputs
exactly: same Python ints, same numpy dtypes, same ciphertext bytes,
same shares, same end-to-end ``QueryResult``s under identical seeds, in
fault-free runs, under chaos scenarios, and across journal crash-resume.

In this container gmpy2/numba are typically absent, so the accelerated
backend exercises its gated fallbacks plus the algorithmic accelerations
that need no compiled library (Montgomery batch inversion). When the
libraries *are* present (the CI ``accel`` job), the identical assertions
pin the mpz/jitted kernels to the oracle — that is the point of the
suite: one set of assertions, any backend.
"""

import random

import numpy as np
import pytest

from repro.crypto import bgv, paillier, shamir
from repro.crypto.backend import (
    AcceleratedBackend,
    PureBackend,
    active_backend_name,
    describe_backends,
    get_backend,
    selection_reason,
    set_backend,
    use_backend,
)
from repro.crypto.field import MERSENNE_61, MERSENNE_127, PrimeField
from repro.faults import FaultInjector, get_scenario
from repro.planner.search import plan_query
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork
from repro.runtime.journal import ExecutionJournal, run_to_completion
from tests.conftest import small_env

BACKENDS = ["pure", "accel"]
TOP1 = "aggr = sum(db); r = em(aggr); output(r);"


@pytest.fixture(autouse=True)
def _restore_backend():
    """Never leak a forced backend into other test modules."""
    yield
    set_backend(None)


def _oracle_and_subject():
    return PureBackend(), AcceleratedBackend()


# ------------------------------------------------------------ kernel fuzz


class TestKernelEquivalence:
    """Every kernel, fuzzed against the pure oracle."""

    def test_powmod_matches_oracle(self):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(0)
        for bits in (16, 64, 256, 1024):
            mod = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
            for _ in range(20):
                base = rng.getrandbits(bits)
                exp = rng.getrandbits(bits)
                got = subject.powmod(base, exp, mod)
                assert got == oracle.powmod(base, exp, mod)
                assert type(got) is int

    def test_powmod_vector_matches_oracle(self):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(1)
        mod = rng.getrandbits(512) | (1 << 511) | 1
        exp = rng.getrandbits(512)
        bases = [rng.getrandbits(512) for _ in range(33)]
        got = subject.powmod_vector(bases, exp, mod)
        assert got == oracle.powmod_vector(bases, exp, mod)
        assert all(type(v) is int for v in got)
        assert subject.powmod_vector([], exp, mod) == []

    def test_powmod_base_vector_matches_oracle(self):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(2)
        mod = rng.getrandbits(384) | (1 << 383) | 1
        base = rng.getrandbits(384) % mod
        exps = [rng.getrandbits(256) for _ in range(17)] + [0, 1]
        got = subject.powmod_base_vector(base, exps, mod)
        assert got == oracle.powmod_base_vector(base, exps, mod)
        assert all(type(v) is int for v in got)

    def test_invmod_matches_oracle_including_failure(self):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(3)
        p = MERSENNE_61
        for _ in range(50):
            a = rng.randrange(1, p)
            assert subject.invmod(a, p) == oracle.invmod(a, p)
        # Non-invertible inputs fail with the same typed error.
        with pytest.raises(ValueError):
            oracle.invmod(0, p)
        with pytest.raises(ValueError):
            subject.invmod(0, p)
        with pytest.raises(ValueError):
            subject.invmod(6, 9)

    @pytest.mark.parametrize("modulus", [MERSENNE_61, MERSENNE_127])
    def test_batch_invmod_matches_oracle(self, modulus):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(4)
        for size in (0, 1, 2, 7, 64):
            values = [rng.randrange(1, modulus) for _ in range(size)]
            got = subject.batch_invmod(values, modulus)
            assert got == oracle.batch_invmod(values, modulus)
            for v, inv in zip(values, got):
                assert v * inv % modulus == 1

    def test_batch_invmod_montgomery_is_exact(self):
        # The accelerated path is Montgomery's trick even without gmpy2;
        # negative and > mod inputs must reduce identically to the oracle.
        oracle, subject = _oracle_and_subject()
        p = 2**61 - 1
        values = [-3, 5, p + 7, 2 * p - 1, 1]
        assert subject.batch_invmod(values, p) == oracle.batch_invmod(values, p)

    def test_batch_invmod_zero_defers_to_per_element_error(self):
        _, subject = _oracle_and_subject()
        with pytest.raises(ValueError):
            subject.batch_invmod([3, 0, 5], MERSENNE_61)

    @pytest.mark.parametrize("dtype", ["int64", "object"])
    def test_slot_ops_match_oracle(self, dtype):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(5)
        t = (1 << 30) + 3 if dtype == "int64" else (1 << 80) + 13
        if dtype == "int64":
            a = np.array([rng.randrange(t) for _ in range(64)], dtype=np.int64)
            b = np.array([rng.randrange(t) for _ in range(64)], dtype=np.int64)
        else:
            a = np.array([rng.randrange(t) for _ in range(64)], dtype=object)
            b = np.array([rng.randrange(t) for _ in range(64)], dtype=object)
        for op in ("slot_add", "slot_sub", "slot_mul"):
            want = getattr(oracle, op)(a, b, t)
            got = getattr(subject, op)(a, b, t)
            assert got.dtype == want.dtype
            assert list(got) == list(want)

    @pytest.mark.parametrize("dtype", ["int64", "object"])
    def test_sum_slots_matches_oracle(self, dtype):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(6)
        t = (1 << 30) + 3 if dtype == "int64" else (1 << 80) + 13
        np_dtype = np.int64 if dtype == "int64" else object
        stack = np.array(
            [[rng.randrange(t) for _ in range(16)] for _ in range(97)],
            dtype=np_dtype,
        )
        want = oracle.sum_slots(stack, t)
        got = subject.sum_slots(stack, t)
        assert got.dtype == want.dtype
        assert list(got) == list(want)
        # Cross-check against the direct python sum.
        assert list(want) == [
            sum(int(stack[i, j]) for i in range(stack.shape[0])) % t
            for j in range(stack.shape[1])
        ]

    def test_sum_slots_chunking_never_overflows_int64(self):
        # Slot values right at t-1 with a t large enough that an unchunked
        # 9-row column sum would overflow a signed 64-bit partial sum
        # (9 * (2^61 - 1) > 2^63): the chunk bound (3 rows here) must kick
        # in and keep every partial within the machine word.
        oracle, subject = _oracle_and_subject()
        t = 1 << 61
        stack = np.full((9, 4), t - 1, dtype=np.int64)
        want = [(9 * (t - 1)) % t] * 4
        assert list(oracle.sum_slots(stack, t)) == want
        assert list(subject.sum_slots(stack, t)) == want

    @pytest.mark.parametrize("modulus", [MERSENNE_61, MERSENNE_127])
    def test_matmul_matvec_match_oracle(self, modulus):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(7)
        a = np.array(
            [[rng.randrange(modulus) for _ in range(5)] for _ in range(9)],
            dtype=object,
        )
        b = np.array(
            [[rng.randrange(modulus) for _ in range(7)] for _ in range(5)],
            dtype=object,
        )
        v = np.array([rng.randrange(modulus) for _ in range(5)], dtype=object)
        want = oracle.matmul_mod(a, b, modulus)
        got = subject.matmul_mod(a, b, modulus)
        assert got.shape == want.shape
        assert got.tolist() == want.tolist()
        assert list(subject.matvec_mod(a, v, modulus)) == list(
            oracle.matvec_mod(a, v, modulus)
        )

    def test_pack_unpack_lanes_match_oracle(self):
        oracle, subject = _oracle_and_subject()
        rng = random.Random(8)
        for lanes, slot_bits in ((1, 8), (3, 7), (15, 8), (4, 33)):
            values = [rng.randrange(1 << slot_bits) for _ in range(lanes)]
            packed = oracle.pack_lanes(values, slot_bits)
            assert subject.pack_lanes(values, slot_bits) == packed
            assert subject.unpack_lanes(packed, slot_bits, lanes) == values
            assert oracle.unpack_lanes(packed, slot_bits, lanes) == values


# ----------------------------------------------------- primitive identity


class TestPrimitiveEquivalence:
    """Whole-primitive byte identity under pinned backends."""

    def _paillier_transcript(self):
        sk = paillier.keygen(128, random.Random(0))
        rng = random.Random(1)
        cts = [paillier.encrypt(sk.public, m, rng) for m in range(8)]
        total = paillier.sum_ciphertexts(cts)
        scaled = paillier.mul_plain(cts[3], 17)
        return (
            sk.lam,
            sk.mu,
            [ct.value for ct in cts],
            total.value,
            scaled.value,
            paillier.decrypt(sk, total),
            rng.getrandbits(64),  # the RNG stream position must match too
        )

    def test_paillier_ciphertexts_byte_identical(self):
        with use_backend("pure"):
            want = self._paillier_transcript()
        with use_backend("accel"):
            got = self._paillier_transcript()
        assert got == want

    def test_paillier_pad_precompute_matches_per_element(self):
        sk = paillier.keygen(96, random.Random(2))
        rng = random.Random(3)
        obfuscators = [paillier.draw_obfuscator(sk.public, rng) for _ in range(16)]
        for name in BACKENDS:
            with use_backend(name):
                pads = paillier.precompute_pads(sk.public, obfuscators)
                assert pads == [
                    get_backend().powmod(r, sk.public.n, sk.public.n_squared)
                    for r in obfuscators
                ]

    def _shamir_transcript(self, modulus):
        field = PrimeField(modulus)
        rng = random.Random(4)
        values = [rng.randrange(field.modulus) for _ in range(13)]
        party_ids = [1, 2, 3, 5, 8]
        shares = shamir.share_vector(values, 2, party_ids, field, rng)
        rows = [
            [shares[pid][i] for pid in party_ids] for i in range(len(values))
        ]
        points = [shares[pid][0] for pid in party_ids[:3]]
        return (
            shares,
            shamir.reconstruct_vector(rows, field),
            shamir.reconstruct_secret(points, field),
            rng.random(),
        )

    @pytest.mark.parametrize("modulus", [MERSENNE_61, MERSENNE_127])
    def test_shamir_shares_byte_identical(self, modulus):
        with use_backend("pure"):
            want = self._shamir_transcript(modulus)
        with use_backend("accel"):
            got = self._shamir_transcript(modulus)
        assert got == want

    def test_lagrange_coefficients_byte_identical(self):
        field = PrimeField(MERSENNE_127)
        ids = [1, 2, 3, 7, 11, 40]
        with use_backend("pure"):
            want = shamir.lagrange_coefficients_at_zero(ids, field)
        with use_backend("accel"):
            got = shamir.lagrange_coefficients_at_zero(ids, field)
        assert got == want

    def _bgv_transcript(self, params):
        sk = bgv.keygen(params, random.Random(5))
        rng = random.Random(6)
        t = params.plaintext_modulus
        a = [rng.randrange(t) for _ in range(params.slots)]
        b = [rng.randrange(t) for _ in range(params.slots)]
        ct_a, ct_b = bgv.encrypt(sk.public, a), bgv.encrypt(sk.public, b)
        cts = [ct_a, ct_b, bgv.add(ct_a, ct_b)]
        return (
            bgv.decrypt(sk, bgv.add(ct_a, ct_b)),
            bgv.decrypt(sk, bgv.sub(ct_a, ct_b)),
            bgv.decrypt(sk, bgv.multiply(ct_a, ct_b)),
            bgv.decrypt(sk, bgv.multiply_plain(ct_a, b)),
            bgv.decrypt(sk, bgv.sum_ciphertexts(cts)),
        )

    def test_bgv_fast_path_byte_identical(self):
        # t = 2^30 stays on the int64 fast path.
        params = bgv.BGVParams(ring_degree_log2=12, ciphertext_modulus_bits=109)
        with use_backend("pure"):
            want = self._bgv_transcript(params)
        with use_backend("accel"):
            got = self._bgv_transcript(params)
        assert got == want

    def test_bgv_exact_path_byte_identical(self):
        # A plaintext modulus past the int64 bound forces the object-dtype
        # exact path — the one the accel backend reimplements with mpz.
        params = bgv.BGVParams(
            plaintext_modulus=(1 << 40) + 27,
            ring_degree_log2=12,
            ciphertext_modulus_bits=109,
        )
        with use_backend("pure"):
            want = self._bgv_transcript(params)
        with use_backend("accel"):
            got = self._bgv_transcript(params)
        assert got == want


# ------------------------------------------------------------- end to end


def _run_query(
    data_plane="vectorized",
    devices=32,
    seed=11,
    malicious_fraction=0.0,
    scenario=None,
    categories=8,
):
    env = small_env(num_participants=devices, categories=categories, epsilon=8.0)
    planning = plan_query(TOP1, env, name="backend-equiv")
    network = FederatedNetwork(
        devices, rng=random.Random(seed), malicious_fraction=malicious_fraction
    )
    network.load_categorical_data(categories)
    faults = FaultInjector(get_scenario(scenario), seed=seed) if scenario else None
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        faults=faults,
        data_plane=data_plane,
    )
    return executor.run()


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("data_plane", ["legacy", "vectorized", "sharded"])
    def test_query_results_identical_across_backends(self, data_plane):
        with use_backend("pure"):
            want = _run_query(data_plane)
        with use_backend("accel"):
            got = _run_query(data_plane)
        # QueryResult equality covers outputs, rejected devices, audits,
        # committees, epsilon, events, and the certificate (statistics
        # are excluded from equality by design).
        assert got == want

    def test_malicious_rejections_identical_across_backends(self):
        with use_backend("pure"):
            want = _run_query(seed=21, malicious_fraction=0.25)
        with use_backend("accel"):
            got = _run_query(seed=21, malicious_fraction=0.25)
        assert want.rejected_devices  # the seed produced some
        assert got == want

    @pytest.mark.parametrize(
        "scenario", ["keygen-loss", "vsr-loss", "garbage-upload"]
    )
    def test_chaos_scenarios_identical_across_backends(self, scenario):
        with use_backend("pure"):
            want = _run_query(seed=5, scenario=scenario)
        with use_backend("accel"):
            got = _run_query(seed=5, scenario=scenario)
        assert want.fault_log.records  # the scenario actually fired
        assert got == want
        assert [
            (r.fault.kind, r.detection, r.recovery, r.outcome)
            for r in got.fault_log.records
        ] == [
            (r.fault.kind, r.detection, r.recovery, r.outcome)
            for r in want.fault_log.records
        ]

    def test_statistics_name_the_active_backend(self):
        for name in BACKENDS:
            with use_backend(name):
                result = _run_query(devices=16)
                assert result.statistics.crypto_backend == name


class TestJournalCrashResumeEquivalence:
    def _build(self, planning, plan, journal=None, seed=5):
        net = FederatedNetwork(32, rng=random.Random(seed))
        net.load_categorical_data(8, distribution=[20, 4, 1, 1, 1, 1, 1, 1])
        return QueryExecutor(
            net,
            planning,
            committee_size=4,
            key_prime_bits=96,
            rng=random.Random(seed + 1),
            faults=FaultInjector(plan, seed=seed),
            journal=journal,
        )

    @pytest.fixture(scope="class")
    def planning(self):
        env = small_env(num_participants=32, categories=8, epsilon=8.0)
        return plan_query(TOP1, env, name="backend-journal")

    def test_crash_resume_identical_across_backends(self, planning, tmp_path):
        # A coordinator crash + journal resume must produce the same
        # result, resume count, and checkpoint digest chain under every
        # backend: the journal digests cover the crypto transcript, so a
        # single non-identical ciphertext would break the chain.
        plan = get_scenario("coordinator-crash-input")
        outcomes = {}
        for name in BACKENDS:
            with use_backend(name):
                path = str(tmp_path / f"{name}.journal")
                result, resumes = run_to_completion(
                    lambda j: self._build(planning, plan, journal=j), path
                )
                digests = ExecutionJournal.load(path).checkpoint_digests()
                outcomes[name] = (result, resumes, digests)
        want = outcomes["pure"]
        assert want[1] == 1  # the crash fired and one resume happened
        for name in BACKENDS[1:]:
            assert outcomes[name] == want

    def test_journaled_fault_free_runs_identical(self, planning, tmp_path):
        outcomes = {}
        for name in BACKENDS:
            with use_backend(name):
                journal = ExecutionJournal.create(
                    str(tmp_path / f"{name}-plain.journal"), {}
                )
                result = self._build(
                    planning, get_scenario("none"), journal=journal
                ).run()
                outcomes[name] = (result, journal.tail_digest())
        assert outcomes["accel"] == outcomes["pure"]


# ------------------------------------------------------ selection plumbing


class TestSelectionMachinery:
    def test_set_backend_and_reason(self):
        backend = set_backend("accel")
        assert backend.name == "accel" and active_backend_name() == "accel"
        assert "forced programmatically" in selection_reason()
        set_backend(None)
        assert active_backend_name() in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cuda")

    def test_env_var_forces_selection(self, monkeypatch):
        for name in BACKENDS:
            monkeypatch.setenv("REPRO_CRYPTO_BACKEND", name)
            set_backend(None)
            assert active_backend_name() == name
            assert "forced by REPRO_CRYPTO_BACKEND" in selection_reason()

    def test_bad_env_var_is_a_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_BACKEND", "fpga")
        with pytest.raises(ValueError, match="not a known backend"):
            set_backend(None)

    def test_use_backend_restores_previous(self):
        set_backend("pure")
        with use_backend("accel") as backend:
            assert backend.name == "accel"
            assert active_backend_name() == "accel"
        assert active_backend_name() == "pure"

    def test_use_backend_restores_on_error(self):
        set_backend("pure")
        with pytest.raises(RuntimeError):
            with use_backend("accel"):
                raise RuntimeError("boom")
        assert active_backend_name() == "pure"

    def test_describe_backends_rows(self):
        rows = describe_backends()
        by_name = {row["backend"]: row for row in rows}
        assert set(by_name) == set(BACKENDS)
        assert by_name["pure"]["available"] is True
        assert by_name["pure"]["unavailable_reason"] is None
        assert sum(1 for row in rows if row["selected"]) == 1
        selected = next(row for row in rows if row["selected"])
        assert selected["selection_reason"]
        for row in rows:
            assert isinstance(row["detail"], str) and row["detail"]

    def test_accel_backend_constructible_without_libraries(self):
        # Forcing accel must never fail, even with no compiled library:
        # each kernel gates on availability and falls back to the oracle.
        backend = AcceleratedBackend()
        assert backend.powmod(3, 5, 7) == pow(3, 5, 7)
        assert isinstance(backend.detail, str)
