"""Tests for the cost model (§4.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.costmodel import (
    Constraints,
    CostModel,
    CostVector,
    Goal,
    PARTICIPANT_DEVICE,
    REFERENCE_SERVER,
    SchemeParams,
    Work,
    ahe_params_for,
    fhe_params_for,
)


class TestCostVector:
    def test_addition(self):
        a = CostVector(1, 2, 3, 4, 5, 6)
        b = CostVector(10, 20, 30, 40, 50, 60)
        total = a + b
        assert total.aggregator_core_seconds == 11
        assert total.participant_max_bytes == 66

    def test_get(self):
        c = CostVector(aggregator_bytes=7.0)
        assert c.get("aggregator_bytes") == 7.0
        with pytest.raises(KeyError):
            c.get("nonsense")

    def test_max_fields(self):
        a = CostVector(1, 20, 3, 40, 5, 60)
        b = CostVector(10, 2, 30, 4, 50, 6)
        m = a.max_fields(b)
        assert m.aggregator_core_seconds == 10
        assert m.aggregator_bytes == 20


class TestConstraints:
    def test_unlimited_allows_everything(self):
        assert Constraints().allows(CostVector(1e18, 1e18, 1e18, 1e18, 1e18, 1e18))

    def test_violation_detected(self):
        limits = Constraints(participant_max_seconds=10.0)
        ok = CostVector(participant_max_seconds=9.0)
        bad = CostVector(participant_max_seconds=11.0)
        assert limits.allows(ok)
        assert not limits.allows(bad)
        assert limits.first_violation(bad) == "participant_max_seconds"
        assert limits.first_violation(ok) is None


class TestGoal:
    def test_primary_metric_dominates(self):
        goal = Goal("participant_expected_seconds")
        cheap = CostVector(participant_expected_seconds=1.0, aggregator_bytes=1e15)
        pricey = CostVector(participant_expected_seconds=2.0)
        assert goal.score(cheap) < goal.score(pricey)

    def test_ties_broken_by_composite(self):
        goal = Goal("participant_expected_seconds")
        a = CostVector(participant_expected_seconds=1.0, aggregator_bytes=1e12)
        b = CostVector(participant_expected_seconds=1.0, aggregator_bytes=1e6)
        # b beats the incumbent a on the tie-break; a does not beat b.
        assert goal.better(b, goal.score(a), goal.composite(a))
        assert not goal.better(a, goal.score(b), goal.composite(b))

    def test_tie_break_never_overrides_primary(self):
        goal = Goal("participant_expected_seconds")
        cheap_primary = CostVector(
            participant_expected_seconds=1.0, aggregator_bytes=1e18
        )
        pricey_primary = CostVector(participant_expected_seconds=1.01)
        assert goal.better(
            cheap_primary,
            goal.score(pricey_primary),
            goal.composite(pricey_primary),
        )

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Goal("wall_clock")


class TestSchemes:
    def test_ahe_ring_grows_with_categories(self):
        small = ahe_params_for(1)
        large = ahe_params_for(2**15)
        assert small.ring_log2 == 11
        assert large.ring_log2 == 15
        assert large.ciphertext_bytes > small.ciphertext_bytes

    def test_fhe_typical_size(self):
        params = fhe_params_for(2**15, depth=2)
        assert params.ring_log2 == 15
        # ~1 MB ciphertexts, like the paper's BGV configuration (§6).
        assert 0.8e6 < params.ciphertext_bytes < 1.5e6

    def test_fhe_depth_scales_modulus(self):
        shallow = fhe_params_for(100, depth=2)
        deep = fhe_params_for(100, depth=8)
        assert deep.ciphertext_modulus_bits > shallow.ciphertext_modulus_bits

    def test_key_sizes(self):
        params = ahe_params_for(100)
        assert params.public_key_bytes == params.ciphertext_bytes
        assert params.secret_key_elements == params.slots


class TestModel:
    def test_unknown_constant_rejected(self):
        with pytest.raises(KeyError):
            CostModel({"warp_drive_seconds": 1.0})

    def test_override(self):
        model = CostModel({"zkp_verify": 1.0})
        work = Work(zkp_verifications=10)
        assert model.compute_seconds(work) == pytest.approx(10.0)

    def test_device_scaling(self):
        model = CostModel()
        work = Work(zkp_verifications=100)
        server = model.device_seconds(work, REFERENCE_SERVER)
        device = model.device_seconds(work, PARTICIPANT_DEVICE)
        assert device == pytest.approx(server * 8.0)

    def test_mpc_costs_scale_with_committee(self):
        model = CostModel()
        work = Work(mpc_setup=1, mpc_comparisons=5)
        small = model.traffic_bytes(work, committee_size=5)
        large = model.traffic_bytes(work, committee_size=50)
        assert large > small

    def test_keygen_anchor(self):
        """§7.2: keygen costs ~700 MB and ~14 min per member at m~40."""
        model = CostModel()
        work = Work(dist_keygens=1.0)
        seconds = model.compute_seconds(work, committee_size=40)
        bytes_sent = model.traffic_bytes(work, committee_size=40)
        assert 10 * 60 < seconds < 18 * 60
        assert 0.5e9 < bytes_sent < 0.9e9

    def test_fixed_seconds_passthrough(self):
        model = CostModel()
        assert model.compute_seconds(Work(fixed_seconds=2.5)) == pytest.approx(2.5)

    def test_energy_model(self):
        model = CostModel()
        mah = model.energy_mah(3600.0, PARTICIPANT_DEVICE)
        # 3.8 W at 3.85 V for one hour ~ 987 mAh.
        assert mah == pytest.approx(987, rel=0.01)

    def test_work_merge(self):
        a = Work(he_additions=2, ring_slots=1024)
        b = Work(he_additions=3, ring_slots=2048)
        merged = a.merge(b)
        assert merged.he_additions == 5
        assert merged.ring_slots == 2048


@given(
    adds=st.integers(min_value=0, max_value=10**6),
    slots=st.sampled_from([1024, 4096, 32768]),
)
@settings(max_examples=50)
def test_compute_seconds_monotone_in_work(adds, slots):
    model = CostModel()
    smaller = Work(he_additions=adds, ring_slots=slots)
    bigger = Work(he_additions=adds + 1, ring_slots=slots)
    assert model.compute_seconds(bigger) >= model.compute_seconds(smaller)
