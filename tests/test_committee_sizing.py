"""Tests for the §5.1 committee-sizing formula."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.committees import (
    CommitteeParameters,
    committee_failure_probability,
    minimum_committee_size,
    per_round_failure_budget,
)


class TestFailureProbability:
    def test_more_members_is_safer(self):
        probabilities = [
            committee_failure_probability(m, num_committees=10) for m in (10, 20, 40, 80)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_more_committees_is_riskier(self):
        p1 = committee_failure_probability(30, num_committees=1)
        p100 = committee_failure_probability(30, num_committees=100)
        assert p100 > p1

    def test_higher_malicious_fraction_is_riskier(self):
        low = committee_failure_probability(30, 10, malicious_fraction=0.01)
        high = committee_failure_probability(30, 10, malicious_fraction=0.10)
        assert high > low

    def test_churn_reduces_safety(self):
        steady = committee_failure_probability(30, 10, churn_tolerance=0.0)
        churny = committee_failure_probability(30, 10, churn_tolerance=0.3)
        assert churny > steady

    def test_probability_bounds(self):
        p = committee_failure_probability(25, 1000)
        assert 0.0 <= p <= 1.0


class TestMinimumSize:
    def test_paper_setting_gives_about_forty(self):
        """§7.1: f=3%, g=0.15, 10^-8 over 1000 queries -> ~40 members."""
        m = minimum_committee_size(115663)
        assert 35 <= m <= 45

    def test_single_committee_smaller(self):
        assert minimum_committee_size(1) < minimum_committee_size(100000)

    def test_monotone_in_committees(self):
        sizes = [minimum_committee_size(c) for c in (1, 10, 1000, 100000)]
        assert sizes == sorted(sizes)

    def test_sizing_satisfies_budget(self):
        c = 500
        p1 = per_round_failure_budget(1e-8, 1000)
        m = minimum_committee_size(c, per_round_budget=p1)
        assert committee_failure_probability(m, c) <= p1
        assert committee_failure_probability(m - 1, c) > p1  # minimal

    def test_invalid_committee_count(self):
        with pytest.raises(ValueError):
            minimum_committee_size(0)


class TestBudget:
    def test_round_budget_composition(self):
        p1 = per_round_failure_budget(1e-8, 1000)
        total = 1 - (1 - p1) ** 1000
        assert total == pytest.approx(1e-8, rel=1e-6)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            per_round_failure_budget(0.0, 100)
        with pytest.raises(ValueError):
            per_round_failure_budget(1e-8, 0)


class TestParameters:
    def test_for_plan(self):
        params = CommitteeParameters.for_plan(100)
        assert params.num_committees == 100
        assert params.committee_size >= 20
        assert params.devices_selected == 100 * params.committee_size

    def test_selection_fraction(self):
        params = CommitteeParameters.for_plan(1000)
        frac = params.selection_fraction(10**9)
        assert frac == pytest.approx(1000 * params.committee_size / 1e9)
        assert params.selection_fraction(10) == 1.0

    def test_honest_quorum(self):
        params = CommitteeParameters.for_plan(10)
        assert params.honest_quorum == math.ceil(0.85 * params.committee_size)


@given(committees=st.integers(min_value=1, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_sizing_always_terminates_reasonably(committees):
    m = minimum_committee_size(committees)
    assert 3 <= m <= 100
