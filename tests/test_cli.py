"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_plan_builtin_query(self, capsys):
        code = main(
            ["plan", "cms", "--participants", "1000000", "--categories", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "vignette" in out
        assert "cost report" in out

    def test_plan_from_file(self, tmp_path, capsys):
        query = tmp_path / "q.arb"
        query.write_text("aggr = sum(db); output(em(aggr));")
        code = main(
            [
                "plan",
                str(query),
                "--participants",
                "1000000",
                "--categories",
                "16",
                "--epsilon",
                "1.0",
            ]
        )
        assert code == 0
        assert "select_max" in capsys.readouterr().out

    def test_plan_with_constraints(self, capsys):
        code = main(
            [
                "plan",
                "top1",
                "--participants", "1000000",
                "--categories", "64",
                "--max-participant-minutes", "30",
                "--max-participant-gb", "4",
            ]
        )
        assert code == 0

    def test_infeasible_returns_nonzero(self, capsys):
        code = main(
            [
                "plan",
                "top1",
                "--participants", "1000000000",
                "--max-aggregator-core-hours", "0.001",
            ]
        )
        assert code == 1
        assert "planning failed" in capsys.readouterr().err

    def test_goal_option(self, capsys):
        code = main(
            [
                "plan", "cms",
                "--participants", "1000000",
                "--categories", "1",
                "--goal", "aggregator_bytes",
            ]
        )
        assert code == 0


class TestRunCommand:
    def test_run_builtin(self, capsys):
        code = main(
            [
                "run", "top1",
                "--devices", "32",
                "--categories", "4",
                "--epsilon", "8.0",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "output(s):" in out
        assert "em selected" in out


class TestQueriesCommand:
    def test_lists_all(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        for name in ("top1", "topK", "median", "k-medians"):
            assert name in out


class TestEvalCommand:
    def test_table2(self, capsys):
        assert main(["eval", "table2"]) == 0
        assert "supported queries" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["eval", "fig99"]) == 1
        assert "unknown artifact" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_vignette_table(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "plan", "top1", "--explain",
                "--participants", "1000000",
                "--categories", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compute/inst" in out
        assert "keygen" in out
        assert "% of devices serve" in out


SERVICE_WORKLOAD = {
    "devices": 24,
    "seed": 7,
    "categories": 8,
    "distribution": [25, 1, 1, 1, 1, 1, 1, 1],
    "epsilon_budget": 10.0,
    "tenants": [
        {"name": "alice", "epsilon_budget": 6.0},
        {"name": "bob", "epsilon_budget": 4.0},
    ],
    "queries": [
        {
            "tenant": "alice",
            "query": "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));",
            "epsilon": 1.0,
        },
        {
            "tenant": "bob",
            "query": "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));",
            "epsilon": 1.0,
        },
    ],
}


class TestServiceCommands:
    def write_workload(self, tmp_path):
        import json

        path = tmp_path / "workload.json"
        path.write_text(json.dumps(SERVICE_WORKLOAD))
        return str(path)

    def test_serve_replays_workload(self, tmp_path, capsys):
        assert main(["serve", self.write_workload(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 submitted" in out
        assert "2 executed" in out
        assert "plan cache:" in out
        assert "alice" in out and "bob" in out

    def test_serve_json_report(self, tmp_path, capsys):
        import json

        assert main(["serve", self.write_workload(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["statistics"]["executed"] == 2
        assert report["budget"]["spent_epsilon"] == pytest.approx(2.0)
        assert {row["tenant"] for row in report["tenants"]} == {"alice", "bob"}

    def test_tenants_table(self, tmp_path, capsys):
        assert main(["tenants", self.write_workload(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tenant" in out and "ε spent" in out
        assert "global: ε 2 spent of 10" in out

    def test_submit_one_query(self, tmp_path, capsys):
        query = tmp_path / "q.arb"
        query.write_text(
            "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"
        )
        code = main(
            [
                "submit", str(query),
                "--tenant", "alice",
                "--categories", "8",
                "--epsilon", "1.0",
                "--epsilon-budget", "5.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "admitted 'alice/0001'" in out
        assert "outcome: executed" in out
        assert "ε charged: 1" in out

    def test_submit_over_budget_is_typed_rejection(self, tmp_path, capsys):
        query = tmp_path / "q.arb"
        query.write_text(
            "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"
        )
        code = main(
            [
                "submit", str(query),
                "--tenant", "alice",
                "--categories", "8",
                "--epsilon", "6.0",
                "--epsilon-budget", "5.0",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "BudgetExhausted" in err


class TestBackendsCommand:
    def test_backends_table(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out and "available" in out
        assert "pure" in out and "accel" in out
        # Exactly one backend is marked active.
        assert out.count("selected:") == 1
        assert "REPRO_CRYPTO_BACKEND" in out

    def test_backends_json(self, capsys):
        import json

        assert main(["backends", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["env_var"] == "REPRO_CRYPTO_BACKEND"
        rows = {row["backend"]: row for row in report["backends"]}
        assert set(rows) == {"pure", "accel"}
        assert rows["pure"]["available"] is True
        assert sum(1 for row in rows.values() if row["selected"]) == 1
        selected = next(row for row in rows.values() if row["selected"])
        assert selected["selection_reason"]

    def test_run_stats_name_the_backend(self, tmp_path, capsys):
        query = tmp_path / "q.arb"
        query.write_text("aggr = sum(db); r = em(aggr); output(r);")
        code = main(
            ["run", str(query), "--devices", "16", "--categories", "4", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        from repro.crypto.backend import active_backend_name

        assert f"crypto_backend: {active_backend_name()}" in out
