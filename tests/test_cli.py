"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_plan_builtin_query(self, capsys):
        code = main(
            ["plan", "cms", "--participants", "1000000", "--categories", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "vignette" in out
        assert "cost report" in out

    def test_plan_from_file(self, tmp_path, capsys):
        query = tmp_path / "q.arb"
        query.write_text("aggr = sum(db); output(em(aggr));")
        code = main(
            [
                "plan",
                str(query),
                "--participants",
                "1000000",
                "--categories",
                "16",
                "--epsilon",
                "1.0",
            ]
        )
        assert code == 0
        assert "select_max" in capsys.readouterr().out

    def test_plan_with_constraints(self, capsys):
        code = main(
            [
                "plan",
                "top1",
                "--participants", "1000000",
                "--categories", "64",
                "--max-participant-minutes", "30",
                "--max-participant-gb", "4",
            ]
        )
        assert code == 0

    def test_infeasible_returns_nonzero(self, capsys):
        code = main(
            [
                "plan",
                "top1",
                "--participants", "1000000000",
                "--max-aggregator-core-hours", "0.001",
            ]
        )
        assert code == 1
        assert "planning failed" in capsys.readouterr().err

    def test_goal_option(self, capsys):
        code = main(
            [
                "plan", "cms",
                "--participants", "1000000",
                "--categories", "1",
                "--goal", "aggregator_bytes",
            ]
        )
        assert code == 0


class TestRunCommand:
    def test_run_builtin(self, capsys):
        code = main(
            [
                "run", "top1",
                "--devices", "32",
                "--categories", "4",
                "--epsilon", "8.0",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "output(s):" in out
        assert "em selected" in out


class TestQueriesCommand:
    def test_lists_all(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        for name in ("top1", "topK", "median", "k-medians"):
            assert name in out


class TestEvalCommand:
    def test_table2(self, capsys):
        assert main(["eval", "table2"]) == 0
        assert "supported queries" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["eval", "fig99"]) == 1
        assert "unknown artifact" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_vignette_table(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "plan", "top1", "--explain",
                "--participants", "1000000",
                "--categories", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compute/inst" in out
        assert "keygen" in out
        assert "% of devices serve" in out
