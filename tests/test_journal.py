"""Durable execution journal and crash-recovery resume (runtime/journal.py).

The contract under test is the PR's headline guarantee, in the same
byte-identical methodology as the fault suite:

* killing the coordinator at **any** checkpoint and resuming from the
  journal yields a ``QueryResult`` (value, fault log, events, budget
  charged) equal to the uninterrupted run — full dataclass equality, not
  just the released value;
* the privacy accountant is debited exactly once per label no matter how
  many incarnations replay the keygen phase;
* a truncated or tampered journal is rejected on load with a typed
  error — never silently replayed.
"""

import json
import random

import pytest

from repro.cli import main
from repro.faults import (
    COORDINATOR_CRASH,
    CoordinatorCrash,
    EventLog,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    UnrecoverableFault,
    get_scenario,
    list_scenarios,
)
from repro.planner.search import plan_query
from repro.privacy.accountant import BudgetExceeded, PrivacyAccountant, PrivacyCost
from repro.queries.catalog import get
from repro.runtime import FederatedNetwork, QueryExecutor
from repro.runtime.journal import (
    ExecutionJournal,
    JournalCorrupted,
    JournalDivergence,
    JournalError,
    JournalTruncated,
    canonical_json,
    payload_digest,
    run_to_completion,
)

SEED = 5


@pytest.fixture(scope="module")
def planning():
    spec = get("top1")
    env = spec.environment(32, categories=8, epsilon=8.0)
    return plan_query(spec.source, env, name=spec.name)


def _build(planning, plan, journal=None, accountant=None, seed=SEED):
    """The fault-suite deployment recipe, plus an optional journal."""
    net = FederatedNetwork(32, rng=random.Random(seed))
    net.load_categorical_data(8, distribution=[20, 4, 1, 1, 1, 1, 1, 1])
    return QueryExecutor(
        net,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        accountant=accountant,
        faults=FaultInjector(plan, seed=seed),
        journal=journal,
    )


def _with_input_crash(plan):
    """``plan`` plus one coordinator death at the end of the input phase."""
    return FaultPlan(
        plan.name + "-crashed",
        plan.description,
        events=plan.events
        + (FaultEvent(COORDINATOR_CRASH, "input", target="input/aggregated"),),
        expect_unrecoverable=plan.expect_unrecoverable,
        mutates_inputs=plan.mutates_inputs,
    )


# ------------------------------------------------------------ file format


class TestJournalFormat:
    def test_create_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {"recipe": "test", "seed": 5})
        journal.checkpoint({"seq": 0, "label": "a"})
        journal.charge("q", 1.0, 0.0)
        journal.record_result({"outputs_repr": "[1]"})
        loaded = ExecutionJournal.load(path)
        assert loaded.manifest == {"recipe": "test", "seed": 5}
        assert loaded.charges() == {"q": (1.0, 0.0)}
        assert loaded.completed and loaded.result == {"outputs_repr": "[1]"}
        assert loaded.record_count == 4
        assert loaded.tail_digest() == journal.tail_digest()

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [2.5]}) == canonical_json(
            dict([("a", [2.5]), ("b", 1)])
        )
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})

    def test_records_are_digest_chained(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        before = journal.tail_digest()
        journal.checkpoint({"seq": 0, "label": "a"})
        assert journal.tail_digest() != before
        lines = (tmp_path / "run.journal").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["kind"] == "open"
        assert all(len(r["digest"]) == 64 for r in records)

    def test_torn_final_write_is_truncation(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.checkpoint({"seq": 0, "label": "a"})
        raw = (tmp_path / "run.journal").read_text()
        (tmp_path / "run.journal").write_text(raw[:-10])
        with pytest.raises(JournalTruncated):
            ExecutionJournal.load(path)

    def test_missing_trailing_newline_is_truncation(self, tmp_path):
        path = str(tmp_path / "run.journal")
        ExecutionJournal.create(path, {})
        raw = (tmp_path / "run.journal").read_text()
        (tmp_path / "run.journal").write_text(raw.rstrip("\n"))
        with pytest.raises(JournalTruncated):
            ExecutionJournal.load(path)

    def test_empty_file_is_truncation(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text("")
        with pytest.raises(JournalTruncated):
            ExecutionJournal.load(str(path))

    def test_tampered_payload_is_corruption(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.charge("q", 1.0, 0.0)
        raw = (tmp_path / "run.journal").read_text()
        (tmp_path / "run.journal").write_text(raw.replace('"epsilon":1.0', '"epsilon":9.0'))
        with pytest.raises(JournalCorrupted):
            ExecutionJournal.load(path)

    def test_dropped_record_is_corruption(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.checkpoint({"seq": 0, "label": "a"})
        journal.checkpoint({"seq": 1, "label": "b"})
        lines = (tmp_path / "run.journal").read_text().splitlines()
        (tmp_path / "run.journal").write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(JournalCorrupted):
            ExecutionJournal.load(path)

    def test_record_boundary_truncation_is_a_valid_prefix(self, tmp_path):
        # WAL property: chopping whole trailing records leaves an intact,
        # resumable journal (that is exactly what a crash leaves behind).
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {"recipe": "test"})
        journal.checkpoint({"seq": 0, "label": "a"})
        journal.checkpoint({"seq": 1, "label": "b"})
        lines = (tmp_path / "run.journal").read_text().splitlines()
        (tmp_path / "run.journal").write_text("\n".join(lines[:2]) + "\n")
        loaded = ExecutionJournal.load(path)
        assert loaded.record_count == 2
        assert loaded.replaying

    def test_error_types_are_a_hierarchy(self):
        assert issubclass(JournalTruncated, JournalCorrupted)
        assert issubclass(JournalCorrupted, JournalError)
        assert issubclass(JournalDivergence, JournalError)

    def test_replay_verifies_then_appends(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.checkpoint({"seq": 0, "label": "a"})
        loaded = ExecutionJournal.load(path)
        assert loaded.replaying
        assert loaded.checkpoint({"seq": 0, "label": "a"}) is True
        assert not loaded.replaying
        assert loaded.checkpoint({"seq": 1, "label": "b"}) is False
        with pytest.raises(JournalDivergence):
            ExecutionJournal.load(path).checkpoint({"seq": 0, "label": "WRONG"})

    def test_consume_crash_absorbs_one_death_each(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.record_crash(3, "allocate/x", {"kind": "coordinator-crash"})
        loaded = ExecutionJournal.load(path)
        assert loaded.crash_count == 1
        assert loaded.consume_crash(3, "allocate/x") is True
        assert loaded.consume_crash(3, "allocate/x") is False
        assert loaded.consume_crash(4, "allocate/x") is False


# -------------------------------------------------- crash→resume headline


class TestCrashResume:
    @pytest.fixture(scope="class")
    def baseline(self, planning):
        return _build(planning, get_scenario("none")).run()

    def test_crash_at_every_checkpoint_resumes_bit_identically(
        self, planning, baseline, tmp_path
    ):
        # Enumerate the checkpoints from an uninterrupted journaled run,
        # then kill the coordinator at each one in turn.
        base_path = str(tmp_path / "baseline.journal")
        base_result, resumes = run_to_completion(
            lambda j: _build(planning, get_scenario("none"), journal=j), base_path
        )
        assert resumes == 0 and base_result == baseline
        base_journal = ExecutionJournal.load(base_path)
        payloads = base_journal.checkpoint_payloads()
        assert len(payloads) >= 5
        for payload in payloads:
            seq = payload["seq"]
            plan = FaultPlan(
                "crash",
                events=(
                    FaultEvent(COORDINATOR_CRASH, payload["phase"], target=seq),
                ),
            )
            path = str(tmp_path / f"crash{seq}.journal")
            result, resumes = run_to_completion(
                lambda j: _build(planning, plan, journal=j), path
            )
            assert resumes == 1, f"checkpoint {seq}"
            assert result == baseline, f"checkpoint {seq}"
            crashed = ExecutionJournal.load(path)
            assert crashed.checkpoint_digests() == base_journal.checkpoint_digests()
            assert crashed.crash_count == 1 and crashed.completed

    @pytest.mark.parametrize(
        "name",
        [
            "coordinator-crash-keygen",
            "coordinator-crash-input",
            "coordinator-crash-program",
            "coordinator-crash-double",
        ],
    )
    def test_pure_crash_scenarios_match_fault_free_baseline(
        self, planning, baseline, tmp_path, name
    ):
        plan = get_scenario(name)
        result, resumes = run_to_completion(
            lambda j: _build(planning, plan, journal=j),
            str(tmp_path / "run.journal"),
        )
        assert resumes == len(plan.events)
        assert result == baseline
        assert result.statistics.resume_events == len(plan.events)

    def test_every_member_fault_scenario_survives_a_crash_on_top(
        self, planning, tmp_path
    ):
        # Headline sweep: each pre-existing scenario, plus one coordinator
        # death at the end of the input phase, must resume to a result
        # equal to that scenario's own uninterrupted run.
        for plan in list_scenarios():
            if plan.crashes_coordinator:
                continue  # covered above / below
            crashed = _with_input_crash(plan)
            path = str(tmp_path / f"{plan.name}.journal")
            if plan.expect_unrecoverable:
                with pytest.raises(UnrecoverableFault) as uninterrupted:
                    _build(planning, plan).run()
                with pytest.raises(UnrecoverableFault) as resumed:
                    run_to_completion(
                        lambda j: _build(planning, crashed, journal=j), path
                    )
                assert resumed.value.reason == uninterrupted.value.reason
                continue
            uninterrupted = _build(planning, plan).run()
            result, resumes = run_to_completion(
                lambda j: _build(planning, crashed, journal=j), path
            )
            assert resumes == 1, plan.name
            assert result == uninterrupted, plan.name

    def test_crash_amid_churn_matches_member_only_run(self, planning, tmp_path):
        plan = get_scenario("crash-amid-churn")
        member_only = FaultPlan(
            "members",
            events=tuple(
                e for e in plan.events if e.kind != COORDINATOR_CRASH
            ),
        )
        uninterrupted = _build(planning, member_only).run()
        result, resumes = run_to_completion(
            lambda j: _build(planning, plan, journal=j),
            str(tmp_path / "run.journal"),
        )
        assert resumes == 1
        assert result == uninterrupted

    def test_journal_presence_does_not_perturb_results(self, planning, tmp_path):
        # A journaled fault-free run equals the journal-less run exactly.
        plain = _build(planning, get_scenario("keygen-loss")).run()
        journal = ExecutionJournal.create(str(tmp_path / "run.journal"), {})
        journaled = _build(
            planning, get_scenario("keygen-loss"), journal=journal
        ).run()
        assert journaled == plain
        assert journaled.statistics.journal_records > 0
        assert journal.completed

    def test_resume_with_wrong_seed_diverges(self, planning, tmp_path):
        path = str(tmp_path / "run.journal")
        plan = get_scenario("coordinator-crash-input")
        journal = ExecutionJournal.create(path, {})
        with pytest.raises(CoordinatorCrash):
            _build(planning, plan, journal=journal).run()
        with pytest.raises(JournalDivergence):
            _build(
                planning, plan, journal=ExecutionJournal.load(path), seed=SEED + 7
            ).run()

    def test_completed_journal_refuses_to_re_execute(self, planning, tmp_path):
        path = str(tmp_path / "run.journal")
        run_to_completion(
            lambda j: _build(planning, get_scenario("none"), journal=j), path
        )
        with pytest.raises(JournalError, match="refusing to re-execute"):
            _build(
                planning, get_scenario("none"), journal=ExecutionJournal.load(path)
            ).run()

    def test_statistics_count_journal_activity(self, planning, tmp_path):
        path = str(tmp_path / "run.journal")
        result, resumes = run_to_completion(
            lambda j: _build(
                planning, get_scenario("coordinator-crash-program"), journal=j
            ),
            path,
        )
        stats = result.statistics
        assert resumes == 1
        assert stats.checkpoints >= 5
        assert stats.journal_replayed >= 1  # verified against incarnation 1
        assert stats.journal_records >= 1  # appended past the death point
        assert stats.resume_events == 1


# -------------------------------------------------------- budget accounting


class TestChargeOnce:
    def test_charge_once_debits_a_label_exactly_once(self):
        accountant = PrivacyAccountant(epsilon_budget=10.0)
        assert accountant.charge_once(PrivacyCost(4.0), "q") is True
        assert accountant.charge_once(PrivacyCost(4.0), "q") is False
        assert accountant.spent.epsilon == 4.0
        assert len(accountant.history) == 1
        assert accountant.charged("q") and not accountant.charged("other")

    def test_failed_charge_leaves_spent_untouched(self):
        accountant = PrivacyAccountant(epsilon_budget=3.0)
        accountant.charge(PrivacyCost(2.0), "first")
        with pytest.raises(BudgetExceeded):
            accountant.charge(PrivacyCost(2.0), "second")
        with pytest.raises(BudgetExceeded):
            accountant.charge_once(PrivacyCost(2.0), "second")
        assert accountant.spent.epsilon == 2.0
        assert len(accountant.history) == 1

    @pytest.mark.parametrize(
        "scenario", ["coordinator-crash-keygen", "coordinator-crash-input"]
    )
    def test_crash_before_and_after_charge_debits_once(
        self, planning, tmp_path, scenario
    ):
        # keygen: death *before* the charge; input: death *after*. Either
        # way every incarnation gets a fresh accountant rebuilt from the
        # journal ledger, and the final spend is one query's worth.
        accountants = []

        def make(journal):
            accountants.append(
                PrivacyAccountant(epsilon_budget=100.0, delta_budget=1e-6)
            )
            return _build(
                planning,
                get_scenario(scenario),
                journal=journal,
                accountant=accountants[-1],
            )

        result, resumes = run_to_completion(
            make, str(tmp_path / "run.journal")
        )
        assert resumes == 1 and len(accountants) == 2
        final = accountants[-1]
        assert final.spent.epsilon == planning.certificate.epsilon
        assert len(final.history) == 1
        assert result.epsilon_charged == planning.certificate.epsilon

    def test_shared_accountant_across_incarnations_debits_once(
        self, planning, tmp_path
    ):
        # An in-process restart reuses the live accountant; charge_once
        # plus the journal ledger must still debit exactly once.
        accountant = PrivacyAccountant(epsilon_budget=100.0, delta_budget=1e-6)
        run_to_completion(
            lambda j: _build(
                planning,
                get_scenario("coordinator-crash-input"),
                journal=j,
                accountant=accountant,
            ),
            str(tmp_path / "run.journal"),
        )
        assert accountant.spent.epsilon == planning.certificate.epsilon
        assert len(accountant.history) == 1

    def test_journal_charge_record_precedes_the_debit(self, tmp_path):
        # Write-ahead ordering, observable at the journal level: the
        # charge lands in the ledger even if the process dies immediately
        # after, so a resumed incarnation can restore it.
        path = str(tmp_path / "run.journal")
        journal = ExecutionJournal.create(path, {})
        journal.charge("top1", 8.0, 0.0)
        assert ExecutionJournal.load(path).charges() == {"top1": (8.0, 0.0)}


# ------------------------------------------------------------- serialization


class TestEventExport:
    def test_event_log_as_dict_and_canonical_json(self):
        log = EventLog()
        event = FaultEvent(COORDINATOR_CRASH, "input", target="input/aggregated")
        log.record(event, "injected for test", "resumed", outcome="recovered")
        data = log.as_dict()
        assert data["records"][0]["fault"]["kind"] == COORDINATOR_CRASH
        assert data["records"][0]["outcome"] == "recovered"
        parsed = json.loads(log.to_json())
        assert parsed == json.loads(canonical_json(data))

    def test_fault_event_dict_roundtrip(self):
        event = FaultEvent("dropout", "decrypt", target=(5, 6), delay=1.5)
        clone = FaultEvent.from_dict(event.as_dict())
        assert clone == event

    def test_fault_plan_dict_roundtrip(self):
        plan = get_scenario("crash-amid-churn")
        clone = FaultPlan.from_dict(plan.as_dict())
        assert clone.name == plan.name
        assert clone.events == plan.events
        assert clone.crashes_coordinator


# ------------------------------------------------------- network satellites


class TestNetworkSatellites:
    def test_unknown_device_id_raises_keyerror_with_range(self):
        net = FederatedNetwork(8, seed=3)
        with pytest.raises(KeyError, match=r"unknown device id 0; .*1\.\.8"):
            net.device(0)
        with pytest.raises(KeyError, match="unknown device id 9"):
            net.device(9)
        with pytest.raises(KeyError, match="unknown device id -1"):
            net.device(-1)
        assert net.device(8).device_id == 8

    def test_seed_parameter_still_reproducible(self):
        a = FederatedNetwork(8, seed=3)
        b = FederatedNetwork(8, seed=3)
        assert a.device_ids == b.device_ids
        assert a.sortition.block == b.sortition.block


# ----------------------------------------------------------------- CLI


class TestCli:
    def test_run_journal_then_resume_completed(self, tmp_path, capsys):
        path = str(tmp_path / "run.journal")
        assert main(
            ["run", "top1", "--devices", "32", "--journal", path]
        ) == 0
        out = capsys.readouterr().out
        assert "journal:" in out and "record(s)" in out
        assert main(["resume", path]) == 0
        out = capsys.readouterr().out
        assert "already complete" in out
        assert "output(s):" in out

    def test_resume_rejects_corrupt_journal(self, tmp_path, capsys):
        path = tmp_path / "run.journal"
        journal = ExecutionJournal.create(str(path), {"recipe": "run"})
        journal.charge("q", 1.0, 0.0)
        path.write_text(path.read_text()[:-5])
        assert main(["resume", str(path)]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_requires_a_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "run.journal")
        ExecutionJournal.create(path, {})
        assert main(["resume", path]) == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_chaos_crash_scenario_via_cli(self, capsys):
        assert main(
            ["chaos", "--scenario", "coordinator-crash-input", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "1/1 scenario(s) ok" in out
        assert "coordinator resume(s)" in out

    def test_chaos_json_output(self, capsys):
        assert main(
            ["chaos", "--scenario", "coordinator-crash-keygen", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["failures"] == 0
        report = data["scenarios"][0]
        assert report["scenario"] == "coordinator-crash-keygen"
        assert report["resumes"] == 1
        assert report["verdict"].startswith("ok")
        assert report["fault_log"] == {
            "records": [],
            "notes": [],
            "retries": 0,
            "waited_seconds": 0.0,
        }
