"""Tests for the higher-level committee protocols."""

import math
import random
import statistics

import pytest

from repro.mpc.engine import MPCEngine
from repro.mpc.protocols import (
    FIXPOINT_SCALE,
    from_fixpoint,
    gumbel_sample,
    laplace_contributions,
    noisy_argmax,
    noisy_max,
    prefix_sums,
    rank_search,
    shared_gumbel_noise,
    shared_laplace_noise,
    to_fixpoint,
)


def make_engine(parties=4, seed=3, bit_width=40):
    return MPCEngine(parties, rng=random.Random(seed), bit_width=bit_width)


class TestFixpoint:
    def test_roundtrip(self):
        for x in (0.0, 1.0, -2.5, 3.14159):
            assert abs(from_fixpoint(to_fixpoint(x)) - x) < 1.0 / FIXPOINT_SCALE

    def test_scale_is_16_bits(self):
        assert FIXPOINT_SCALE == 1 << 16


class TestDistributedLaplace:
    def test_contributions_sum_to_laplace(self):
        """The gamma-difference decomposition produces Laplace samples:
        check variance 2b^2 and symmetry over many joint draws."""
        rng = random.Random(11)
        scale = 2.0
        totals = [sum(laplace_contributions(scale, 5, rng)) for _ in range(4000)]
        assert abs(statistics.mean(totals)) < 0.25
        assert abs(statistics.pvariance(totals) - 2 * scale * scale) < 1.5

    def test_contribution_count(self):
        rng = random.Random(1)
        assert len(laplace_contributions(1.0, 7, rng)) == 7

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            laplace_contributions(1.0, 0, random.Random(1))

    def test_shared_noise_stays_secret_until_open(self):
        e = make_engine()
        noise = shared_laplace_noise(e, 1.0, random.Random(5))
        value = e.open(noise)  # only the joint opening reveals it
        assert isinstance(value, int)

    def test_shared_noise_distribution(self):
        e = make_engine()
        rng = random.Random(17)
        samples = [from_fixpoint(e.open(shared_laplace_noise(e, 1.0, rng))) for _ in range(300)]
        assert abs(statistics.mean(samples)) < 0.4


class TestGumbel:
    def test_gumbel_sample_moments(self):
        rng = random.Random(3)
        samples = [gumbel_sample(1.0, rng) for _ in range(8000)]
        euler = 0.5772156649
        assert abs(statistics.mean(samples) - euler) < 0.1
        assert abs(statistics.pvariance(samples) - math.pi**2 / 6) < 0.3

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            gumbel_sample(0.0, random.Random(1))

    def test_shared_gumbel_opens_to_fixpoint_sample(self):
        e = make_engine()
        value = e.open(shared_gumbel_noise(e, 1.0, random.Random(9)))
        assert -64 * FIXPOINT_SCALE < value < 64 * FIXPOINT_SCALE


class TestNoisyArgmax:
    def test_clear_winner(self):
        e = make_engine()
        scores = [e.input_value(to_fixpoint(s)) for s in (0, 1, 50, 2)]
        winner = noisy_argmax(e, scores, noise_scale=0.5, rng=random.Random(2))
        assert winner == 2

    def test_randomization_with_close_scores(self):
        """With comparable scores the mechanism is randomized: both top
        candidates win sometimes (the exponential mechanism property)."""
        winners = set()
        for seed in range(12):
            e = make_engine(seed=seed)
            scores = [e.input_value(to_fixpoint(s)) for s in (10.0, 10.2)]
            winners.add(noisy_argmax(e, scores, 8.0, random.Random(seed)))
        assert winners == {0, 1}

    def test_noisy_max_returns_value(self):
        e = make_engine()
        scores = [e.input_value(to_fixpoint(s)) for s in (1, 30, 2)]
        index, value = noisy_max(e, scores, 0.5, random.Random(4))
        assert index == 1
        assert from_fixpoint(value) > 20


class TestRankSearch:
    def test_prefix_sums(self):
        e = make_engine()
        values = [e.input_value(v) for v in (1, 2, 3)]
        cums = [e.open(c) for c in prefix_sums(e, values)]
        assert cums == [1, 3, 6]

    def test_median_bin(self):
        e = make_engine()
        hist = [e.input_value(v) for v in (2, 3, 5, 1)]  # total 11, rank 6
        assert e.open(rank_search(e, hist, 6)) == 2

    def test_first_bin(self):
        e = make_engine()
        hist = [e.input_value(v) for v in (10, 1, 1)]
        assert e.open(rank_search(e, hist, 5)) == 0

    def test_last_bin(self):
        e = make_engine()
        hist = [e.input_value(v) for v in (1, 1, 10)]
        assert e.open(rank_search(e, hist, 12)) == 2

    def test_invalid_rank(self):
        e = make_engine()
        with pytest.raises(ValueError):
            rank_search(e, [e.input_value(1)], 0)

    def test_rank_search_matches_cleartext(self):
        rng = random.Random(8)
        for _ in range(5):
            hist = [rng.randrange(6) for _ in range(6)]
            total = sum(hist)
            if total == 0:
                continue
            rank = rng.randint(1, total)
            e = make_engine(seed=rng.randrange(1000))
            shared = [e.input_value(v) for v in hist]
            got = e.open(rank_search(e, shared, rank))
            cum = 0
            for i, count in enumerate(hist):
                cum += count
                if cum >= rank:
                    expected = i
                    break
            assert got == expected
