"""Tests for basic-type and range inference (§4.4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ranges import Interval, bits_needed, point
from repro.analysis.types import (
    AnalysisError,
    QueryEnvironment,
    ValueType,
    infer_types,
)
from repro.lang.parser import parse
from tests.conftest import small_env


def infer(source, env=None):
    return infer_types(parse(source), env or small_env())


class TestIntervals:
    def test_arithmetic(self):
        a, b = Interval(1, 3), Interval(-2, 2)
        assert (a + b) == Interval(-1, 5)
        assert (a - b) == Interval(-1, 5)
        assert (a * b) == Interval(-6, 6)

    def test_division_by_zero_span_unbounded(self):
        assert not (Interval(1, 2) / Interval(-1, 1)).is_finite()

    def test_division(self):
        assert (Interval(4, 8) / Interval(2, 4)) == Interval(1, 4)

    def test_clip(self):
        assert Interval(-10, 10).clip(0, 5) == Interval(0, 5)
        assert Interval(2, 3).clip(0, 5) == Interval(2, 3)

    def test_abs(self):
        assert Interval(-3, 2).abs() == Interval(0, 3)
        assert Interval(1, 2).abs() == Interval(1, 2)
        assert Interval(-4, -1).abs() == Interval(1, 4)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_bits_needed(self):
        assert bits_needed(Interval(0, 1)) == 1
        assert bits_needed(Interval(0, 255)) == 8
        assert bits_needed(Interval(-128, 127)) == 9
        with pytest.raises(ValueError):
            bits_needed(Interval(0, math.inf))

    def test_union_intersect(self):
        assert Interval(0, 2).union(Interval(5, 6)) == Interval(0, 6)
        assert Interval(0, 4).intersect(Interval(2, 8)) == Interval(2, 4)


class TestBasicInference:
    def test_db_shape(self):
        checker = infer("x = db;")
        assert checker.bindings["x"].shape == (48, 8)

    def test_sum_over_db(self):
        checker = infer("aggr = sum(db);")
        aggr = checker.bindings["aggr"]
        assert aggr.shape == (8,)
        assert aggr.interval.hi == 48.0
        assert aggr.basic == "int"

    def test_sum_of_vector(self):
        checker = infer("aggr = sum(db); total = sum(aggr);")
        total = checker.bindings["total"]
        assert total.is_scalar
        assert total.interval.hi == 8 * 48

    def test_em_index_range(self):
        checker = infer("aggr = sum(db); r = em(aggr);")
        r = checker.bindings["r"]
        assert r.basic == "int"
        assert r.interval == Interval(0, 7)

    def test_em_topk_shape(self):
        checker = infer("aggr = sum(db); r = em(aggr, 3);")
        assert checker.bindings["r"].shape == (3,)

    def test_division_makes_fix(self):
        checker = infer("x = 1 / 2;")
        assert checker.bindings["x"].basic == "fix"
        assert checker.bindings["x"].interval == Interval(0.5, 0.5)

    def test_comparison_is_bool(self):
        checker = infer("b = 1 < 2;")
        assert checker.bindings["b"].basic == "bool"

    def test_laplace_widens_interval(self):
        checker = infer("aggr = sum(db); n = laplace(aggr[0], 2.0);")
        n = checker.bindings["n"]
        assert n.basic == "fix"
        assert n.interval.lo < 0 < n.interval.hi

    def test_clip_narrows(self):
        checker = infer("aggr = sum(db); c = clip(aggr[0], 0, 5);")
        assert checker.bindings["c"].interval == Interval(0, 5)

    def test_predefined_constants(self):
        checker = infer("x = N + 0;")
        assert checker.bindings["x"].interval == point(48)

    def test_undefined_variable(self):
        with pytest.raises(AnalysisError):
            infer("x = y + 1;")

    def test_unknown_function(self):
        with pytest.raises(AnalysisError):
            infer("x = frobnicate(db);")

    def test_indexing_scalar_fails(self):
        with pytest.raises(AnalysisError):
            infer("x = 1; y = x[0];")


class TestControlFlow:
    def test_if_joins_branches(self):
        checker = infer("if 1 < 2 then x = 1; else x = 10; endif")
        assert checker.bindings["x"].interval == Interval(1, 10)

    def test_if_requires_bool(self):
        with pytest.raises(AnalysisError):
            infer("if 1 then x = 1; endif")

    def test_short_loop_unrolled(self):
        checker = infer("s = 0; for i = 0 to 3 do s = s + 1; endfor")
        assert checker.bindings["s"].interval.hi == 4

    def test_long_loop_widened_accumulator(self):
        checker = infer("s = 0; for i = 0 to 999 do s = s + 2; endfor")
        # Linear widening: bound within a small factor of the true 2000.
        hi = checker.bindings["s"].interval.hi
        assert 2000 <= hi <= 2010

    def test_loop_variable_range(self):
        checker = infer("for i = 0 to 9 do x = i; endfor")
        assert checker.bindings["i"].interval == Interval(0, 9)

    def test_exponential_growth_rejected(self):
        with pytest.raises(AnalysisError):
            infer("s = 2; for i = 0 to 9999 do s = s * s; endfor")

    def test_array_built_in_loop(self):
        checker = infer("for i = 0 to 7 do a[i] = i * 2; endfor")
        a = checker.bindings["a"]
        assert a.shape == (8,)
        assert a.interval.hi == 14

    def test_product_of_widened_vars_ok(self):
        # The auction pattern: a widened accumulator times a public factor.
        src = """
        aggr = sum(db);
        acc = 0;
        for i = 0 to 7 do
          acc = acc + aggr[i];
          rev[i] = acc * (8 - i);
        endfor
        """
        checker = infer(src)
        assert checker.bindings["rev"].interval.is_finite()


class TestOutputTracking:
    def test_outputs_recorded(self):
        checker = infer("aggr = sum(db); r = em(aggr); output(r); output(r);")
        assert len(checker.output_types) == 2


class TestSamplingTyping:
    def test_sample_preserves_shape(self):
        checker = infer("s = sampleUniform(db, 0.1); aggr = sum(s);")
        assert checker.bindings["aggr"].shape == (8,)

    def test_bad_probability(self):
        with pytest.raises(AnalysisError):
            infer("s = sampleUniform(db, 2.0);")


@given(
    lo=st.integers(min_value=-100, max_value=100),
    width=st.integers(min_value=0, max_value=100),
    k=st.integers(min_value=-10, max_value=10),
)
@settings(max_examples=100)
def test_interval_scale_property(lo, width, k):
    interval = Interval(lo, lo + width)
    scaled = interval.scale(k)
    for x in (interval.lo, interval.hi, (interval.lo + interval.hi) / 2):
        assert scaled.lo - 1e-9 <= x * k <= scaled.hi + 1e-9
