"""Tests for the AST simplifier, including semantics-preservation
property tests against the reference interpreter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import Assign, BoolLit, If, IntLit, Var, format_program
from repro.lang.interp import one_hot_database, ReferenceInterpreter
from repro.lang.parser import parse, parse_expression
from repro.lang.simplify import simplify, simplify_expr


def folded(source):
    return simplify_expr(parse_expression(source))


class TestExpressionFolding:
    def test_arithmetic(self):
        assert folded("2 + 3 * 4").value == 14
        assert folded("10 - 4 - 3").value == 3
        assert folded("6 / 3").value == 2

    def test_division_by_zero_not_folded(self):
        expr = folded("1 / 0")
        assert not isinstance(expr, IntLit)

    def test_comparisons(self):
        assert folded("2 < 3").value is True
        assert folded("2 == 3").value is False

    def test_logic(self):
        assert folded("true && false").value is False
        assert folded("true || false").value is True

    def test_identities(self):
        assert isinstance(folded("x + 0"), Var)
        assert isinstance(folded("0 + x"), Var)
        assert isinstance(folded("x * 1"), Var)
        assert isinstance(folded("x - 0"), Var)
        assert folded("x * 0").value == 0

    def test_effectful_not_dropped_by_zero_mult(self):
        expr = folded("laplace(x, 1.0) * 0")
        # laplace consumes randomness; 0-folding must not remove the call.
        assert not isinstance(expr, IntLit)

    def test_double_negation(self):
        assert isinstance(folded("--x"), Var)
        assert isinstance(folded("!!b"), Var)

    def test_builtin_folding(self):
        assert folded("abs(0 - 5)").value == 5
        assert folded("clip(15, 0, 10)").value == 10
        assert folded("max(3, 9)").value == 9

    def test_nested_folding(self):
        assert folded("(1 + 1) * (2 + 2)").value == 8


class TestStatementSimplification:
    def test_constant_if_eliminated(self):
        program = simplify(parse("if 1 < 2 then x = 1; else x = 2; endif"))
        assert len(program.statements) == 1
        assert isinstance(program.statements[0], Assign)
        assert program.statements[0].value.value == 1

    def test_dead_loop_removed(self):
        program = simplify(parse("for i = 5 to 2 do x = 1; endfor"))
        assert program.statements == []

    def test_self_assignment_removed(self):
        program = simplify(parse("x = x;"))
        assert program.statements == []

    def test_pure_expression_statement_removed(self):
        program = simplify(parse("1 + 2;"))
        assert program.statements == []

    def test_output_never_removed(self):
        program = simplify(parse("output(1 + 2);"))
        assert len(program.statements) == 1

    def test_empty_if_removed(self):
        program = simplify(parse("if x > 0 then y = y; endif"))
        assert program.statements == []

    def test_loop_body_simplified(self):
        program = simplify(parse("for i = 0 to 3 do a[i] = i * 1 + 0; endfor"))
        loop = program.statements[0]
        assert format_program(program).count("+") == 0

    def test_query_still_valid_after_simplify(self):
        from repro.planner.search import plan_query
        from tests.conftest import small_env

        source = """
        aggr = sum(db);
        x = 0;
        if 2 > 1 then
          r = em(aggr);
        else
          r = 0;
        endif
        output(r);
        """
        program = simplify(parse(source))
        text = format_program(program)
        result = plan_query(text, small_env(), name="simplified")
        assert result.succeeded


# ---------------------------------------------------------------------------
# Property: simplification preserves semantics.
# ---------------------------------------------------------------------------

_expr_leaves = st.sampled_from(["1", "2", "3", "0", "x", "y", "7"])


@st.composite
def _expressions(draw, depth=3):
    if depth == 0:
        return draw(_expr_leaves)
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return draw(_expr_leaves)
    left = draw(_expressions(depth=depth - 1))
    right = draw(_expressions(depth=depth - 1))
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({left} {op} {right})"
    if kind == 2:
        op = draw(st.sampled_from(["<", "<=", "==", ">"]))
        return f"(({left} {op} {right}) && true)"
    if kind == 3:
        return f"(0 - {left})"
    if kind == 4:
        return f"abs({left})"
    return f"clip({left}, 0, 10)"


@given(expr_source=_expressions())
@settings(max_examples=120)
def test_folding_preserves_value(expr_source):
    """Evaluating a random pure expression before and after folding gives
    the same result (x=5, y=-2 fixed)."""
    source = f"x = 5; y = 0 - 2; output({expr_source});"
    program = parse(source)
    simplified = simplify(program)
    db = one_hot_database([0], 2)
    original = ReferenceInterpreter(db, rng=random.Random(0)).run(program)
    after = ReferenceInterpreter(db, rng=random.Random(0)).run(simplified)
    assert original == after


@given(
    cond_value=st.booleans(),
    then_value=st.integers(min_value=-5, max_value=5),
    else_value=st.integers(min_value=-5, max_value=5),
    loop_end=st.integers(min_value=-2, max_value=6),
)
@settings(max_examples=60)
def test_statement_simplification_preserves_outputs(
    cond_value, then_value, else_value, loop_end
):
    source = f"""
    s = 0;
    for i = 0 to {loop_end} do
      s = s + i * 1 + 0;
    endfor
    if {"true" if cond_value else "false"} then
      v = {then_value};
    else
      v = {else_value};
    endif
    output(s);
    output(v);
    """
    program = parse(source)
    simplified = simplify(program)
    db = one_hot_database([0], 2)
    original = ReferenceInterpreter(db, rng=random.Random(1)).run(program)
    after = ReferenceInterpreter(db, rng=random.Random(1)).run(simplified)
    assert original == after
