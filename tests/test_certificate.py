"""Tests for query authorization certificates (§5.2)."""

import random

import pytest

from repro.planner.search import plan_query
from repro.queries.catalog import get
from repro.runtime.certificate import (
    CertificateBody,
    CertificateError,
    issue_certificate,
    plan_digest,
    verify_certificate,
)
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork


def make_body(sequence=0, epsilon=1.0):
    return CertificateBody(
        query_sequence=sequence,
        public_key_digest=b"\x01" * 32,
        plan_digest=plan_digest("plan"),
        epsilon_remaining=epsilon,
        delta_remaining=1e-9,
        registry_root=b"\x02" * 32,
        next_block=b"\x03" * 32,
    )


def make_secrets(members):
    rng = random.Random(0)
    return {m: rng.getrandbits(128).to_bytes(16, "big") for m in members}


class TestIssuance:
    def test_all_members_sign(self):
        members = [1, 2, 3, 4, 5]
        secrets = make_secrets(members)
        cert = issue_certificate(make_body(), members, secrets)
        assert len(cert.signatures) == 5
        verify_certificate(cert, secrets)

    def test_quorum_suffices(self):
        """Offline members do not block issuance; a majority suffices."""
        members = [1, 2, 3, 4, 5]
        secrets = make_secrets(members)
        online = {m: secrets[m] for m in (1, 2, 3)}
        cert = issue_certificate(make_body(), members, online)
        assert len(cert.signatures) == 3
        verify_certificate(cert, secrets)

    def test_below_quorum_rejected(self):
        members = [1, 2, 3, 4, 5]
        secrets = make_secrets(members)
        online = {m: secrets[m] for m in (1, 2)}
        cert = issue_certificate(make_body(), members, online)
        with pytest.raises(CertificateError):
            verify_certificate(cert, secrets)


class TestTampering:
    def test_body_tampering_detected(self):
        """A Byzantine aggregator cannot rewrite the budget balance."""
        members = [1, 2, 3]
        secrets = make_secrets(members)
        cert = issue_certificate(make_body(epsilon=5.0), members, secrets)
        from dataclasses import replace

        forged = replace(
            cert, body=replace(cert.body, epsilon_remaining=500.0)
        )
        with pytest.raises(CertificateError):
            verify_certificate(forged, secrets)

    def test_registry_pinning_detected(self):
        """Swapping the pinned device registry (the grinding attack of
        §5.2) invalidates every signature."""
        members = [1, 2, 3]
        secrets = make_secrets(members)
        cert = issue_certificate(make_body(), members, secrets)
        from dataclasses import replace

        forged = replace(
            cert, body=replace(cert.body, registry_root=b"\xff" * 32)
        )
        with pytest.raises(CertificateError):
            verify_certificate(forged, secrets)

    def test_nonmember_signature_rejected(self):
        members = [1, 2, 3]
        secrets = make_secrets(members + [9])
        cert = issue_certificate(make_body(), members, secrets | {9: secrets[9]})
        forged_sigs = dict(cert.signatures)
        forged_sigs[9] = b"\x00" * 32
        from dataclasses import replace

        forged = replace(cert, signatures=forged_sigs)
        with pytest.raises(CertificateError):
            verify_certificate(forged, secrets)

    def test_bad_signature_rejected(self):
        members = [1, 2, 3]
        secrets = make_secrets(members)
        cert = issue_certificate(make_body(), members, secrets)
        forged_sigs = dict(cert.signatures)
        forged_sigs[1] = b"\x00" * 32
        from dataclasses import replace

        forged = replace(cert, signatures=forged_sigs)
        with pytest.raises(CertificateError):
            verify_certificate(forged, secrets)


class TestEndToEnd:
    def test_executor_attaches_certificate(self):
        spec = get("top1")
        env = spec.environment(40, categories=8, epsilon=8.0)
        planning = plan_query(spec.source, env, name="top1")
        net = FederatedNetwork(40, rng=random.Random(61))
        net.load_categorical_data(8, distribution=[20, 1, 1, 1, 1, 1, 1, 1])
        result = QueryExecutor(
            net, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(62),
        ).run()
        cert = result.authorization
        assert cert is not None
        assert len(cert.signatures) >= cert.quorum()
        # Anyone holding the registry can re-verify the published artifact.
        secrets = {m: net.device(m).secret for m in cert.committee}
        verify_certificate(cert, secrets)
        # The certificate pins the plan the committees will execute.
        assert cert.body.plan_digest == plan_digest(planning.plan.describe())
