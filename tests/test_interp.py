"""Tests for the secure program interpreter."""

import random

import pytest

from repro.lang.parser import parse
from repro.mpc.engine import MPCEngine
from repro.runtime.interp import (
    InterpreterError,
    MechanismHooks,
    Secret,
    SecureInterpreter,
)


def make_interp(bindings=None, em=None, laplace=None, seed=1):
    engine = MPCEngine(4, rng=random.Random(seed), bit_width=40)
    hooks = MechanismHooks(
        em=em or (lambda scores, k: 0),
        laplace=laplace or (lambda value, scale: 0.0),
    )
    interp = SecureInterpreter(engine, hooks, bindings or {})
    return engine, interp


def run(source, bindings=None, **kwargs):
    engine, interp = make_interp(bindings, **kwargs)
    outputs = interp.execute(parse(source).statements)
    return engine, interp, outputs


def secrets(engine, values):
    return [Secret(engine.input_value(v)) for v in values]


class TestPublicEvaluation:
    def test_arithmetic(self):
        _e, interp, outputs = run("x = 2 + 3 * 4; output(x);")
        assert outputs == [14]

    def test_loop_and_arrays(self):
        _e, interp, outputs = run(
            "for i = 0 to 4 do a[i] = i * i; endfor output(a[4]);"
        )
        assert outputs == [16]

    def test_public_branching(self):
        _e, _i, outputs = run("x = 5; if x > 3 then y = 1; else y = 2; endif output(y);")
        assert outputs == [1]

    def test_builtin_math(self):
        _e, _i, outputs = run("output(abs(0 - 7)); output(max(1, 9));")
        assert outputs == [7, 9]


class TestSecretEvaluation:
    def test_secret_addition(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [10])[0]
        interp.bindings["b"] = secrets(engine, [32])[0]
        interp.execute(parse("c = a + b;").statements)
        assert engine.open(interp.bindings["c"].value) == 42

    def test_secret_public_mix(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [10])[0]
        interp.execute(parse("c = a * 4 - 2;").statements)
        assert engine.open(interp.bindings["c"].value) == 38

    def test_secret_comparison_yields_secret_bit(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [3])[0]
        interp.execute(parse("b = a < 10; c = a > 10; d = a == 3;").statements)
        assert engine.open(interp.bindings["b"].value) == 1
        assert engine.open(interp.bindings["c"].value) == 0
        assert engine.open(interp.bindings["d"].value) == 1

    def test_secret_abs(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [-9])[0]
        interp.execute(parse("b = abs(a);").statements)
        assert engine.open(interp.bindings["b"].value) == 9

    def test_secret_clip(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [100])[0]
        interp.bindings["b"] = secrets(engine, [-5])[0]
        interp.execute(parse("ca = clip(a, 0, 10); cb = clip(b, 0, 10);").statements)
        assert engine.open(interp.bindings["ca"].value) == 10
        assert engine.open(interp.bindings["cb"].value) == 0

    def test_secret_vector_sum_and_max(self):
        engine, interp = make_interp()
        interp.bindings["v"] = secrets(engine, [5, 9, 2])
        interp.execute(parse("s = sum(v); m = max(v);").statements)
        assert engine.open(interp.bindings["s"].value) == 16
        assert engine.open(interp.bindings["m"].value) == 9

    def test_secret_argmax(self):
        engine, interp = make_interp()
        interp.bindings["v"] = secrets(engine, [5, 9, 2])
        interp.execute(parse("i = argmax(v);").statements)
        assert engine.open(interp.bindings["i"].value) == 1

    def test_declassify_opens(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [17])[0]
        _, _, outputs = engine, interp, interp.execute(
            parse("output(declassify(a));").statements
        )
        assert interp.outputs == [17]

    def test_prefix_sum_loop(self):
        engine, interp = make_interp()
        interp.bindings["v"] = secrets(engine, [1, 2, 3, 4])
        interp.execute(
            parse(
                """
                cum = 0;
                for i = 0 to len(v) - 1 do
                  cum = cum + v[i];
                  sums[i] = cum;
                endfor
                """
            ).statements
        )
        sums = interp.bindings["sums"]
        assert [engine.open(s.value) for s in sums] == [1, 3, 6, 10]


class TestHooks:
    def test_em_hook_called(self):
        calls = {}

        def em(scores, k):
            calls["scores"] = len(scores)
            calls["k"] = k
            return 2

        engine, interp = make_interp(em=em)
        interp.bindings["v"] = secrets(engine, [1, 2, 3])
        outputs = interp.execute(parse("r = em(v); output(r);").statements)
        assert outputs == [2]
        assert calls == {"scores": 3, "k": 1}

    def test_em_k_forwarded(self):
        engine, interp = make_interp(em=lambda scores, k: list(range(k)))
        interp.bindings["v"] = secrets(engine, [1, 2, 3, 4])
        outputs = interp.execute(parse("r = em(v, 2); output(r[1]);").statements)
        assert outputs == [1]

    def test_laplace_hook_called(self):
        engine, interp = make_interp(laplace=lambda value, scale: 99.5)
        interp.bindings["a"] = secrets(engine, [10])[0]
        outputs = interp.execute(
            parse("n = laplace(a, 2.0); output(n);").statements
        )
        assert outputs == [99.5]


class TestRejections:
    def test_secret_branch_rejected(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [1])[0]
        with pytest.raises(InterpreterError):
            interp.execute(parse("if a > 0 then x = 1; endif").statements)

    def test_secret_index_rejected(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [1])[0]
        interp.bindings["v"] = [1, 2, 3]
        with pytest.raises(InterpreterError):
            interp.execute(parse("x = v[a];").statements)

    def test_secret_loop_bound_rejected(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [3])[0]
        with pytest.raises(InterpreterError):
            interp.execute(parse("for i = 0 to a do x = 1; endfor").statements)

    def test_fractional_scaling_rejected(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [4])[0]
        with pytest.raises(InterpreterError):
            interp.execute(parse("x = a * 0.5;").statements)

    def test_secret_exp_rejected(self):
        engine, interp = make_interp()
        interp.bindings["a"] = secrets(engine, [4])[0]
        with pytest.raises(InterpreterError):
            interp.execute(parse("x = exp(a);").statements)

    def test_undefined_variable(self):
        _e, interp = make_interp()[0], make_interp()[1]
        with pytest.raises(InterpreterError):
            interp.execute(parse("x = nope + 1;").statements)
