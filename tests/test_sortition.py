"""Tests for sortition-based committee selection (§5.1)."""

import random

import pytest

from repro.crypto.sortition import (
    SortitionState,
    compute_ticket,
    jointly_generate_block,
    run_sortition,
    selection_probability,
)


def make_tickets(n, block=b"block", round_number=0, seed=1):
    rng = random.Random(seed)
    return [
        compute_ticket(i, rng.getrandbits(128).to_bytes(16, "big"), block, round_number)
        for i in range(1, n + 1)
    ]


class TestTickets:
    def test_deterministic(self):
        secret = b"s" * 16
        a = compute_ticket(1, secret, b"block", 3)
        b = compute_ticket(1, secret, b"block", 3)
        assert a.tag == b.tag

    def test_round_changes_tag(self):
        secret = b"s" * 16
        assert compute_ticket(1, secret, b"block", 1).tag != compute_ticket(
            1, secret, b"block", 2
        ).tag

    def test_block_changes_tag(self):
        secret = b"s" * 16
        assert compute_ticket(1, secret, b"b1", 1).tag != compute_ticket(
            1, secret, b"b2", 1
        ).tag

    def test_secret_changes_tag(self):
        assert compute_ticket(1, b"a" * 16, b"b", 1).tag != compute_ticket(
            1, b"c" * 16, b"b", 1
        ).tag


class TestSelection:
    def test_committee_shapes(self):
        tickets = make_tickets(50)
        assignment = run_sortition(tickets, num_committees=3, committee_size=5)
        assert len(assignment.committees) == 3
        assert all(len(c) == 5 for c in assignment.committees)

    def test_each_device_serves_at_most_once(self):
        tickets = make_tickets(50)
        assignment = run_sortition(tickets, 4, 5)
        selected = assignment.selected_devices
        assert len(selected) == len(set(selected)) == 20

    def test_lowest_hashes_selected(self):
        tickets = make_tickets(20)
        assignment = run_sortition(tickets, 2, 3)
        ordered = sorted(tickets, key=lambda t: (t.tag, t.device_id))
        expected = [t.device_id for t in ordered[:6]]
        assert assignment.selected_devices == expected

    def test_committee_of(self):
        tickets = make_tickets(20)
        assignment = run_sortition(tickets, 2, 3)
        for idx, members in enumerate(assignment.committees):
            for device in members:
                assert assignment.committee_of(device) == idx
        unselected = set(range(1, 21)) - set(assignment.selected_devices)
        assert assignment.committee_of(next(iter(unselected))) == -1

    def test_insufficient_devices(self):
        with pytest.raises(ValueError):
            run_sortition(make_tickets(5), 2, 3)

    def test_duplicate_devices_rejected(self):
        tickets = make_tickets(10)
        with pytest.raises(ValueError):
            run_sortition(tickets + [tickets[0]], 2, 3)

    def test_selection_is_unbiased_ish(self):
        """Across many rounds, every device is selected a similar number of
        times — no device can grind its deterministic tag."""
        counts = {i: 0 for i in range(1, 21)}
        rng = random.Random(0)
        secrets = {i: rng.getrandbits(128).to_bytes(16, "big") for i in counts}
        rounds = 400
        for r in range(rounds):
            block = rng.getrandbits(128).to_bytes(16, "big")
            tickets = [compute_ticket(i, s, block, r) for i, s in secrets.items()]
            assignment = run_sortition(tickets, 1, 5)
            for d in assignment.selected_devices:
                counts[d] += 1
        expected = rounds * 5 / 20
        for device, count in counts.items():
            assert 0.5 * expected < count < 1.5 * expected, (device, count)

    def test_selection_probability(self):
        assert selection_probability(1000, 2, 5) == pytest.approx(0.01)
        assert selection_probability(5, 2, 5) == 1.0


class TestState:
    def test_initial_and_advance(self):
        state = SortitionState.initial([1, 2, 3], b"seed")
        assert state.round_number == 0
        advanced = state.advance(b"newblock", [1, 2, 3, 4])
        assert advanced.round_number == 1
        assert advanced.block == b"newblock"
        assert len(advanced.registry) == 4

    def test_joint_block_generation(self):
        block = jointly_generate_block({1: b"\x01\x02", 2: b"\x03\x04"})
        assert block == b"\x02\x06"

    def test_joint_block_single_honest_contribution_matters(self):
        base = jointly_generate_block({1: b"\xaa", 2: b"\xbb"})
        changed = jointly_generate_block({1: b"\xaa", 2: b"\xbc"})
        assert base != changed

    def test_joint_block_empty_rejected(self):
        with pytest.raises(ValueError):
            jointly_generate_block({})
