"""Tests for AST -> logical-operator lowering (§4.3)."""

import pytest

from repro.lang.parser import parse
from repro.planner.ir import (
    Aggregate,
    EncryptInput,
    LoweringError,
    NoiseOutput,
    Output,
    SelectMax,
    VectorTransform,
    lower,
)
from repro.privacy.certify import certify
from tests.conftest import small_env


def lower_source(source, env=None, name="q"):
    env = env or small_env()
    program = parse(source)
    certificate = certify(program, env)
    return lower(program, env, certificate, name)


def op_names(plan):
    return [op.name for op in plan.ops]


class TestPipelines:
    def test_top1_pipeline(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        assert op_names(plan) == ["input", "aggregate", "select_max", "output"]

    def test_laplace_pipeline(self):
        plan = lower_source(
            "aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);"
        )
        assert op_names(plan) == ["input", "aggregate", "noise_output", "output"]

    def test_topk_k_recorded(self):
        plan = lower_source("aggr = sum(db); r = em(aggr, 5); output(r[0]);")
        select = next(op for op in plan.ops if isinstance(op, SelectMax))
        assert select.k == 5

    def test_transform_between_sum_and_em(self):
        plan = lower_source(
            """
            aggr = sum(db);
            cum = 0;
            for i = 0 to 7 do
              cum = cum + aggr[i];
              scores[i] = 0 - abs(9 - 2 * cum);
            endfor
            r = em(scores);
            output(r);
            """
        )
        names = op_names(plan)
        assert "transform" in names
        transform = next(op for op in plan.ops if isinstance(op, VectorTransform))
        assert transform.nonlinear_ops > 0  # abs forces FHE or MPC
        assert transform.linear_ops > 0

    def test_linear_only_transform(self):
        plan = lower_source(
            """
            aggr = sum(db);
            x = aggr[0] + aggr[1] + aggr[2];
            n = laplace(x, 3 * sens / epsilon);
            output(n);
            """
        )
        transform = next(op for op in plan.ops if isinstance(op, VectorTransform))
        assert transform.nonlinear_ops == 0

    def test_loop_multiplies_op_counts(self):
        plan = lower_source(
            """
            aggr = sum(db);
            s = 0;
            for i = 0 to 7 do
              s = s + aggr[i];
            endfor
            n = laplace(s, 8 * sens / epsilon);
            output(n);
            """
        )
        transform = next(op for op in plan.ops if isinstance(op, VectorTransform))
        assert transform.linear_ops >= 8

    def test_noise_count_from_loop(self):
        env = small_env(categories=8)
        plan = lower_source(
            """
            aggr = sum(db);
            for i = 0 to 7 do
              n[i] = laplace(aggr[i], 8 * sens / epsilon);
            endfor
            output(n[0]);
            """,
            env,
        )
        noises = [op for op in plan.ops if isinstance(op, NoiseOutput)]
        assert sum(op.count for op in noises) == 8

    def test_sampling_recorded(self):
        plan = lower_source(
            "s = sampleUniform(db, 0.05); aggr = sum(s); r = em(aggr); output(r);"
        )
        inp = next(op for op in plan.ops if isinstance(op, EncryptInput))
        assert inp.sample_fraction == pytest.approx(0.05)
        assert plan.sample_fraction == pytest.approx(0.05)

    def test_post_statements_split(self):
        plan = lower_source("aggr = sum(db); r = em(aggr); output(r);")
        assert plan.aggregate_var == "aggr"
        assert len(plan.post_statements) == 2  # em assignment + output

    def test_output_count(self):
        plan = lower_source(
            "aggr = sum(db); r = em(aggr); output(r); output(r);"
        )
        out = next(op for op in plan.ops if isinstance(op, Output))
        assert out.values == 2


class TestValidation:
    def test_aggregate_required(self):
        from repro.analysis.types import QueryEnvironment

        env = small_env()
        program = parse("x = 1; output(x);")
        # Certification passes (public output) but lowering rejects it:
        # there is nothing federated to plan.
        cert = certify(program, env)
        with pytest.raises(LoweringError):
            lower(program, env, cert, "degenerate")
