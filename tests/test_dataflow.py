"""Tests for the privacy dataflow analyzer and its certificates.

The mutation tests are the heart: each seeds one miscalibration that the
PR 1 plan checker *provably* misses (asserted: ``verify_planning_result``
stays clean) and that the dataflow pass must reject with a node-path
diagnostic. The analyzer's value over the syntactic rules is exactly this
set of bugs.
"""

import dataclasses
import math

import pytest

from repro import Planner, QueryEnvironment
from repro.cli import main
from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    FloatLit,
    Index,
    IntLit,
    Var,
)
from repro.privacy.accountant import PrivacyCost
from repro.privacy.certify import Sensitivity
from repro.privacy.sampling import amplified_epsilon
from repro.queries.catalog import ALL_QUERIES
from repro.verify import (
    PlanVerificationError,
    PrivacyCertificate,
    analyze_planning_result,
    lint_paths,
    verify_planning_result,
)
from repro.verify.report import Severity

EM_SOURCE = "aggr = sum(db);\nresult = em(aggr);\noutput(result);"
LAPLACE_SOURCE = (
    "aggr = sum(db);\nresult = laplace(aggr[0], sens / epsilon);\noutput(result);"
)


def small_env(**overrides) -> QueryEnvironment:
    params = dict(num_participants=10**6, row_width=64, epsilon=1.0)
    params.update(overrides)
    return QueryEnvironment(**params)


def plan_em():
    return Planner(small_env()).plan_source(EM_SOURCE, "em-query")


def plan_laplace():
    return Planner(small_env()).plan_source(LAPLACE_SOURCE, "laplace-query")


def errors(report):
    return [v for v in report.violations if v.severity is Severity.ERROR]


def assert_caught_only_by_dataflow(result, rule):
    """The PR 1 checker passes; the dataflow pass flags `rule` with a path."""
    assert verify_planning_result(result).ok, (
        "mutation should be invisible to the syntactic plan checker"
    )
    report, certificate = analyze_planning_result(result)
    assert certificate is None
    hits = [v for v in errors(report) if v.rule == rule]
    assert hits, f"expected {rule}; got {report.format()}"
    assert all(v.location for v in hits), "finding must carry a node path"
    return hits


# ---------------------------------------------------------------- clean plans


class TestCleanAnalysis:
    def test_every_catalog_query_analyzes_clean(self):
        for spec in ALL_QUERIES:
            result = Planner(spec.environment()).plan_source(
                spec.source, spec.name
            )
            report, certificate = analyze_planning_result(result)
            assert report.ok, f"{spec.name}: {report.format()}"
            assert certificate is not None
            assert certificate.analysis == "dataflow"
            assert certificate.nodes, spec.name
            # The derived totals must bracket the accountant's claim.
            assert certificate.total_epsilon.lo <= certificate.claimed_epsilon
            assert math.isclose(
                certificate.total_epsilon.hi,
                certificate.claimed_epsilon,
                rel_tol=1e-9,
            )

    def test_planner_attaches_certificate(self):
        result = plan_em()
        assert result.privacy_certificate is not None
        assert result.privacy_certificate.query_name == "em-query"

    def test_digest_deterministic_across_reanalysis(self):
        result = plan_em()
        _, first = analyze_planning_result(result)
        _, second = analyze_planning_result(result)
        assert first.digest() == second.digest()
        assert first.digest() == result.privacy_certificate.digest()

    def test_node_paths_name_statements(self):
        _, cert = analyze_planning_result(plan_laplace())
        assert cert.nodes[0].node_path.startswith("post[")
        assert "line" in cert.nodes[0].node_path

    def test_serialized_plan_embeds_certificate(self):
        from repro.planner.serialize import planning_result_to_dict

        out = planning_result_to_dict(plan_em())
        assert out["privacy_certificate"]["analysis"] == "dataflow"
        assert out["privacy_certificate_digest"] == (
            PrivacyCertificate.from_dict(out["privacy_certificate"]).digest()
        )


class TestCertificateRoundTrip:
    def test_dict_round_trip_preserves_digest(self):
        _, cert = analyze_planning_result(plan_laplace())
        clone = PrivacyCertificate.from_dict(cert.to_dict())
        assert clone == cert
        assert clone.digest() == cert.digest()

    def test_any_field_change_changes_digest(self):
        _, cert = analyze_planning_result(plan_em())
        bumped = dataclasses.replace(cert, claimed_epsilon=cert.claimed_epsilon * 2)
        assert bumped.digest() != cert.digest()

    def test_format_is_readable(self):
        _, cert = analyze_planning_result(plan_em())
        text = cert.format()
        assert "privacy certificate" in text
        assert "total: eps" in text


# ------------------------------------------------- seeded miscalibrations


class TestSeededMiscalibrations:
    """Each mutation is invisible to PR 1's rules and fatal to dataflow."""

    def test_01_laplace_epsilon_undercharged(self):
        # Halve the recorded ε and the claimed total consistently: the
        # certificate still sums (PR 1's only ε check) but the mechanism
        # is undercharged for the noise the scale actually buys.
        result = plan_laplace()
        use = result.certificate.mechanisms[0]
        result.certificate.mechanisms[0] = dataclasses.replace(
            use, epsilon=use.epsilon / 2
        )
        result.certificate.cost = PrivacyCost(
            use.epsilon / 2, result.certificate.cost.delta
        )
        assert_caught_only_by_dataflow(result, "df-noise-scale")

    def test_02_recorded_sensitivity_shrunk(self):
        # As if a rewrite dropped a clip after certification: the record
        # promises less sensitivity than the dataflow proves flows in.
        result = plan_laplace()
        use = result.certificate.mechanisms[0]
        result.certificate.mechanisms[0] = dataclasses.replace(
            use, sensitivity=Sensitivity(use.sensitivity.l1 / 4, 0.25)
        )
        hits = assert_caught_only_by_dataflow(result, "df-sensitivity-certified")
        assert "does not dominate" in hits[0].message

    def test_03_budget_double_spend(self):
        # Split one recorded use into two at half ε each: the sum — all
        # PR 1 verifies — is unchanged, but the plan releases once while
        # the ledger books two entries (double-spend bookkeeping fraud).
        result = plan_laplace()
        use = result.certificate.mechanisms[0]
        halved = dataclasses.replace(use, epsilon=use.epsilon / 2)
        result.certificate.mechanisms = [halved, halved]
        hits = assert_caught_only_by_dataflow(result, "df-budget-interval")
        assert "double-spend" in hits[0].message

    def test_04_raw_output_appended(self):
        # A post-certification rewrite appends output(aggr[0]): the raw
        # count crosses the release boundary with no mechanism.
        result = plan_laplace()
        result.logical_plan.post_statements.append(
            ExprStmt(Call("output", [Index(Var("aggr"), IntLit(0))]))
        )
        hits = assert_caught_only_by_dataflow(result, "df-taint-release")
        # The aggregate is clipped (ZKP-enforced element bounds) but never
        # noised: still un-releasable.
        assert "CLIPPED" in hits[0].message

    def test_05_sketch_leak(self):
        # Leak through an aggregation: output(sum(aggr)) looks like a
        # derived sketch statistic but carries the full L1 sensitivity.
        result = plan_em()
        result.logical_plan.post_statements.append(
            ExprStmt(Call("output", [Call("sum", [Var("aggr")])]))
        )
        assert_caught_only_by_dataflow(result, "df-taint-release")

    def test_06_released_value_laundering(self):
        # Multiplying a released value by a raw one does not launder the
        # raw taint: the product is un-released.
        result = plan_laplace()
        result.logical_plan.post_statements.extend(
            [
                Assign(
                    "evil",
                    BinOp("*", Var("result"), Index(Var("aggr"), IntLit(0))),
                ),
                ExprStmt(Call("output", [Var("evil")])),
            ]
        )
        assert_caught_only_by_dataflow(result, "df-taint-release")

    def test_07_phantom_sampling_amplification(self):
        # The record claims secrecy-of-the-sample amplification (and the
        # correspondingly smaller ε) but the plan's input op samples
        # nothing: every device uploads.
        result = plan_laplace()
        use = result.certificate.mechanisms[0]
        shrunk = amplified_epsilon(use.epsilon, 0.5)
        result.certificate.mechanisms[0] = dataclasses.replace(
            use, epsilon=shrunk, sample_phi=0.5
        )
        result.certificate.cost = PrivacyCost(
            shrunk, result.certificate.cost.delta
        )
        assert_caught_only_by_dataflow(result, "df-sampling-amplification")

    def test_08_delta_zeroed(self):
        # Dropping the finite-precision δ understates the guarantee.
        result = plan_laplace()
        use = result.certificate.mechanisms[0]
        result.certificate.mechanisms[0] = dataclasses.replace(use, delta=0.0)
        result.certificate.cost = PrivacyCost(
            result.certificate.cost.epsilon, 0.0
        )
        assert_caught_only_by_dataflow(result, "df-budget-interval")

    def test_09_noise_scale_swapped_after_certification(self):
        # Replace the laplace scale expression with a literal the type
        # derivation never saw (a post-certification rewrite shrinking
        # the noise): no proven positive lower bound exists.
        result = plan_laplace()
        for stmt in result.logical_plan.post_statements:
            if isinstance(stmt, Assign) and isinstance(stmt.value, Call):
                if stmt.value.func == "laplace":
                    stmt.value.args[1] = FloatLit(0.001, line=stmt.value.line)
        hits = assert_caught_only_by_dataflow(result, "df-noise-scale")
        assert "lower bound" in hits[0].message

    def test_10_em_arity_tampered(self):
        # Record k=2 (with the matching sqrt(2) ε so the sums still
        # agree) while the plan's SelectMax selects k=1.
        result = plan_em()
        use = result.certificate.mechanisms[0]
        inflated = use.epsilon * math.sqrt(2)
        result.certificate.mechanisms[0] = dataclasses.replace(
            use, k=2, epsilon=inflated
        )
        result.certificate.cost = PrivacyCost(
            inflated, result.certificate.cost.delta
        )
        hits = assert_caught_only_by_dataflow(result, "df-budget-interval")
        assert "k=" in hits[0].message

    def test_11_em_epsilon_undercharged(self):
        result = plan_em()
        use = result.certificate.mechanisms[0]
        result.certificate.mechanisms[0] = dataclasses.replace(
            use, epsilon=use.epsilon / 4
        )
        result.certificate.cost = PrivacyCost(
            use.epsilon / 4, result.certificate.cost.delta
        )
        assert_caught_only_by_dataflow(result, "df-noise-scale")


class TestAnalystAssertedSensitivity:
    def test_loose_env_sensitivity_warns_but_does_not_fail(self):
        # The median pattern: prefix-sum scores whose derived L∞ bound
        # exceeds the analyst-declared Δ that sizes the runtime EM noise.
        # The repo's trust model accepts the analyst's Δ (like a manual
        # certificate), so this is a warning, not an error.
        source = (
            "aggr = sum(db);\n"
            "c = len(aggr);\n"
            "cum = 0;\n"
            "for i = 0 to c - 1 do\n"
            "  cum = cum + aggr[i];\n"
            "  scores[i] = 0 - abs(N + 1 - 2 * cum);\n"
            "endfor\n"
            "r = em(scores);\n"
            "output(r);"
        )
        env = small_env(row_width=8, epsilon=8.0, sensitivity=2.0)
        result = Planner(env).plan_source(source, "median-loose")
        report, certificate = analyze_planning_result(result)
        assert report.ok  # warnings do not fail the analysis
        assert certificate is not None
        warned = [
            v
            for v in report.violations
            if v.severity is Severity.WARNING and v.rule == "df-noise-scale"
        ]
        assert warned and "asserted" in warned[0].message


# ------------------------------------------------------------ executor gate


class TestExecutorGate:
    def _plan(self):
        env = QueryEnvironment(
            num_participants=32, row_width=8, epsilon=4.0, sensitivity=1.0
        )
        return Planner(env).plan_source(EM_SOURCE, "gate-query")

    def test_valid_plan_runs_and_pins_certificate_digest(self):
        import random

        from repro.runtime.executor import QueryExecutor
        from repro.runtime.network import FederatedNetwork

        planning = self._plan()
        network = FederatedNetwork(32, rng=random.Random(11))
        network.load_categorical_data(8)
        executor = QueryExecutor(
            network,
            planning,
            committee_size=4,
            key_prime_bits=96,
            rng=random.Random(12),
        )
        outcome = executor.run()
        assert outcome.value is not None
        assert executor.privacy_certificate is not None
        body = executor.certificate.body
        assert body.privacy_certificate_digest == (
            executor.privacy_certificate.digest_bytes()
        )

    def test_tampered_plan_refused(self):
        import random

        from repro.runtime.executor import QueryExecutor
        from repro.runtime.network import FederatedNetwork

        planning = self._plan()
        planning.logical_plan.post_statements.append(
            ExprStmt(Call("output", [Index(Var("aggr"), IntLit(0))]))
        )
        network = FederatedNetwork(32, rng=random.Random(11))
        network.load_categorical_data(8)
        executor = QueryExecutor(
            network,
            planning,
            committee_size=4,
            key_prime_bits=96,
            rng=random.Random(12),
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            executor.run()
        assert "df-taint-release" in str(excinfo.value)

    def test_stale_certificate_refused(self):
        import random

        from repro.runtime.executor import QueryExecutor
        from repro.runtime.network import FederatedNetwork

        planning = self._plan()
        planning.privacy_certificate = dataclasses.replace(
            planning.privacy_certificate,
            claimed_epsilon=planning.privacy_certificate.claimed_epsilon * 2,
        )
        network = FederatedNetwork(32, rng=random.Random(11))
        network.load_categorical_data(8)
        executor = QueryExecutor(
            network,
            planning,
            committee_size=4,
            key_prime_bits=96,
            rng=random.Random(12),
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            executor.run()
        assert "df-certificate-stale" in str(excinfo.value)


# -------------------------------------------------------------------- CLI


class TestCli:
    SMALL = ["--participants", "100000", "--categories", "64"]

    def test_verify_plan_dataflow_flag(self, capsys):
        assert main(["verify-plan", "top1", "--dataflow", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "dataflow for" in out
        assert "privacy certificate" in out

    def test_certificate_command_emits_json(self, capsys):
        import json

        assert main(["certificate", "top1", *self.SMALL]) == 0
        payload = json.loads(capsys.readouterr().out)
        cert = PrivacyCertificate.from_dict(payload)
        assert cert.query_name == "top1"
        assert cert.nodes

    def test_verify_sweep(self, capsys):
        assert main(["verify-sweep"]) == 0
        out = capsys.readouterr().out
        assert "11/11 plan(s) analyze clean" in out


# ------------------------------------------------------------ source lint


def _write(tmp_path, rel, text):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestRngStreamHygiene:
    def test_duplicate_label_across_files_flagged(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "def f(inj):\n    return inj.fresh('noise/em')\n",
        )
        _write(
            tmp_path,
            "mpc/b.py",
            "def g(inj):\n    return inj.persistent('noise/em')\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        rules = [v.rule for v in report.violations]
        assert rules.count("rng-stream-hygiene") == 2
        assert any("also derived at" in v.message for v in report.violations)

    def test_fstring_templates_collide(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "def f(inj, i):\n    return inj.fresh(f'noise/{i}')\n",
        )
        _write(
            tmp_path,
            "runtime/b.py",
            "def g(inj, j):\n    return inj.fresh(f'noise/{j}')\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert [v.rule for v in report.violations].count("rng-stream-hygiene") == 2

    def test_unique_labels_pass(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "def f(inj):\n"
            "    return inj.fresh('noise/em'), inj.fresh('noise/laplace')\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert not [v for v in report.violations if v.rule == "rng-stream-hygiene"]

    def test_dynamic_labels_skipped(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "def f(inj, label):\n    return inj.fresh(label)\n",
        )
        _write(
            tmp_path,
            "runtime/b.py",
            "def g(inj, label):\n    return inj.fresh(label)\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert not [v for v in report.violations if v.rule == "rng-stream-hygiene"]

    def test_outside_scope_not_collected(self, tmp_path):
        _write(
            tmp_path,
            "analysis/a.py",
            "def f(inj):\n    return inj.fresh('x')\n",
        )
        _write(
            tmp_path,
            "analysis/b.py",
            "def g(inj):\n    return inj.fresh('x')\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert not [v for v in report.violations if v.rule == "rng-stream-hygiene"]


class TestNoNumpyDefaultRng:
    def test_global_stream_call_flagged(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "import numpy as np\n\ndef f():\n    return np.random.normal(0, 1)\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert any(v.rule == "no-numpy-default-rng" for v in report.violations)

    def test_unseeded_default_rng_flagged(self, tmp_path):
        _write(
            tmp_path,
            "mpc/a.py",
            "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert any(v.rule == "no-numpy-default-rng" for v in report.violations)

    def test_seeded_default_rng_allowed(self, tmp_path):
        _write(
            tmp_path,
            "crypto/a.py",
            "import numpy as np\n\ndef f(seed):\n"
            "    return np.random.default_rng(seed)\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert not [
            v for v in report.violations if v.rule == "no-numpy-default-rng"
        ]

    def test_direct_import_flagged(self, tmp_path):
        _write(
            tmp_path,
            "runtime/a.py",
            "from numpy.random import default_rng\n\ndef f():\n"
            "    return default_rng()\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert any(v.rule == "no-numpy-default-rng" for v in report.violations)

    def test_outside_scope_allowed(self, tmp_path):
        _write(
            tmp_path,
            "eval/a.py",
            "import numpy as np\n\ndef f():\n    return np.random.normal(0, 1)\n",
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert not [
            v for v in report.violations if v.rule == "no-numpy-default-rng"
        ]

    def test_repo_tree_is_clean(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        report = lint_paths([src])
        assert not [
            v
            for v in report.violations
            if v.rule in ("rng-stream-hygiene", "no-numpy-default-rng")
        ], report.format()
