"""Tests for Verifiable Secret Redistribution."""

import random

import pytest

from repro.crypto.field import MERSENNE_61, PrimeField
from repro.crypto.shamir import Share, reconstruct_secret, share_secret
from repro.crypto.vsr import (
    VSRError,
    combine_sub_shares,
    redistribute_secret,
    redistribute_share,
    redistribute_vector,
    verify_sub_share,
)

FIELD = PrimeField(MERSENNE_61)


class TestRedistribution:
    def test_same_secret_after_redistribution(self, rng):
        old = share_secret(1234, 2, [1, 2, 3, 4, 5], FIELD, rng)
        new = redistribute_secret(old, 2, 2, [1, 2, 3, 4, 5], FIELD, rng)
        assert reconstruct_secret(new[:3], FIELD) == 1234

    def test_new_committee_can_differ_in_size(self, rng):
        old = share_secret(99, 1, [1, 2, 3], FIELD, rng)
        new = redistribute_secret(old, 1, 3, [1, 2, 3, 4, 5, 6, 7], FIELD, rng)
        assert reconstruct_secret(new[:4], FIELD) == 99

    def test_new_shares_are_fresh(self, rng):
        """Old and new shares cannot be combined: the polynomials differ."""
        old = share_secret(5, 1, [1, 2, 3], FIELD, rng)
        new = redistribute_secret(old, 1, 1, [1, 2, 3], FIELD, rng)
        mixed = [old[0], new[1]]
        assert reconstruct_secret(mixed, FIELD) != 5  # w.h.p.

    def test_not_enough_old_shares(self, rng):
        old = share_secret(5, 2, [1, 2, 3, 4, 5], FIELD, rng)
        with pytest.raises(VSRError):
            redistribute_secret(old[:2], 2, 1, [1, 2, 3], FIELD, rng)


class TestVerification:
    def test_sub_shares_verify(self, rng):
        share = Share(3, 777)
        msg = redistribute_share(share, 1, [1, 2, 3], FIELD, rng)
        for sub in msg.sub_shares:
            assert verify_sub_share(sub, msg.commitment, FIELD)

    def test_tampered_sub_share_detected(self, rng):
        share = Share(3, 777)
        msg = redistribute_share(share, 1, [1, 2, 3], FIELD, rng)
        from repro.crypto.vsr import SubShare

        bad = SubShare(msg.sub_shares[0].source, msg.sub_shares[0].x, msg.sub_shares[0].y + 1)
        assert not verify_sub_share(bad, msg.commitment, FIELD)

    def test_combine_rejects_tampering(self, rng):
        old = share_secret(42, 1, [1, 2, 3], FIELD, rng)
        msgs = [redistribute_share(s, 1, [1, 2, 3], FIELD, rng) for s in old[:2]]
        # Corrupt dealer 1's sub-share for party 2.
        from dataclasses import replace
        from repro.crypto.vsr import SubShare

        tampered_subs = tuple(
            SubShare(s.source, s.x, s.y + 1) if s.x == 2 else s
            for s in msgs[0].sub_shares
        )
        msgs[0] = replace(msgs[0], sub_shares=tampered_subs)
        with pytest.raises(VSRError):
            combine_sub_shares(2, msgs, FIELD)

    def test_combine_requires_messages(self):
        with pytest.raises(VSRError):
            combine_sub_shares(1, [], FIELD)

    def test_missing_recipient_detected(self, rng):
        share = Share(1, 10)
        msg = redistribute_share(share, 1, [1, 2], FIELD, rng)
        with pytest.raises(VSRError):
            combine_sub_shares(9, [msg, msg], FIELD)


class TestVectorRedistribution:
    def test_vector_roundtrip(self, rng):
        values = [10, 20, 30]
        party_ids = [1, 2, 3, 4, 5]
        old_vectors = {pid: [] for pid in party_ids}
        for v in values:
            for s in share_secret(v, 2, party_ids, FIELD, rng):
                old_vectors[s.x].append(s)
        new = redistribute_vector(old_vectors, 2, 1, [1, 2, 3], FIELD, rng)
        for i, expected in enumerate(values):
            shares = [new[p][i] for p in (1, 2)]
            assert reconstruct_secret(shares, FIELD) == expected

    def test_inconsistent_lengths_rejected(self, rng):
        with pytest.raises(VSRError):
            redistribute_vector(
                {1: [Share(1, 1)], 2: []}, 0, 0, [1, 2], FIELD, rng
            )

    def test_empty_rejected(self, rng):
        with pytest.raises(VSRError):
            redistribute_vector({}, 0, 0, [1], FIELD, rng)


class TestChainedRedistribution:
    def test_multi_hop_chain(self, rng):
        """Key shares hop across several committees (the §5.2 VSR tree)."""
        secret = 31337
        shares = share_secret(secret, 2, [1, 2, 3, 4, 5], FIELD, rng)
        for _hop in range(4):
            shares = redistribute_secret(shares, 2, 2, [1, 2, 3, 4, 5], FIELD, rng)
        assert reconstruct_secret(shares[:3], FIELD) == secret


class TestExtendedVSRProvenance:
    def test_provenanced_sharing_roundtrip(self, rng):
        from repro.crypto.vsr import (
            redistribute_with_provenance,
            share_secret_with_provenance,
            verify_share_provenance,
        )

        sharing = share_secret_with_provenance(4242, 2, [1, 2, 3, 4, 5], FIELD, rng)
        for share in sharing.shares:
            assert verify_share_provenance(share, sharing.commitment, FIELD)
        new = redistribute_with_provenance(sharing, 2, 2, [1, 2, 3, 4, 5], FIELD, rng)
        assert reconstruct_secret(new[:3], FIELD) == 4242

    def test_dealer_with_substituted_share_caught(self, rng):
        """A dealer whose input share is not the committed one is detected
        even though its sub-shares would be mutually consistent — the
        'Extended' part of Extended VSR."""
        from dataclasses import replace as _replace

        from repro.crypto.vsr import (
            redistribute_with_provenance,
            share_secret_with_provenance,
        )

        sharing = share_secret_with_provenance(99, 1, [1, 2, 3], FIELD, rng)
        forged_shares = (Share(1, sharing.shares[0].y + 7),) + sharing.shares[1:]
        forged = _replace(sharing, shares=forged_shares)
        with pytest.raises(VSRError, match="provenance"):
            redistribute_with_provenance(forged, 1, 1, [1, 2, 3], FIELD, rng)

    def test_plain_vsr_would_miss_the_substitution(self, rng):
        """Contrast: plain VSR happily redistributes the forged share —
        provenance is what Extended VSR adds."""
        from repro.crypto.vsr import share_secret_with_provenance

        sharing = share_secret_with_provenance(99, 1, [1, 2, 3], FIELD, rng)
        forged = [Share(1, sharing.shares[0].y + 7)] + list(sharing.shares[1:])
        new = redistribute_secret(forged, 1, 1, [1, 2, 3], FIELD, rng)
        assert reconstruct_secret(new[:2], FIELD) != 99  # silently wrong
