"""Fault-injection engine and churn-tolerant recovery (repro.faults).

The contract under test is §5.1's: committees are sized so that a
malicious fraction *and* a churned fraction of members can be tolerated,
with tasks failing over to committee i+1 mod c. Concretely:

* every within-tolerance fault schedule recovers to a released value
  **bit-identical** to the fault-free run with the same seeds;
* the event log pairs every injected fault with a detection, a recovery
  action, and a terminal outcome;
* schedules beyond the tolerance raise a typed ``UnrecoverableFault``
  carrying the log — never a hang, never a silently wrong answer.
"""

import random

import pytest

from repro.faults import (
    CRASH,
    DROPOUT,
    PENDING,
    PROTOCOL_KINDS,
    RECOVERED,
    STRAGGLER,
    TOLERATED,
    UNRECOVERABLE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    UnrecoverableFault,
    derive_stream_seed,
    get_scenario,
    list_scenarios,
)
from repro.planner.search import plan_query
from repro.privacy.accountant import PrivacyAccountant
from repro.queries.catalog import ALL_QUERIES, get
from repro.runtime.committee import Committee, CommitteeError, CommitteePool
from repro.runtime.executor import QueryExecutor
from repro.runtime.network import FederatedNetwork
from repro.crypto.vsr import VSRError


# --------------------------------------------------------------- helpers


def _environment(spec):
    categories = {"hypotest": 1, "cms": 1, "k-medians": 20}.get(spec.name, 8)
    epsilon = {"bayes": 16.0, "k-medians": 40.0}.get(spec.name, 8.0)
    return spec.environment(32, categories=categories, epsilon=epsilon)


def _load_data(spec, net):
    if spec.name == "cms":
        net.load_numeric_data(0, 1, width=1)
    elif spec.name == "bayes":
        net.load_numeric_data(0, 1, width=8)
    elif spec.name == "k-medians":
        rng = random.Random(11)
        for d in net.devices:
            center = rng.randrange(10)
            row = [0] * 20
            row[center] = 1
            row[10 + center] = 1
            d.value = row
    elif spec.name == "hypotest":
        net.load_categorical_data(1)
    else:
        net.load_categorical_data(8, distribution=[20, 4, 1, 1, 1, 1, 1, 1])


def _execute(spec, plan, seed=5, accountant=None):
    """One end-to-end run of ``spec`` under the fault plan ``plan``."""
    env = _environment(spec)
    planning = plan_query(spec.source, env, name=spec.name)
    net = FederatedNetwork(32, rng=random.Random(seed))
    _load_data(spec, net)
    executor = QueryExecutor(
        net,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        accountant=accountant,
        faults=FaultInjector(plan, seed=seed),
    )
    return executor.run()


def _assert_paired(log):
    """Every injected fault has a recovery action and a terminal outcome."""
    assert log.records, "no fault was recorded"
    for rec in log.records:
        assert rec.detection
        assert rec.recovery not in ("", PENDING), rec.format()
        assert rec.outcome != PENDING, rec.format()


# ---------------------------------------------------------------- plans


class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random_plan(seed=9, num_faults=5)
        b = FaultPlan.random_plan(seed=9, num_faults=5)
        assert a.events == b.events
        assert len(a.events) == 5
        assert all(e.kind in PROTOCOL_KINDS for e in a.events)
        assert all(e.phase in ("decrypt", "program") for e in a.events)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", "decrypt")

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("bad", events=(FaultEvent(CRASH, "warmup"),))

    def test_scenarios_enumerable(self):
        names = [p.name for p in list_scenarios()]
        assert "none" in names and "overload" in names
        assert get_scenario("decrypt-crash").events[0].kind == CRASH
        with pytest.raises(KeyError):
            get_scenario("nope")


class TestInjectorStreams:
    def test_derive_stream_seed_is_stable(self):
        assert derive_stream_seed(0, "noise") == derive_stream_seed(0, "noise")
        assert derive_stream_seed(0, "noise") != derive_stream_seed(0, "audit")
        assert derive_stream_seed(0, "noise") != derive_stream_seed(1, "noise")

    def test_fresh_streams_replay_identically(self):
        inj = FaultInjector(FaultPlan("none"), seed=3)
        first = [inj.fresh("noise/em0/0").random() for _ in range(3)]
        second = [inj.fresh("noise/em0/0").random() for _ in range(3)]
        assert first == second

    def test_persistent_stream_is_cached(self):
        inj = FaultInjector(FaultPlan("none"), seed=3)
        assert inj.persistent("mpc") is inj.persistent("mpc")

    def test_short_straggle_absorbed_long_raises(self):
        inj = FaultInjector(
            FaultPlan(
                "s",
                events=(
                    FaultEvent(STRAGGLER, "decrypt", delay=5.0),
                    FaultEvent(STRAGGLER, "decrypt", delay=300.0),
                ),
            ),
            round_timeout=30.0,
        )
        inj.begin_phase("decrypt")
        from repro.faults import PartyTimeout

        with pytest.raises(PartyTimeout):
            inj.maybe_fail()  # absorbs the 5s delay, raises on the 300s one
        assert inj.log.records[0].outcome == TOLERATED
        assert inj.log.waited_seconds == pytest.approx(5.0 + 30.0)


# ------------------------------------------------- committee pool (§5.1)


class TestCommitteePool:
    def _online_filter(self, offline):
        return lambda members: [m for m in members if m not in offline]

    def test_wrap_around_allocation(self):
        """Requests beyond the sortition count wrap to committee i mod c."""
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter(set()),
        )
        assert pool.allocate("a").members == [1, 2, 3, 4]
        assert pool.allocate("b").members == [5, 6, 7, 8]
        assert pool.allocate("c").members == [1, 2, 3, 4]

    def test_skip_on_churn_recorded_once(self):
        """A dead committee is skipped on every pass but recorded once."""
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter({1, 2}),
        )
        for name in ("a", "b", "c"):
            assert pool.allocate(name).members == [5, 6, 7, 8]
        assert pool.skipped == [[1, 2, 3, 4]]

    def test_exhaustion_raises_committee_error(self):
        pool = CommitteePool(
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            random.Random(0),
            online_filter=self._online_filter({1, 2, 5, 6}),
        )
        with pytest.raises(CommitteeError):
            pool.allocate("a")
        assert len(pool.skipped) == 2


class TestShareRecovery:
    def test_survivors_reconstruct_identical_secrets(self):
        rng = random.Random(5)
        committee = Committee("keygen", [1, 2, 3, 4, 5], rng)
        values = committee.share_values([10, 20, 30])
        recovered = committee.recover_shares({"v": values}, [2], rng)
        assert committee.members == [1, 3, 4, 5]
        assert [committee.engine.open(v) for v in recovered["v"]] == [10, 20, 30]

    def test_untouched_committee_is_a_no_op(self):
        rng = random.Random(5)
        committee = Committee("keygen", [1, 2, 3, 4, 5], rng)
        values = committee.share_values([7])
        out = committee.recover_shares({"v": values}, [99], rng)
        assert out["v"] is values
        assert committee.members == [1, 2, 3, 4, 5]

    def test_below_quorum_raises(self):
        rng = random.Random(5)
        committee = Committee("keygen", [1, 2, 3, 4, 5], rng)
        values = committee.share_values([7])
        with pytest.raises(CommitteeError):
            committee.recover_shares({"v": values}, [1, 2, 3], rng)

    def test_vsr_excludes_lost_dealer(self):
        rng = random.Random(6)
        sender = Committee("a", [1, 2, 3, 4, 5], rng)
        recipient = Committee("b", [6, 7, 8, 9, 10], rng)
        values = sender.share_values([42, 43])
        moved = sender.send_via_vsr(values, recipient, exclude_members=[1])
        assert [recipient.engine.open(v) for v in moved] == [42, 43]
        with pytest.raises(VSRError):
            sender.send_via_vsr(values, recipient, exclude_members=[1, 2, 3])


class TestNetworkRngRequired:
    def test_unseeded_network_rejected(self):
        with pytest.raises(ValueError, match="explicit rng= or seed="):
            FederatedNetwork(8)

    def test_seed_shortcut_is_deterministic(self):
        a = FederatedNetwork(8, seed=1)
        b = FederatedNetwork(8, seed=1)
        assert [d.secret for d in a.devices] == [d.secret for d in b.devices]

    def test_restore_reverses_take_offline(self):
        net = FederatedNetwork(8, seed=0)
        net.take_offline([2, 3])
        assert net.online_members([1, 2, 3, 4]) == [1, 4]
        net.restore([2, 3])
        assert net.online_members([1, 2, 3, 4]) == [1, 2, 3, 4]


# ------------------------------------------------ scenarios, end to end

RECOVERY_SCENARIOS = (
    "keygen-loss",
    "decrypt-crash",
    "double-crash",
    "straggler",
    "vsr-loss",
    "equivocate",
    "churn-wave",
)


class TestScenarioRecovery:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _execute(get("top1"), get_scenario("none"))

    @pytest.mark.parametrize("name", RECOVERY_SCENARIOS)
    def test_recovers_bit_identical(self, name, baseline):
        result = _execute(get("top1"), get_scenario(name))
        assert result.outputs == baseline.outputs
        _assert_paired(result.fault_log)
        assert result.fault_log.all_recovered

    def test_overload_raises_unrecoverable_with_log(self):
        with pytest.raises(UnrecoverableFault) as excinfo:
            _execute(get("top1"), get_scenario("overload"))
        log = excinfo.value.log
        assert log.records, "the unrecoverable fault left no forensic trail"
        dropped = log.by_kind(DROPOUT)
        assert dropped and dropped[0].outcome == UNRECOVERABLE
        assert dropped[0].recovery not in ("", PENDING)

    def test_garbage_uploads_rejected_not_aggregated(self):
        result = _execute(get("top1"), get_scenario("garbage-upload"))
        assert result.rejected_devices == [2, 3]
        _assert_paired(result.fault_log)
        assert all(r.outcome == RECOVERED for r in result.fault_log.records)

    def test_failover_uses_extra_committees(self):
        baseline = _execute(get("top1"), get_scenario("none"))
        crashed = _execute(get("top1"), get_scenario("decrypt-crash"))
        assert crashed.committees_used > baseline.committees_used
        assert crashed.fault_log.retries >= 1

    def test_retry_budget_exhaustion_is_typed(self):
        """More same-phase crashes than retries must abort, not hang."""
        plan = FaultPlan(
            "crash-storm",
            events=tuple(FaultEvent(CRASH, "decrypt") for _ in range(4)),
            expect_unrecoverable=True,
        )
        with pytest.raises(UnrecoverableFault):
            _execute(get("top1"), plan)


class TestCatalogEquivalence:
    """The tentpole claim, for *every* catalog query: any within-tolerance
    protocol-fault schedule releases a byte-identical value."""

    @pytest.mark.parametrize("spec", ALL_QUERIES, ids=lambda s: s.name)
    def test_recovered_run_matches_fault_free(self, spec):
        fault_free = _execute(spec, FaultPlan("none"))
        plan = FaultPlan.random_plan(
            seed=17, num_faults=2, phases=("decrypt", "program")
        )
        faulted = _execute(spec, plan)
        assert faulted.outputs == fault_free.outputs
        _assert_paired(faulted.fault_log)


# --------------------------------------- DP accounting under churn/replay


class TestDPAccountingUnderFaults:
    def test_keygen_replay_charges_budget_once(self):
        spec = get("top1")
        accountant = PrivacyAccountant(epsilon_budget=100.0, delta_budget=1.0)
        result = _execute(
            spec,
            FaultPlan("keygen-crash", events=(FaultEvent(CRASH, "keygen"),)),
            accountant=accountant,
        )
        assert len(accountant.history) == 1
        assert accountant.spent.epsilon == pytest.approx(result.epsilon_charged)
        assert result.fault_log.all_recovered

    def test_bin_sampling_survives_post_upload_churn(self):
        """Churn after upload must not perturb the sampled window (dp-*)."""
        spec = get("secrecy")
        baseline = _execute(spec, FaultPlan("none"))
        assert any("sampled window" in e for e in baseline.events)
        churned = _execute(
            spec,
            FaultPlan(
                "post-upload-churn",
                events=(FaultEvent(DROPOUT, "decrypt", target=(5, 6, 7, 8)),),
            ),
        )
        assert churned.outputs == baseline.outputs
        assert any("sampled window" in e for e in churned.events)

    def test_pre_upload_churn_is_deterministic_and_isolated(self):
        """Devices that churn before uploading change only their own
        contribution: per-device upload streams keep every other device's
        bin placement fixed, so the dominant category still wins and the
        run replays byte-identically."""
        spec = get("secrecy")
        plan = FaultPlan(
            "pre-upload-churn",
            events=(FaultEvent(DROPOUT, "input", target=(30, 31, 32)),),
            mutates_inputs=True,
        )
        first = _execute(spec, plan)
        second = _execute(spec, plan)
        assert first.outputs == second.outputs
        baseline = _execute(spec, FaultPlan("none"))
        # Category 0 dominates 20:4; losing three uploads cannot flip it.
        assert first.value == baseline.value

    def test_certificate_survives_recovery(self):
        result = _execute(get("top1"), get_scenario("decrypt-crash"))
        assert result.authorization is not None
        assert result.epsilon_charged > 0
