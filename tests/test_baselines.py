"""Tests for the baseline systems (Table 1, §7.1)."""

import pytest

from repro.baselines.bohler import (
    ANCHOR_TRAFFIC_BYTES,
    bohler_member_traffic,
    is_practical,
)
from repro.baselines.honeycrisp import honeycrisp_score, supports
from repro.baselines.orchard import (
    BaselineUnsupported,
    ORCHARD_EM_CATEGORY_LIMIT,
    orchard_score,
)
from repro.baselines.strawmen import (
    all_to_all_mpc,
    fhe_only,
    gate_count_fhe_only,
)
from repro.queries.catalog import get


class TestBohler:
    def test_anchor_point(self):
        """[14, §E]: m=10, N=10^6 -> 1.41 GB per member."""
        estimate = bohler_member_traffic(10**6, committee_size=10)
        assert estimate.member_traffic_bytes == pytest.approx(ANCHOR_TRAFFIC_BYTES)

    def test_paper_extrapolation(self):
        """§7.1: m=40 and N=1.3e9 -> more than 7.3 TB of traffic."""
        estimate = bohler_member_traffic(int(1.3e9), committee_size=40)
        assert estimate.member_traffic_tb > 7.3

    def test_impractical_at_scale(self):
        estimate = bohler_member_traffic(10**9, committee_size=40)
        assert not is_practical(estimate)

    def test_practical_at_original_scale(self):
        estimate = bohler_member_traffic(10**6, committee_size=10)
        assert is_practical(estimate)


class TestStrawmen:
    def test_fhe_only_takes_years(self):
        estimate = fhe_only()
        assert estimate.aggregator_core_years > 1.0

    def test_fhe_gate_count_tens_of_trillions(self):
        """§3.2: 'a 40-trillion-gate circuit'."""
        gates = gate_count_fhe_only()
        assert 1e13   < gates < 1e14

    def test_all_to_all_bandwidth_is_petabyte_scale(self):
        estimate = all_to_all_mpc()
        assert estimate.participant_bytes_typical >= 1e12  # TBs per device


class TestOrchard:
    def test_em_category_limit(self):
        env = get("top1").environment(10**9)
        with pytest.raises(BaselineUnsupported):
            orchard_score(env, released_values=env.row_width, uses_em=True)

    def test_small_em_supported(self):
        spec = get("top1")
        env = spec.environment(10**9, categories=ORCHARD_EM_CATEGORY_LIMIT)
        score = orchard_score(env, released_values=env.row_width, uses_em=True)
        assert score.cost.participant_max_seconds > 0

    def test_single_committee(self):
        env = get("bayes").environment(10**9)
        score = orchard_score(env, released_values=115)
        assert score.committee_params.num_committees == 1

    def test_committee_cost_grows_with_releases(self):
        env = get("bayes").environment(10**9)
        few = orchard_score(env, released_values=10)
        many = orchard_score(env, released_values=1000)
        assert (
            many.cost.participant_max_seconds > few.cost.participant_max_seconds
        )


class TestHoneycrisp:
    def test_supports_only_cms(self):
        assert supports("cms")
        assert not supports("top1")

    def test_score_matches_orchard_shape(self):
        env = get("cms").environment(10**9)
        hc = honeycrisp_score(env)
        orch = orchard_score(env, released_values=1)
        assert hc.cost.participant_expected_seconds == pytest.approx(
            orch.cost.participant_expected_seconds
        )


class TestComparisons:
    def test_arboretum_matches_orchard_in_expectation(self):
        """§7.2: for legacy queries, Arboretum's expected participant costs
        are almost identical to the original systems'."""
        from repro.eval.experiments import plan_paper_query

        spec = get("bayes")
        arboretum = plan_paper_query(spec, use_cache=False)
        orchard = orchard_score(spec.environment(), released_values=spec.categories)
        ratio = (
            arboretum.plan.cost.participant_expected_seconds
            / orchard.cost.participant_expected_seconds
        )
        assert 0.5 < ratio < 2.0

    def test_arboretum_beats_orchard_on_committee_max(self):
        """§7.2: per-committee costs are much lower with many committees."""
        from repro.eval.experiments import plan_paper_query

        spec = get("bayes")
        arboretum = plan_paper_query(spec, use_cache=False)
        orchard = orchard_score(spec.environment(), released_values=spec.categories)
        arb_ops = max(
            (c.seconds for c in arboretum.plan.score.committee_breakdown
             if c.committee_type == "operations"),
            default=0.0,
        )
        orch_max = max(c.seconds for c in orchard.committee_breakdown)
        assert arb_ops < orch_max
