"""Tests for Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree, verify_inclusion


class TestTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.prove(0)
        assert verify_inclusion(tree.root, b"only", proof)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_all_leaves_provable(self):
        leaves = [bytes([i]) * 4 for i in range(13)]  # odd sizes exercise promotion
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_inclusion(tree.root, leaf, tree.prove(i))

    def test_wrong_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(0)
        assert not verify_inclusion(tree.root, b"x", proof)

    def test_wrong_index_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not verify_inclusion(tree.root, b"a", tree.prove(1))

    def test_out_of_range_index(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.prove(5)

    def test_root_changes_with_content(self):
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([b"a", b"c"])
        assert t1.root != t2.root

    def test_root_changes_with_order(self):
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([b"b", b"a"])
        assert t1.root != t2.root

    def test_leaf_node_domain_separation(self):
        """A leaf cannot be confused with an interior node: the two-leaf
        tree root differs from a single leaf whose data is the
        concatenation of the two child hashes."""
        t = MerkleTree([b"a", b"b"])
        fake = MerkleTree([t.root])
        assert t.root != fake.root


@given(
    leaves=st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=40),
    data=st.data(),
)
@settings(max_examples=60)
def test_inclusion_property(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = tree.prove(index)
    assert verify_inclusion(tree.root, leaves[index], proof)
    # A different payload with the same proof must fail.
    assert not verify_inclusion(tree.root, leaves[index] + b"!", proof)
