"""Tests for privacy budget accounting and secrecy of the sample."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accountant import BudgetExceeded, PrivacyAccountant, PrivacyCost
from repro.privacy.sampling import (
    BinSamplingPlan,
    amplified_epsilon,
    apply_mask,
    required_phi,
)


class TestAccountant:
    def test_charges_accumulate(self):
        acc = PrivacyAccountant(epsilon_budget=1.0, delta_budget=1e-6)
        acc.charge(PrivacyCost(0.3), "q1")
        acc.charge(PrivacyCost(0.3), "q2")
        assert acc.spent.epsilon == pytest.approx(0.6)
        assert acc.remaining().epsilon == pytest.approx(0.4)

    def test_refuses_overdraw(self):
        acc = PrivacyAccountant(epsilon_budget=0.5)
        acc.charge(PrivacyCost(0.4), "q1")
        with pytest.raises(BudgetExceeded):
            acc.charge(PrivacyCost(0.2), "q2")
        # The failed charge left the balance untouched.
        assert acc.spent.epsilon == pytest.approx(0.4)
        assert len(acc.history) == 1

    def test_delta_budget_enforced(self):
        acc = PrivacyAccountant(epsilon_budget=10.0, delta_budget=1e-9)
        with pytest.raises(BudgetExceeded):
            acc.charge(PrivacyCost(0.1, 1e-6))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PrivacyCost(-0.1)

    def test_history_labels(self):
        acc = PrivacyAccountant(epsilon_budget=1.0)
        acc.charge(PrivacyCost(0.5), "top1")
        assert acc.history[0][0] == "top1"


class TestAmplification:
    def test_formula(self):
        # ln(1 + phi(e^eps - 1))
        assert amplified_epsilon(1.0, 0.1) == pytest.approx(
            math.log(1 + 0.1 * (math.e - 1))
        )

    def test_small_phi_approximation(self):
        """§2.1: for eps <= 1 and small phi, close to 2*phi/eps... actually
        amplified eps ~ phi * eps for small phi and eps."""
        eps, phi = 0.5, 0.001
        amplified = amplified_epsilon(eps, phi)
        assert amplified == pytest.approx(phi * (math.exp(eps) - 1), rel=0.01)

    def test_phi_one_is_identity(self):
        assert amplified_epsilon(0.7, 1.0) == pytest.approx(0.7)

    def test_required_phi_inverts(self):
        eps = 2.0
        phi = required_phi(0.1, eps)
        assert amplified_epsilon(eps, phi) == pytest.approx(0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amplified_epsilon(0.0, 0.5)
        with pytest.raises(ValueError):
            amplified_epsilon(1.0, 0.0)


class TestBinSampling:
    def test_for_fraction(self):
        plan = BinSamplingPlan.for_fraction(0.5, 8)
        assert plan.window == 4
        assert plan.fraction == pytest.approx(0.5)

    def test_window_bounds(self):
        assert BinSamplingPlan.for_fraction(0.0001, 8).window == 1
        assert BinSamplingPlan.for_fraction(0.9999, 8).window == 8
        with pytest.raises(ValueError):
            BinSamplingPlan(8, 9)

    def test_sampled_bins_wrap(self):
        plan = BinSamplingPlan(8, 3)
        assert plan.sampled_bins(6) == [6, 7, 0]

    def test_mask_matches_bins(self):
        plan = BinSamplingPlan(4, 2)
        mask = plan.selection_mask(3)
        assert mask == [1, 0, 0, 1]

    def test_is_sampled_consistent_with_mask(self):
        plan = BinSamplingPlan(8, 3)
        offset = 5
        mask = plan.selection_mask(offset)
        for b in range(8):
            assert plan.is_sampled(b, offset) == bool(mask[b])

    def test_apply_mask_sums_window(self):
        binned = [[1, 0], [2, 5], [0, 1], [4, 4]]
        mask = [1, 0, 0, 1]
        assert apply_mask(binned, mask) == [5, 4]

    def test_apply_mask_empty(self):
        with pytest.raises(ValueError):
            apply_mask([], [1])

    def test_sampling_fraction_statistics(self):
        """Devices picking uniform bins are sampled ~x/b of the time."""
        plan = BinSamplingPlan(16, 4)
        rng = random.Random(0)
        sampled = 0
        trials = 8000
        for _ in range(trials):
            offset = plan.choose_committee_offset(rng)
            bin_index = plan.choose_participant_bin(rng)
            if plan.is_sampled(bin_index, offset):
                sampled += 1
        assert abs(sampled / trials - 0.25) < 0.02


@given(
    eps=st.floats(min_value=0.01, max_value=3.0),
    phi=st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=100)
def test_amplification_always_helps(eps, phi):
    amplified = amplified_epsilon(eps, phi)
    assert 0 < amplified <= eps + 1e-12
