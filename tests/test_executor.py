"""End-to-end execution tests (§5): full protocol on a simulated network."""

import random

import pytest

from repro.planner.search import plan_query
from repro.privacy.accountant import PrivacyAccountant
from repro.runtime.executor import QueryExecutor, QueryRejected
from repro.runtime.network import FederatedNetwork
from tests.conftest import small_env

TOP1 = "aggr = sum(db); r = em(aggr); output(r);"


def run_query(
    source,
    categories=8,
    devices=40,
    epsilon=4.0,
    distribution=None,
    malicious_fraction=0.0,
    seed=11,
    env=None,
    name="q",
    accountant=None,
    numeric=None,
):
    env = env or small_env(
        num_participants=devices, categories=categories, epsilon=epsilon
    )
    planning = plan_query(source, env, name=name)
    network = FederatedNetwork(
        devices, rng=random.Random(seed), malicious_fraction=malicious_fraction
    )
    if numeric is not None:
        network.load_numeric_data(*numeric, width=categories)
    elif distribution is not None:
        network.load_categorical_data(categories, distribution)
    else:
        network.load_categorical_data(categories)
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=96,
        rng=random.Random(seed + 1),
        accountant=accountant,
    )
    return executor.run(), network


class TestTop1:
    def test_dominant_category_wins(self):
        result, _net = run_query(
            TOP1, distribution=[1, 1, 30, 1, 1, 1, 1, 1], seed=3
        )
        assert result.value == 2
        assert result.rejected_devices == []
        assert result.audits_failed == 0
        assert result.committees_used >= 3

    def test_events_logged(self):
        result, _ = run_query(TOP1, distribution=[20, 1, 1, 1, 1, 1, 1, 1])
        assert any("keygen" in e for e in result.events)
        assert any("em selected" in e for e in result.events)


class TestMaliciousParticipants:
    def test_malformed_inputs_rejected(self):
        result, net = run_query(
            TOP1,
            distribution=[30, 1, 1, 1, 1, 1, 1, 1],
            malicious_fraction=0.2,
            seed=21,
        )
        malicious = {d.device_id for d in net.devices if d.malicious}
        assert malicious  # the seed produced some
        assert set(result.rejected_devices) == malicious
        # The result is still correct despite the rejected uploads.
        assert result.value == 0


class TestLaplaceQuery:
    SRC = "aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);"

    def test_noised_count_near_truth(self):
        result, net = run_query(self.SRC, epsilon=8.0, seed=5)
        true_count = sum(1 for d in net.devices if d.value == 0)
        assert abs(result.value - true_count) < 8.0  # noise scale 1/8

    def test_output_is_float(self):
        result, _ = run_query(self.SRC, epsilon=8.0)
        assert isinstance(result.value, float)


class TestTopK:
    SRC = "aggr = sum(db); r = em(aggr, 3); output(r[0]); output(r[1]); output(r[2]);"

    def test_distinct_winners(self):
        result, _ = run_query(
            self.SRC, distribution=[30, 20, 10, 1, 1, 1, 1, 1], seed=9
        )
        winners = result.outputs
        assert len(set(winners)) == 3
        assert set(winners) == {0, 1, 2}


class TestMedianQuery:
    SRC = """
    aggr = sum(db);
    c = len(aggr);
    cum = 0;
    for i = 0 to c - 1 do
      cum = cum + aggr[i];
      scores[i] = 0 - abs(N + 1 - 2 * cum);
    endfor
    r = em(scores);
    output(r);
    """

    def test_median_bin_selected(self):
        # Everyone in bins 3 or 4: the median is there.
        result, _ = run_query(
            self.SRC,
            distribution=[0.01, 0.01, 0.01, 10, 10, 0.01, 0.01, 0.01],
            epsilon=8.0,
            seed=13,
            env=small_env(num_participants=40, categories=8, epsilon=8.0, sensitivity=2.0),
        )
        assert result.value in (3, 4)


class TestSampling:
    SRC = "s = sampleUniform(db, 0.5); aggr = sum(s); r = em(aggr); output(r);"

    def test_sampled_query_runs(self):
        result, _ = run_query(
            self.SRC, distribution=[40, 1, 1, 1, 1, 1, 1, 1], seed=17, epsilon=8.0
        )
        assert result.value == 0
        assert any("sampled window" in e for e in result.events)


class TestBoundedRows:
    SRC = "aggr = sum(db); n = laplace(aggr[0], sens / epsilon); output(n);"

    def test_numeric_rows(self):
        env = small_env(num_participants=40, categories=4, epsilon=8.0)
        env = type(env)(
            num_participants=40,
            row_width=4,
            db_element=env.db_element,
            epsilon=8.0,
            sensitivity=1.0,
            row_encoding="bounded",
        )
        result, net = run_query(self.SRC, env=env, numeric=(0, 1), categories=4)
        true_count = sum(d.value[0] for d in net.devices)
        assert abs(result.value - true_count) < 8.0

    def test_out_of_range_rejected(self):
        env = small_env(num_participants=40, categories=4, epsilon=8.0)
        env = type(env)(
            num_participants=40,
            row_width=4,
            db_element=env.db_element,
            epsilon=8.0,
            sensitivity=1.0,
            row_encoding="bounded",
        )
        planning = plan_query(self.SRC, env, name="bounded")
        network = FederatedNetwork(40, rng=random.Random(2), malicious_fraction=0.15)
        network.load_numeric_data(0, 1, width=4)
        executor = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(3),
        )
        result = executor.run()
        malicious = {d.device_id for d in network.devices if d.malicious}
        assert set(result.rejected_devices) == malicious


class TestBudgetEnforcement:
    def test_query_rejected_when_budget_exhausted(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0, delta_budget=1e-6)
        env = small_env(num_participants=40, categories=8, epsilon=4.0)
        planning = plan_query(TOP1, env, name="top1")
        network = FederatedNetwork(40, rng=random.Random(4))
        network.load_categorical_data(8)
        executor = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(5), accountant=accountant,
        )
        with pytest.raises(QueryRejected):
            executor.run()

    def test_budget_charged_on_success(self):
        accountant = PrivacyAccountant(epsilon_budget=10.0, delta_budget=1e-6)
        result, _ = run_query(
            TOP1, distribution=[20, 1, 1, 1, 1, 1, 1, 1], accountant=accountant
        )
        assert accountant.spent.epsilon == pytest.approx(4.0)
        assert accountant.history[0][0] == "q"


class TestSortitionAdvance:
    def test_round_advances_after_query(self):
        env = small_env(num_participants=40, categories=8, epsilon=4.0)
        planning = plan_query(TOP1, env)
        network = FederatedNetwork(40, rng=random.Random(6))
        network.load_categorical_data(8)
        block_before = network.sortition.block
        executor = QueryExecutor(
            network, planning, committee_size=4, key_prime_bits=96,
            rng=random.Random(7),
        )
        executor.run()
        assert network.sortition.round_number == 1
        assert network.sortition.block != block_before
