# Arboretum reproduction — common targets.

export PYTHONPATH := src

.PHONY: install test lint verify-sweep bench bench-planner bench-planner-smoke bench-runtime bench-runtime-smoke bench-service bench-service-smoke chaos-smoke chaos-resume-smoke check eval examples artifacts all

install:
	python setup.py develop

test:
	python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping ruff check"; \
	fi
	python -m repro lint src/repro

bench:
	python -m pytest benchmarks/ --benchmark-only

bench-planner:
	python benchmarks/bench_planner.py --reps 3 --out BENCH_planner.json

bench-planner-smoke:
	python benchmarks/bench_planner.py --smoke --out BENCH_planner.json

bench-runtime:
	python benchmarks/bench_runtime.py --reps 3 --out BENCH_runtime.json

bench-runtime-smoke:
	python benchmarks/bench_runtime.py --smoke --out BENCH_runtime.json

bench-service:
	python benchmarks/bench_service.py --queries 40 --out BENCH_service.json

bench-service-smoke:
	python benchmarks/bench_service.py --smoke --out BENCH_service.json

verify-sweep:
	python -m repro verify-sweep

chaos-smoke:
	python -m repro chaos --scenario all --devices 32 --committee-size 4

chaos-resume-smoke:
	python -m repro chaos --crash-sweep --devices 32 --committee-size 4

check: lint verify-sweep test bench-planner-smoke bench-runtime-smoke bench-service-smoke chaos-smoke chaos-resume-smoke

eval:
	python -m repro eval all

artifacts:
	python -m repro eval --export artifacts/

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex || exit 1; done

all: lint test bench
