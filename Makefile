# Arboretum reproduction — common targets.

.PHONY: install test bench eval examples artifacts all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

eval:
	python -m repro eval all

artifacts:
	python -m repro eval --export artifacts/

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex || exit 1; done

all: test bench
