"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package needed for PEP 660 editable wheels)."""

from setuptools import setup

setup()
