"""Figure 7 — per-member committee cost by committee type."""

from repro.eval.experiments import (
    committee_selection_fraction,
    fig7,
    print_fig7,
)


def test_fig7(benchmark):
    rows = benchmark.pedantic(fig7, rounds=1, iterations=1)
    types = {r.committee_type for r in rows if r.system == "arboretum"}
    assert types == {"keygen", "decryption", "operations"}
    print()
    print_fig7()
    print()
    for query in ("top1", "topK", "median", "k-medians"):
        frac = committee_selection_fraction(query)
        print(f"fraction of participants on any committee ({query}): {frac * 100:.4f}%")
