"""Planner search benchmark: optimized engine vs the seed search.

Times branch-and-bound planning for all 10 catalog queries at paper scale
(10^9 participants) and writes ``BENCH_planner.json`` so later changes
have a perf trajectory to compare against.

Two configurations are timed per query:

* ``naive`` — the retained reference engine with catalog choice order,
  which searches exactly like the seed planner (full prefix
  re-instantiation per node, no incremental state);
* ``optimized`` — the incremental engine with cheapest-first ordering,
  the planner's default.

Protocol: the frontend work (parse, certify, lower) is done once per
query and excluded; each configuration gets one untimed warmup run (which
also warms the committee-sizing caches both engines share), then
``--reps`` timed runs with a fresh :class:`CostModel` (fresh cost cache)
each, reporting the median. Both engines select byte-identical plans —
``tests/test_search_equivalence.py`` asserts that — so this measures pure
search speed.

Usage::

    python benchmarks/bench_planner.py --reps 3 --out BENCH_planner.json
    python benchmarks/bench_planner.py --smoke   # 1 rep, regression gate

``--smoke`` (used by ``make check``) runs one repetition and fails if any
query's optimized search got more than 2x slower than the committed
baseline seconds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.experiments import PAPER_CONSTRAINTS, PAPER_N  # noqa: E402
from repro.lang.parser import parse  # noqa: E402
from repro.lang.simplify import simplify  # noqa: E402
from repro.planner.costmodel import CostModel, Goal  # noqa: E402
from repro.planner.ir import lower  # noqa: E402
from repro.planner.search import Planner  # noqa: E402
from repro.privacy.certify import certify  # noqa: E402
from repro.queries.catalog import ALL_QUERIES  # noqa: E402

ENGINES = {
    "naive": dict(engine="reference", order_choices=False),
    "optimized": dict(engine="incremental"),
}


def time_query(spec, reps: int):
    """Median plan_logical seconds per engine, plus the optimized stats."""
    env = spec.environment(PAPER_N)
    program = simplify(parse(spec.source))
    certificate = certify(program, env)
    logical = lower(program, env, certificate, spec.name)
    medians = {}
    stats = None
    for label, kwargs in ENGINES.items():
        samples = []
        for rep in range(reps + 1):  # rep 0 is the untimed warmup
            model = CostModel()
            planner = Planner(
                env,
                model=model,
                constraints=PAPER_CONSTRAINTS,
                goal=Goal("participant_expected_seconds"),
                **kwargs,
            )
            started = time.perf_counter()
            result = planner.plan_logical(logical, certificate)
            if rep:
                samples.append(time.perf_counter() - started)
        medians[label] = statistics.median(samples)
        if label == "optimized":
            stats = result.statistics
    return medians, stats


def run(reps: int):
    rows = []
    for spec in ALL_QUERIES:
        medians, stats = time_query(spec, reps)
        seconds = medians["optimized"]
        rows.append(
            {
                "query": spec.name,
                "space_size": stats.space_size,
                "nodes": stats.prefixes_considered,
                "seconds": seconds,
                "cache_hits": stats.cost_cache_hits + stats.expansion_cache_hits,
                "speedup_vs_naive": medians["naive"] / seconds,
            }
        )
        print(
            f"{spec.name:12s} naive {medians['naive'] * 1000:8.1f} ms  "
            f"optimized {seconds * 1000:8.1f} ms  "
            f"{rows[-1]['speedup_vs_naive']:5.2f}x  "
            f"nodes={stats.prefixes_considered}"
        )
    return rows


def smoke(baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run 'make bench-planner' first")
        return 1
    baseline = {
        row["query"]: row
        for row in json.loads(baseline_path.read_text())["queries"]
    }
    rows = run(reps=1)
    failures = []
    for row in rows:
        base = baseline.get(row["query"])
        if base is None:
            continue
        if row["seconds"] > 2.0 * base["seconds"]:
            failures.append(
                f"{row['query']}: {row['seconds'] * 1000:.1f} ms vs baseline "
                f"{base['seconds'] * 1000:.1f} ms (> 2x regression)"
            )
    if failures:
        print("planner benchmark regression:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("planner smoke benchmark within 2x of committed baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_planner.json"),
        help="output path for the benchmark JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="1 repetition; fail if any query regresses >2x vs --out baseline",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke(Path(args.out))
    rows = run(args.reps)
    speedups = sorted(row["speedup_vs_naive"] for row in rows)
    payload = {
        "benchmark": "planner-search",
        "num_participants": PAPER_N,
        "reps": args.reps,
        "median_speedup_vs_naive": statistics.median(speedups),
        "queries": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"median speedup vs naive: {payload['median_speedup_vs_naive']:.2f}x "
        f"-> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
