"""Execution data-plane benchmark: vectorized kernels vs the seed runtime.

Times the hot execution path at three granularities and writes
``BENCH_runtime.json`` so later changes have a perf trajectory:

* **slot kernels** — BGV SIMD addition over full 2^15-slot ciphertexts,
  numpy array kernel vs an inline copy of the seed's per-element tuple
  loop (slot-ops/sec);
* **secret sharing** — batched Vandermonde ``share_vector`` vs the
  retained per-secret Horner reference (shares/sec, identical RNG draws
  and outputs);
* **end-to-end queries** — a full top-1 query (keygen, uploads + ZKPs,
  aggregation, VSR, MPC program) at several device counts under both data
  planes: ``legacy`` (one Paillier ciphertext per logical slot, sequential
  folds — the seed behaviour) and ``vectorized`` (packed slots, batched
  sharing, tree reductions). Both planes release byte-identical
  ``QueryResult``s — ``tests/test_runtime_equivalence.py`` asserts that —
  so this measures pure data-plane speed.

Protocol: every configuration gets one untimed warmup, then ``--reps``
timed runs, reporting the median. Device-side upload throughput
(uploads/sec) comes from the executor's own ``RuntimeStatistics``.

Usage::

    python benchmarks/bench_runtime.py --reps 3 --out BENCH_runtime.json
    python benchmarks/bench_runtime.py --smoke   # small counts, regression gate

``--smoke`` (used by ``make check`` / CI) runs the two smallest device
counts once and fails if the vectorized plane got more than 2x slower
than the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.crypto import bgv, shamir  # noqa: E402
from repro.crypto.field import MERSENNE_127, PrimeField  # noqa: E402
from repro.analysis.ranges import Interval  # noqa: E402
from repro.analysis.types import QueryEnvironment, ValueType  # noqa: E402
from repro.planner.search import plan_query  # noqa: E402
from repro.runtime.executor import QueryExecutor  # noqa: E402
from repro.runtime.network import FederatedNetwork  # noqa: E402

TOP1 = "aggr = sum(db); r = em(aggr); output(r);"
DEVICE_COUNTS = [64, 256, 1024, 4096]
SMOKE_COUNTS = [64, 256]
CATEGORIES = 8
KEY_PRIME_BITS = 128
SEED = 11


# --------------------------------------------------------------- microbench


def _legacy_bgv_add(a, b, t):
    """The seed kernel: an interpreted per-slot tuple walk."""
    return tuple((x + y) % t for x, y in zip(a, b))


def bench_bgv_add(reps: int) -> dict:
    params = bgv.BGVParams()
    sk = bgv.keygen(params, random.Random(SEED))
    rng = random.Random(SEED + 1)
    values_a = [rng.randrange(params.plaintext_modulus) for _ in range(params.slots)]
    values_b = [rng.randrange(params.plaintext_modulus) for _ in range(params.slots)]
    ct_a = bgv.encrypt(sk.public, values_a)
    ct_b = bgv.encrypt(sk.public, values_b)
    tup_a, tup_b = tuple(values_a), tuple(values_b)
    t = params.plaintext_modulus
    inner = 10

    legacy_samples, vector_samples = [], []
    for rep in range(reps + 1):
        started = time.perf_counter()
        for _ in range(inner):
            _legacy_bgv_add(tup_a, tup_b, t)
        if rep:
            legacy_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        for _ in range(inner):
            bgv.add(ct_a, ct_b)
        if rep:
            vector_samples.append(time.perf_counter() - started)
    ops = inner * params.slots
    legacy = ops / statistics.median(legacy_samples)
    vector = ops / statistics.median(vector_samples)
    return {
        "slots": params.slots,
        "legacy_slot_ops_per_second": legacy,
        "vectorized_slot_ops_per_second": vector,
        "speedup": vector / legacy,
    }


def bench_share_vector(reps: int) -> dict:
    field = PrimeField(MERSENNE_127)
    rng = random.Random(SEED)
    values = [rng.randrange(field.modulus) for _ in range(256)]
    party_ids = [1, 2, 3, 4, 5]
    threshold = 2

    legacy_samples, vector_samples = [], []
    for rep in range(reps + 1):
        started = time.perf_counter()
        shamir.share_vector_reference(
            values, threshold, party_ids, field, random.Random(SEED)
        )
        if rep:
            legacy_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        shamir.share_vector(values, threshold, party_ids, field, random.Random(SEED))
        if rep:
            vector_samples.append(time.perf_counter() - started)
    shares = len(values) * len(party_ids)
    legacy = shares / statistics.median(legacy_samples)
    vector = shares / statistics.median(vector_samples)
    return {
        "secrets": len(values),
        "parties": len(party_ids),
        "legacy_shares_per_second": legacy,
        "vectorized_shares_per_second": vector,
        "speedup": vector / legacy,
    }


# -------------------------------------------------------------- end-to-end


def _run_query(devices: int, data_plane: str):
    env = QueryEnvironment(
        num_participants=devices,
        row_width=CATEGORIES,
        db_element=ValueType("int", Interval(0.0, 1.0)),
        epsilon=4.0,
        sensitivity=1.0,
        row_encoding="one_hot",
    )
    planning = plan_query(TOP1, env, name="bench-top1")
    network = FederatedNetwork(devices, rng=random.Random(SEED))
    network.load_categorical_data(CATEGORIES)
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=KEY_PRIME_BITS,
        rng=random.Random(SEED + 1),
        data_plane=data_plane,
    )
    started = time.perf_counter()
    result = executor.run()
    return time.perf_counter() - started, result


def bench_e2e(device_counts, reps: int):
    rows = []
    for devices in device_counts:
        medians = {}
        stats = None
        legacy_result = None
        for plane in ("legacy", "vectorized"):
            samples = []
            for rep in range(reps + 1):  # rep 0 is the untimed warmup
                seconds, result = _run_query(devices, plane)
                if rep:
                    samples.append(seconds)
            medians[plane] = statistics.median(samples)
            if plane == "legacy":
                legacy_result = result
            else:
                stats = result.statistics
                if result != legacy_result:
                    raise SystemExit(
                        f"data planes disagree at {devices} devices — run "
                        "the equivalence suite"
                    )
        uploads_per_second = (
            stats.uploads_submitted / stats.submit_seconds
            if stats.submit_seconds
            else 0.0
        )
        rows.append(
            {
                "devices": devices,
                "legacy_seconds": medians["legacy"],
                "vectorized_seconds": medians["vectorized"],
                "speedup": medians["legacy"] / medians["vectorized"],
                "uploads_per_second": uploads_per_second,
                "packing_lanes": stats.packing_lanes,
            }
        )
        print(
            f"{devices:5d} devices  legacy {medians['legacy']:7.2f} s  "
            f"vectorized {medians['vectorized']:7.2f} s  "
            f"{rows[-1]['speedup']:5.2f}x  "
            f"{uploads_per_second:9.0f} uploads/s"
        )
    return rows


def smoke(baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run 'make bench-runtime' first")
        return 1
    baseline = {
        row["devices"]: row
        for row in json.loads(baseline_path.read_text())["end_to_end"]
    }
    rows = bench_e2e(SMOKE_COUNTS, reps=1)
    failures = []
    for row in rows:
        base = baseline.get(row["devices"])
        if base is None:
            continue
        if row["vectorized_seconds"] > 2.0 * base["vectorized_seconds"]:
            failures.append(
                f"{row['devices']} devices: {row['vectorized_seconds']:.2f} s vs "
                f"baseline {base['vectorized_seconds']:.2f} s (> 2x regression)"
            )
    if failures:
        print("runtime benchmark regression:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("runtime smoke benchmark within 2x of committed baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_runtime.json"),
        help="output path for the benchmark JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small device counts, 1 rep; fail if the vectorized plane "
        "regressed >2x vs the --out baseline",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke(Path(args.out))
    micro = {
        "bgv_add": bench_bgv_add(args.reps),
        "share_vector": bench_share_vector(args.reps),
    }
    print(
        f"bgv.add          {micro['bgv_add']['speedup']:6.1f}x  "
        f"({micro['bgv_add']['vectorized_slot_ops_per_second']:.3g} slot-ops/s)"
    )
    print(
        f"share_vector     {micro['share_vector']['speedup']:6.1f}x  "
        f"({micro['share_vector']['vectorized_shares_per_second']:.3g} shares/s)"
    )
    rows = bench_e2e(DEVICE_COUNTS, args.reps)
    largest = rows[-1]
    payload = {
        "benchmark": "runtime-data-plane",
        "reps": args.reps,
        "key_prime_bits": KEY_PRIME_BITS,
        "categories": CATEGORIES,
        "query": TOP1,
        "microbenchmarks": micro,
        "end_to_end": rows,
        "e2e_speedup_at_largest": largest["speedup"],
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"e2e speedup at {largest['devices']} devices: "
        f"{largest['speedup']:.2f}x -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
