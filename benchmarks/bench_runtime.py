"""Execution data-plane benchmark: vectorized kernels vs the seed runtime.

Times the hot execution path at three granularities and writes
``BENCH_runtime.json`` so later changes have a perf trajectory:

* **slot kernels** — BGV SIMD addition over full 2^15-slot ciphertexts,
  numpy array kernel vs an inline copy of the seed's per-element tuple
  loop (slot-ops/sec);
* **secret sharing** — batched Vandermonde ``share_vector`` vs the
  retained per-secret Horner reference (shares/sec, identical RNG draws
  and outputs);
* **end-to-end queries** — a full top-1 query (keygen, uploads + ZKPs,
  aggregation, VSR, MPC program) at several device counts under all three
  data planes: ``legacy`` (one Paillier ciphertext per logical slot,
  sequential folds — the seed behaviour), ``vectorized`` (packed slots,
  batched sharing, tree reductions; byte-identical to legacy —
  ``tests/test_runtime_equivalence.py`` asserts that), and ``sharded``
  (the event-driven shard runtime over the multi-level aggregation tree;
  its own RNG schedule, with serial/parallel byte-identity asserted by
  ``tests/test_sharded_runtime.py``);
* **sharded scale** — the sharded plane alone from 16k to 10^6 simulated
  devices (the flat planes stop being practical around 4096);
* **tree-depth sweep** — one population, several aggregation-tree
  fanouts, to show depth is a topology knob, not a cost cliff;
* **crypto backends** — the pluggable kernel backends (``pure`` vs
  ``accel``) on the bigint hot paths (batched Paillier pad modexp, batch
  modular inversion) plus one end-to-end run each, with byte-identity
  asserted inline so a backend can never buy speed with different bits
  (``tests/test_backend_equivalence.py`` is the full differential suite).

Protocol: every configuration gets one untimed warmup, then ``--reps``
timed runs, reporting the median (the scale series runs once, unwarmed —
at 10^6 devices the run *is* the warmup). Upload throughput is reported
**per data plane** from each plane's own ``RuntimeStatistics`` — the
seed harness divided one plane's upload count by another plane's wall
time, which is why committed uploads/sec used to *drop* with scale.

Usage::

    python benchmarks/bench_runtime.py --reps 3 --out BENCH_runtime.json
    python benchmarks/bench_runtime.py --smoke   # small counts, regression gate

``--smoke`` (used by ``make check`` / CI) validates the committed JSON
against the expected schema (so the sharded series cannot silently
disappear), runs the two smallest device counts once, and fails if the
vectorized plane got more than 2x slower than the committed baseline or
the sharded plane is slower than the vectorized one at the largest smoke
size.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.crypto import bgv, paillier, shamir  # noqa: E402
from repro.crypto.backend import (  # noqa: E402
    active_backend_name,
    gmpy2_available,
    numba_available,
    use_backend,
)
from repro.crypto.field import MERSENNE_127, PrimeField  # noqa: E402
from repro.analysis.ranges import Interval  # noqa: E402
from repro.analysis.types import QueryEnvironment, ValueType  # noqa: E402
from repro.planner.search import plan_query  # noqa: E402
from repro.runtime.executor import QueryExecutor  # noqa: E402
from repro.runtime.network import FederatedNetwork  # noqa: E402

TOP1 = "aggr = sum(db); r = em(aggr); output(r);"
DEVICE_COUNTS = [64, 256, 1024, 4096]
SMOKE_COUNTS = [64, 256]
SCALE_COUNTS = [16384, 65536, 262144, 1048576]
SCALE_SHARD_SIZE = 4096
TREE_SWEEP_DEVICES = 65536
TREE_SWEEP_FANOUTS = [2, 4, 16, 64]
E2E_SHARD_SIZE = 256
E2E_TREE_FANOUT = 4
CATEGORIES = 8
KEY_PRIME_BITS = 128
SEED = 11
BACKEND_NAMES = ("pure", "accel")
BACKEND_PAD_BATCH = 128
BACKEND_INV_BATCH = 256
BACKEND_E2E_DEVICES = 256
BACKEND_SMOKE_PAD_BATCH = 32
BACKEND_SMOKE_E2E_DEVICES = 64


# --------------------------------------------------------------- microbench


def _legacy_bgv_add(a, b, t):
    """The seed kernel: an interpreted per-slot tuple walk."""
    return tuple((x + y) % t for x, y in zip(a, b))


def bench_bgv_add(reps: int) -> dict:
    params = bgv.BGVParams()
    sk = bgv.keygen(params, random.Random(SEED))
    rng = random.Random(SEED + 1)
    values_a = [rng.randrange(params.plaintext_modulus) for _ in range(params.slots)]
    values_b = [rng.randrange(params.plaintext_modulus) for _ in range(params.slots)]
    ct_a = bgv.encrypt(sk.public, values_a)
    ct_b = bgv.encrypt(sk.public, values_b)
    tup_a, tup_b = tuple(values_a), tuple(values_b)
    t = params.plaintext_modulus
    inner = 10

    legacy_samples, vector_samples = [], []
    for rep in range(reps + 1):
        started = time.perf_counter()
        for _ in range(inner):
            _legacy_bgv_add(tup_a, tup_b, t)
        if rep:
            legacy_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        for _ in range(inner):
            bgv.add(ct_a, ct_b)
        if rep:
            vector_samples.append(time.perf_counter() - started)
    ops = inner * params.slots
    legacy = ops / statistics.median(legacy_samples)
    vector = ops / statistics.median(vector_samples)
    return {
        "slots": params.slots,
        "legacy_slot_ops_per_second": legacy,
        "vectorized_slot_ops_per_second": vector,
        "speedup": vector / legacy,
    }


def bench_share_vector(reps: int) -> dict:
    field = PrimeField(MERSENNE_127)
    rng = random.Random(SEED)
    values = [rng.randrange(field.modulus) for _ in range(256)]
    party_ids = [1, 2, 3, 4, 5]
    threshold = 2

    legacy_samples, vector_samples = [], []
    for rep in range(reps + 1):
        started = time.perf_counter()
        shamir.share_vector_reference(
            values, threshold, party_ids, field, random.Random(SEED)
        )
        if rep:
            legacy_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        shamir.share_vector(values, threshold, party_ids, field, random.Random(SEED))
        if rep:
            vector_samples.append(time.perf_counter() - started)
    shares = len(values) * len(party_ids)
    legacy = shares / statistics.median(legacy_samples)
    vector = shares / statistics.median(vector_samples)
    return {
        "secrets": len(values),
        "parties": len(party_ids),
        "legacy_shares_per_second": legacy,
        "vectorized_shares_per_second": vector,
        "speedup": vector / legacy,
    }


def bench_crypto_backends(
    reps: int,
    pad_batch: int = BACKEND_PAD_BATCH,
    e2e_devices: int = BACKEND_E2E_DEVICES,
) -> dict:
    """Per-backend series over the bigint hot kernels plus one e2e run.

    Byte-identity is asserted inline: every backend's pads, inverses, and
    ``QueryResult`` must equal the pure oracle's, so a kernel that drifts
    cannot publish a benchmark number.
    """
    sk = paillier.keygen(KEY_PRIME_BITS, random.Random(SEED))
    pk = sk.public
    draw_rng = random.Random(SEED + 1)
    obfuscators = [
        paillier.draw_obfuscator(pk, draw_rng) for _ in range(pad_batch)
    ]
    field = PrimeField(MERSENNE_127)
    inv_rng = random.Random(SEED + 2)
    inv_values = [
        inv_rng.randrange(1, field.modulus) for _ in range(BACKEND_INV_BATCH)
    ]

    rows = []
    oracle = {}
    for name in BACKEND_NAMES:
        with use_backend(name) as backend:
            pad_samples, inv_samples, e2e_samples = [], [], []
            pads = inverses = result = None
            for rep in range(reps + 1):  # rep 0 is the untimed warmup
                started = time.perf_counter()
                pads = paillier.precompute_pads(pk, obfuscators)
                if rep:
                    pad_samples.append(time.perf_counter() - started)
                started = time.perf_counter()
                inverses = backend.batch_invmod(inv_values, field.modulus)
                if rep:
                    inv_samples.append(time.perf_counter() - started)
                started = time.perf_counter()
                _, result = _run_query(e2e_devices, "sharded")
                if rep:
                    e2e_samples.append(time.perf_counter() - started)
            if name == "pure":
                oracle = {"pads": pads, "inverses": inverses, "result": result}
            elif (
                pads != oracle["pads"]
                or inverses != oracle["inverses"]
                or result != oracle["result"]
            ):
                raise SystemExit(
                    f"backend {name!r} diverged from the pure oracle — run "
                    "tests/test_backend_equivalence.py"
                )
            rows.append(
                {
                    "backend": name,
                    "detail": backend.detail,
                    "pad_batch": pad_batch,
                    "modexp_ops_per_second": (
                        pad_batch / statistics.median(pad_samples)
                    ),
                    "batch_invmod_ops_per_second": (
                        BACKEND_INV_BATCH / statistics.median(inv_samples)
                    ),
                    "e2e_devices": e2e_devices,
                    "e2e_seconds": statistics.median(e2e_samples),
                }
            )
    pure = rows[0]
    for row in rows:
        row["modexp_speedup_vs_pure"] = (
            row["modexp_ops_per_second"] / pure["modexp_ops_per_second"]
        )
        row["e2e_speedup_vs_pure"] = pure["e2e_seconds"] / row["e2e_seconds"]
        print(
            f"backend {row['backend']:5s}  "
            f"modexp {row['modexp_ops_per_second']:9.0f} ops/s "
            f"({row['modexp_speedup_vs_pure']:5.2f}x)  "
            f"batch-inv {row['batch_invmod_ops_per_second']:9.0f} ops/s  "
            f"e2e {row['e2e_seconds']:6.2f} s "
            f"({row['e2e_speedup_vs_pure']:5.2f}x)  [{row['detail']}]"
        )
    return {
        "active": active_backend_name(),
        "gmpy2": gmpy2_available(),
        "numba": numba_available(),
        "key_prime_bits": KEY_PRIME_BITS,
        "series": rows,
    }


# -------------------------------------------------------------- end-to-end


def _run_query(
    devices: int,
    data_plane: str,
    shard_size: int = E2E_SHARD_SIZE,
    tree_fanout: int = E2E_TREE_FANOUT,
    shard_workers: int = 0,
):
    env = QueryEnvironment(
        num_participants=devices,
        row_width=CATEGORIES,
        db_element=ValueType("int", Interval(0.0, 1.0)),
        epsilon=4.0,
        sensitivity=1.0,
        row_encoding="one_hot",
    )
    planning = plan_query(TOP1, env, name="bench-top1")
    network = FederatedNetwork(devices, rng=random.Random(SEED))
    network.load_categorical_data(CATEGORIES)
    executor = QueryExecutor(
        network,
        planning,
        committee_size=4,
        key_prime_bits=KEY_PRIME_BITS,
        rng=random.Random(SEED + 1),
        data_plane=data_plane,
        shard_size=shard_size,
        tree_fanout=tree_fanout,
        shard_workers=shard_workers,
    )
    started = time.perf_counter()
    result = executor.run()
    return time.perf_counter() - started, result


def _uploads_per_second(stats) -> float:
    """One plane's own throughput: its uploads over its own submit time."""
    if not stats.submit_seconds:
        return 0.0
    return stats.uploads_submitted / stats.submit_seconds


def bench_e2e(device_counts, reps: int):
    rows = []
    for devices in device_counts:
        medians = {}
        throughput = {}
        plane_stats = {}
        legacy_result = None
        for plane in ("legacy", "vectorized", "sharded"):
            samples = []
            for rep in range(reps + 1):  # rep 0 is the untimed warmup
                seconds, result = _run_query(devices, plane)
                if rep:
                    samples.append(seconds)
            medians[plane] = statistics.median(samples)
            # Per-plane throughput from the *last* timed run's own stats:
            # dividing one plane's upload count by another plane's wall
            # time is the bug that made committed uploads/sec fall as the
            # device count grew.
            throughput[plane] = _uploads_per_second(result.statistics)
            plane_stats[plane] = result.statistics
            if plane == "legacy":
                legacy_result = result
            elif plane == "vectorized" and result != legacy_result:
                raise SystemExit(
                    f"flat data planes disagree at {devices} devices — run "
                    "the equivalence suite"
                )
        sharded = plane_stats["sharded"]
        rows.append(
            {
                "devices": devices,
                "legacy_seconds": medians["legacy"],
                "vectorized_seconds": medians["vectorized"],
                "sharded_seconds": medians["sharded"],
                "speedup": medians["legacy"] / medians["vectorized"],
                "sharded_speedup_vs_vectorized": (
                    medians["vectorized"] / medians["sharded"]
                ),
                "legacy_uploads_per_second": throughput["legacy"],
                "vectorized_uploads_per_second": throughput["vectorized"],
                "sharded_uploads_per_second": throughput["sharded"],
                "packing_lanes": plane_stats["vectorized"].packing_lanes,
                "shards": sharded.shards,
                "tree_depth": sharded.tree_depth,
            }
        )
        print(
            f"{devices:5d} devices  legacy {medians['legacy']:7.2f} s  "
            f"vectorized {medians['vectorized']:7.2f} s  "
            f"sharded {medians['sharded']:7.2f} s  "
            f"({rows[-1]['speedup']:5.2f}x / "
            f"{rows[-1]['sharded_speedup_vs_vectorized']:5.2f}x)  "
            f"{throughput['sharded']:9.0f} sharded uploads/s"
        )
    return rows


def bench_sharded_scale(device_counts):
    """The sharded plane alone, one unwarmed run per count (reps are not
    affordable at 10^6 devices, and at that scale noise is a rounding
    error on a multi-second run)."""
    rows = []
    for devices in device_counts:
        seconds, result = _run_query(
            devices, "sharded", shard_size=SCALE_SHARD_SIZE, tree_fanout=16
        )
        stats = result.statistics
        rows.append(
            {
                "devices": devices,
                "sharded_seconds": seconds,
                "sharded_uploads_per_second": _uploads_per_second(stats),
                "shard_size": stats.shard_size,
                "shards": stats.shards,
                "tree_depth": stats.tree_depth,
                "scheduler_events": stats.scheduler_events,
            }
        )
        print(
            f"{devices:8d} devices  sharded {seconds:7.2f} s  "
            f"{rows[-1]['sharded_uploads_per_second']:9.0f} uploads/s  "
            f"{stats.shards:4d} shards, tree depth {stats.tree_depth}"
        )
    return rows


def bench_tree_depth(devices: int, fanouts):
    """Same population, different aggregation-tree shapes."""
    rows = []
    for fanout in fanouts:
        seconds, result = _run_query(
            devices,
            "sharded",
            shard_size=SCALE_SHARD_SIZE // 4,
            tree_fanout=fanout,
        )
        stats = result.statistics
        rows.append(
            {
                "devices": devices,
                "tree_fanout": fanout,
                "tree_depth": stats.tree_depth,
                "shards": stats.shards,
                "sharded_seconds": seconds,
            }
        )
        print(
            f"fanout {fanout:3d} -> depth {stats.tree_depth}  "
            f"{seconds:7.2f} s ({stats.shards} shards)"
        )
    return rows


# ------------------------------------------------------------------ schema

#: Keys every committed end-to-end row must carry. A refactor that drops
#: the sharded series (or quietly reverts to cross-plane throughput)
#: fails the smoke gate instead of shipping a hollowed-out BENCH file.
E2E_ROW_KEYS = frozenset(
    {
        "devices",
        "legacy_seconds",
        "vectorized_seconds",
        "sharded_seconds",
        "speedup",
        "sharded_speedup_vs_vectorized",
        "legacy_uploads_per_second",
        "vectorized_uploads_per_second",
        "sharded_uploads_per_second",
        "packing_lanes",
        "shards",
        "tree_depth",
    }
)
SCALE_ROW_KEYS = frozenset(
    {
        "devices",
        "sharded_seconds",
        "sharded_uploads_per_second",
        "shard_size",
        "shards",
        "tree_depth",
        "scheduler_events",
    }
)
SWEEP_ROW_KEYS = frozenset(
    {"devices", "tree_fanout", "tree_depth", "shards", "sharded_seconds"}
)
BACKEND_ROW_KEYS = frozenset(
    {
        "backend",
        "detail",
        "pad_batch",
        "modexp_ops_per_second",
        "batch_invmod_ops_per_second",
        "e2e_devices",
        "e2e_seconds",
        "modexp_speedup_vs_pure",
        "e2e_speedup_vs_pure",
    }
)


def check_schema(payload: dict) -> list:
    """Validate a BENCH_runtime.json payload; returns a list of problems."""
    problems = []
    for section in ("microbenchmarks", "end_to_end", "sharded_scale", "tree_depth_sweep"):
        if section not in payload:
            problems.append(f"missing section {section!r}")
    for section, required in (
        ("end_to_end", E2E_ROW_KEYS),
        ("sharded_scale", SCALE_ROW_KEYS),
        ("tree_depth_sweep", SWEEP_ROW_KEYS),
    ):
        rows = payload.get(section)
        if not isinstance(rows, list) or not rows:
            problems.append(f"section {section!r} is empty")
            continue
        for row in rows:
            missing = required - set(row)
            if missing:
                problems.append(
                    f"{section} row for {row.get('devices')} devices is "
                    f"missing {sorted(missing)}"
                )
    scale = payload.get("sharded_scale") or []
    if scale and max(row.get("devices", 0) for row in scale) < 10**6:
        problems.append("sharded_scale series no longer reaches 10^6 devices")
    backends = payload.get("crypto_backends")
    if not isinstance(backends, dict):
        problems.append("missing section 'crypto_backends'")
    else:
        series = backends.get("series")
        if not isinstance(series, list) or not series:
            problems.append("section 'crypto_backends' has no series")
        else:
            names = set()
            for row in series:
                names.add(row.get("backend"))
                missing = BACKEND_ROW_KEYS - set(row)
                if missing:
                    problems.append(
                        f"crypto_backends row for {row.get('backend')!r} is "
                        f"missing {sorted(missing)}"
                    )
            absent = set(BACKEND_NAMES) - names
            if absent:
                problems.append(
                    f"crypto_backends series lacks backends {sorted(absent)}"
                )
    return problems


def smoke(baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run 'make bench-runtime' first")
        return 1
    payload = json.loads(baseline_path.read_text())
    problems = check_schema(payload)
    if problems:
        print(f"committed {baseline_path.name} fails the schema check:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    baseline = {row["devices"]: row for row in payload["end_to_end"]}
    rows = bench_e2e(SMOKE_COUNTS, reps=1)
    failures = []
    for row in rows:
        base = baseline.get(row["devices"])
        if base is None:
            continue
        if row["vectorized_seconds"] > 2.0 * base["vectorized_seconds"]:
            failures.append(
                f"{row['devices']} devices: {row['vectorized_seconds']:.2f} s vs "
                f"baseline {base['vectorized_seconds']:.2f} s (> 2x regression)"
            )
    largest = rows[-1]
    if largest["sharded_seconds"] > largest["vectorized_seconds"]:
        failures.append(
            f"{largest['devices']} devices: sharded plane "
            f"({largest['sharded_seconds']:.2f} s) is slower than the "
            f"vectorized plane ({largest['vectorized_seconds']:.2f} s)"
        )
    backends = bench_crypto_backends(
        reps=1,
        pad_batch=BACKEND_SMOKE_PAD_BATCH,
        e2e_devices=BACKEND_SMOKE_E2E_DEVICES,
    )
    if gmpy2_available():
        accel = next(
            row for row in backends["series"] if row["backend"] == "accel"
        )
        if accel["modexp_speedup_vs_pure"] < 3.0:
            failures.append(
                "gmpy2 is installed but the accel backend's batched Paillier "
                f"modexp is only {accel['modexp_speedup_vs_pure']:.2f}x the "
                "pure oracle (>= 3x required)"
            )
    if failures:
        print("runtime benchmark regression:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        "runtime smoke benchmark: schema ok, within 2x of committed "
        "baseline, sharded plane no slower than vectorized, backends "
        "byte-identical"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_runtime.json"),
        help="output path for the benchmark JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small device counts, 1 rep; fail if the vectorized plane "
        "regressed >2x vs the --out baseline",
    )
    parser.add_argument(
        "--backends", action="store_true",
        help="run only the per-backend crypto series and merge it into the "
        "existing --out JSON (the other series are kept as committed)",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke(Path(args.out))
    if args.backends:
        out = Path(args.out)
        if not out.exists():
            print(f"no baseline at {out}; run the full benchmark first")
            return 1
        payload = json.loads(out.read_text())
        payload["crypto_backends"] = bench_crypto_backends(args.reps)
        problems = check_schema(payload)
        if problems:
            print("merged payload fails the schema check:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"crypto_backends series refreshed -> {out}")
        return 0
    micro = {
        "bgv_add": bench_bgv_add(args.reps),
        "share_vector": bench_share_vector(args.reps),
    }
    print(
        f"bgv.add          {micro['bgv_add']['speedup']:6.1f}x  "
        f"({micro['bgv_add']['vectorized_slot_ops_per_second']:.3g} slot-ops/s)"
    )
    print(
        f"share_vector     {micro['share_vector']['speedup']:6.1f}x  "
        f"({micro['share_vector']['vectorized_shares_per_second']:.3g} shares/s)"
    )
    backend_rows = bench_crypto_backends(args.reps)
    rows = bench_e2e(DEVICE_COUNTS, args.reps)
    scale_rows = bench_sharded_scale(SCALE_COUNTS)
    sweep_rows = bench_tree_depth(TREE_SWEEP_DEVICES, TREE_SWEEP_FANOUTS)
    largest = rows[-1]
    payload = {
        "benchmark": "runtime-data-plane",
        "reps": args.reps,
        "key_prime_bits": KEY_PRIME_BITS,
        "categories": CATEGORIES,
        "query": TOP1,
        "microbenchmarks": micro,
        "crypto_backends": backend_rows,
        "end_to_end": rows,
        "sharded_scale": scale_rows,
        "tree_depth_sweep": sweep_rows,
        "e2e_speedup_at_largest": largest["speedup"],
        "sharded_speedup_at_largest": largest["sharded_speedup_vs_vectorized"],
    }
    problems = check_schema(payload)
    if problems:
        print("generated payload fails its own schema check:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"e2e at {largest['devices']} devices: "
        f"{largest['speedup']:.2f}x (vectorized vs legacy), "
        f"{largest['sharded_speedup_vs_vectorized']:.2f}x (sharded vs "
        f"vectorized) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
