"""Benchmark configuration.

Each benchmark regenerates one table or figure from the paper's evaluation
(§7) and prints the rows it produced, so `pytest benchmarks/
--benchmark-only -s` doubles as the reproduction report. Shape assertions
live in tests/test_eval.py; the benchmarks measure how long regeneration
takes and emit the artifacts.
"""

import pytest


@pytest.fixture(autouse=True)
def _newline_before_output(capsys):
    yield
