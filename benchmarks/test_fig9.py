"""Figure 9 — runtime of the query planner on each catalog query.

The benchmark target is the planner itself (this is the figure whose
y-axis *is* planner wall-clock); statistics per query are printed after.
"""

from repro.eval.experiments import fig9, print_fig9
from repro.eval.experiments import plan_paper_query
from repro.queries.catalog import get


def test_fig9_all_queries(benchmark):
    rows = benchmark.pedantic(fig9, rounds=1, iterations=1)
    assert len(rows) == 10
    by_query = {r.query: r for r in rows}
    # Shape: the trivial single-category Laplace queries plan fastest; the
    # richer EM queries explore far larger spaces (§7.3).
    assert by_query["cms"].runtime_seconds < by_query["median"].runtime_seconds
    assert by_query["hypotest"].space_size < by_query["median"].space_size
    print()
    print_fig9()


def test_fig9_median_planning(benchmark):
    """The slowest planner run in the paper (212 s there, model-scale here)."""
    spec = get("median")
    result = benchmark.pedantic(
        lambda: plan_paper_query(spec, use_cache=False), rounds=1, iterations=1
    )
    assert result.succeeded


def test_fig9_hypotest_planning(benchmark):
    """The fastest planner run in the paper (~10 ms)."""
    spec = get("hypotest")
    result = benchmark.pedantic(
        lambda: plan_paper_query(spec, use_cache=False), rounds=3, iterations=1
    )
    assert result.succeeded
