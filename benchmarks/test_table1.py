"""Table 1 — strawman comparison for the zip-code example (§3.2)."""

from repro.eval.experiments import print_table1, table1


def test_table1(benchmark):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    assert len(rows) == 5
    print()
    print_table1()
