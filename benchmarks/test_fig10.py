"""Figure 10 — scalability of top1 from N=2^17 to 2^30 under aggregator
limits (A=1000, A=5000 core-hours, and unlimited)."""

from repro.eval.experiments import fig10, print_fig10


def test_fig10(benchmark):
    points = benchmark.pedantic(fig10, rounds=1, iterations=1)
    assert len(points) == 14 * 3
    # The A=1000 line must stop (infeasible) before 2^30, like the paper's.
    limited = [p for p in points if p.limit_core_hours == 1000.0]
    assert any(p.aggregator_hours is None for p in limited)
    unlimited = [p for p in points if p.limit_core_hours is None]
    assert all(p.aggregator_hours is not None for p in unlimited)
    print()
    print_fig10()
