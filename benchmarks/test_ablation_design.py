"""Ablation benches for the design choices DESIGN.md calls out.

Three of the paper's explicitly-stated trade-offs, measured through the
planner's own machinery:

* §4.3: "there is no single best degree for this [sum] tree" — larger
  fanouts amortize start-up better (lower expected cost), smaller fanouts
  cap per-node work (lower maximum cost);
* §4.3/Fig 4: the two em instantiations trade aggregator FHE work against
  committee MPC work, and the winner flips with deployment size;
* §5.1: the committee size needed for safety grows with the number of
  committees and the malicious fraction.
"""

from repro.planner.committees import minimum_committee_size
from repro.planner.costmodel import CostModel
from repro.planner.expand import choice_space, instantiate
from repro.planner.plan import score_vignettes
from repro.planner.search import Planner
from repro.queries.catalog import get
from tests.conftest import small_env

MODEL = CostModel()
TOP1 = "aggr = sum(db); r = em(aggr); output(r);"


def _scores_by_aggregate_fanout(env):
    """Score every participant-tree fanout for the aggregation step."""
    from tests.test_ir_lowering import lower_source

    plan = lower_source(TOP1, env=env)
    space = choice_space(plan)
    results = {}
    gumbel = next(
        c for c in space[2][1] if c.option == "gumbel_mpc"
    )
    for agg_choice in space[1][1]:
        if agg_choice.option != "participant_tree":
            continue
        choices = [space[0][1][0], agg_choice, gumbel, space[3][1][0]]
        vignettes, _ = instantiate(plan, choices, MODEL)
        score = score_vignettes(vignettes, env.num_participants, MODEL)
        results[agg_choice.params[0]] = score
    return results


def test_sum_tree_fanout_tradeoff(benchmark):
    env = small_env(num_participants=2**30, categories=2**15, epsilon=0.1)
    results = benchmark.pedantic(
        lambda: _scores_by_aggregate_fanout(env), rounds=1, iterations=1
    )
    fanouts = sorted(results)
    print()
    print("fanout   expected-bytes     helper-max-bytes")
    for f in fanouts:
        cost = results[f].cost
        print(
            f"{f:6d}   {cost.participant_expected_bytes / 1e6:10.3f} MB   "
            f"{cost.participant_max_bytes / 1e9:10.3f} GB"
        )
    # Small fanout -> lower per-helper maximum; large fanout -> cheaper in
    # expectation (fewer tree nodes to pay for).
    smallest, largest = fanouts[0], fanouts[-1]
    assert (
        results[smallest].cost.participant_max_bytes
        < results[largest].cost.participant_max_bytes
    )
    assert (
        results[largest].cost.participant_expected_bytes
        <= results[smallest].cost.participant_expected_bytes
    )


def test_em_variant_crossover(benchmark):
    """The chosen em instantiation flips with deployment size: committee
    MPC wins at 10^9 devices (committee service is vanishingly rare), the
    FHE form wins at small N (committee probability ~1)."""

    def run():
        chosen = {}
        for exponent in (14, 30):
            env = small_env(
                num_participants=2**exponent, categories=2**15, epsilon=0.1
            )
            result = Planner(env).plan_source(TOP1, f"top1@2^{exponent}")
            chosen[exponent] = result.plan.choices["select_max[2]"]
        return chosen

    chosen = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for exponent, choice in chosen.items():
        print(f"N = 2^{exponent}: {choice}")
    assert chosen[14].startswith("expo_fhe")
    assert chosen[30].startswith("gumbel_mpc")


def test_committee_sizing_sweep(benchmark):
    """§5.1: m grows with the committee count and the malicious fraction."""

    def sweep():
        table = {}
        for f in (0.01, 0.03, 0.05, 0.10):
            table[f] = [
                minimum_committee_size(c, malicious_fraction=f)
                for c in (1, 100, 10_000, 1_000_000)
            ]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("f\\c        1     100   10^4    10^6")
    for f, sizes in table.items():
        print(f"{f:4.2f}  " + "  ".join(f"{m:5d}" for m in sizes))
    for f, sizes in table.items():
        assert sizes == sorted(sizes)  # monotone in committee count
    for row_a, row_b in zip(table[0.01], table[0.10]):
        assert row_b > row_a  # monotone in malicious fraction
