"""§7.5 — heterogeneity effects on the Gumbel MPC (geo-distribution and
slow devices). The benchmark target runs the real 42-party MPC."""

from repro.eval.hetero import heterogeneity_experiment, print_hetero


def test_heterogeneity(benchmark):
    results = benchmark.pedantic(
        lambda: heterogeneity_experiment(num_parties=42, num_scores=8),
        rounds=1,
        iterations=1,
    )
    by_name = {r.scenario: r for r in results}
    geo = by_name["geo-distributed"]
    slow = by_name["4 slow devices"]
    # Paper anchors: +606% (geo), +51% (slow devices).
    assert 300 < geo.increase_pct < 900
    assert 20 < slow.increase_pct < 120
    print()
    print_hetero()
