"""Figure 11 — power consumption of committee service on a Raspberry Pi 4."""

from repro.eval.power import (
    BATTERY_BUDGET_FRACTION,
    IPHONE_SE_BATTERY_MAH,
    fig11,
    print_fig11,
)


def test_fig11(benchmark):
    rows = benchmark.pedantic(fig11, rounds=1, iterations=1)
    assert len(rows) == 10
    budget = BATTERY_BUDGET_FRACTION * IPHONE_SE_BATTERY_MAH
    assert all(r.mah <= budget for r in rows)
    print()
    print_fig11()
