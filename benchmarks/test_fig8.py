"""Figure 8 — aggregator bandwidth and computation (1,000 cores)."""

from repro.eval.experiments import fig8, print_fig8


def test_fig8(benchmark):
    rows = benchmark.pedantic(fig8, rounds=1, iterations=1)
    arboretum = [r for r in rows if r.system == "arboretum"]
    assert len(arboretum) == 10
    print()
    print_fig8()
