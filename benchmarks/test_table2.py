"""Table 2 — the supported queries and their line counts."""

from repro.eval.experiments import print_table2, table2


def test_table2(benchmark):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert len(rows) == 10
    print()
    print_table2()
