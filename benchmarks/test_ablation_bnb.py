"""§7.3 ablation — the planner with branch-and-bound heuristics disabled.

The paper reports that disabling the heuristics makes the planner run out
of memory for half the queries and take 1-3 orders of magnitude longer on
the rest. We benchmark both modes on a mid-size query and demonstrate the
memory blow-up on the largest space with a bounded candidate budget.
"""

import pytest

from repro.planner.search import Planner, PlannerOutOfMemory
from repro.queries.catalog import get


def test_ablation_speedup(benchmark):
    spec = get("gap")
    env = spec.environment()

    def run_both():
        with_h = Planner(env).plan_source(spec.source, "gap-bb")
        without_h = Planner(env, heuristics=False).plan_source(spec.source, "gap-naive")
        return with_h, without_h

    with_h, without_h = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = (
        without_h.statistics.candidates_scored
        / max(with_h.statistics.candidates_scored, 1)
    )
    print()
    print(
        f"branch-and-bound: {with_h.statistics.candidates_scored} candidates "
        f"({with_h.statistics.runtime_seconds * 1000:.0f} ms); naive: "
        f"{without_h.statistics.candidates_scored} candidates "
        f"({without_h.statistics.runtime_seconds * 1000:.0f} ms); "
        f"{speedup:.0f}x fewer candidates scored"
    )
    assert speedup >= 10


def test_ablation_out_of_memory(benchmark):
    """With a realistic memory budget the naive planner dies on the query
    with the largest plan space, like half the paper's queries did."""
    spec = get("median")
    env = spec.environment()

    def naive():
        planner = Planner(env, heuristics=False, memory_budget_candidates=50)
        with pytest.raises(PlannerOutOfMemory):
            planner.plan_source(spec.source, "median-naive")
        return True

    assert benchmark.pedantic(naive, rounds=1, iterations=1)
