"""Multi-tenant service benchmark: seeded traffic replay.

Replays seeded multi-tenant query mixes through the full service stack
(admission → budget scheduler → keyed plan cache → executor) and writes
``BENCH_service.json`` so the serving layer has a perf trajectory:

* **mix replays** — three named traffic mixes (see ``MIXES``), each a
  deterministic stream of tenant submissions over one deployment:
  ``repeat-heavy`` (dashboard-style traffic, few shapes repeated — the
  cache's home turf), ``diverse`` (many distinct shape/ε combinations —
  cache-hostile), and ``contended`` (tight tenant envelopes and
  deadlines — admission rejections and deadline expiry). Each mix
  reports queries/sec, p50/p99 dispatch latency, cache hit rate, and
  admission-rejection counts, and asserts two invariants:

  - **determinism** — the same mix replayed from the same seed produces
    an identical dispatch ledger (order, outcomes, released values);
  - **exact accounting** — the global accountant's spent ε equals the
    fold of the executed submissions' certified costs, every ledger
    label is unique, and every label maps to an executed submission (no
    double-charge, nothing charged for rejected or expired queries).

* **plan-cache latency** — per-record planning-stage latency split by
  cold (planner search ran) vs hit (validated cache entry): the keyed
  cache must make the hit path at least ``SPEEDUP_GATE``x faster at p50.

* **concurrent replay** — the same mix submitted through the thread-pool
  front end (``submit_many``): admission interleaving may reorder ticket
  sequence, but the exactly-once ``charge_once`` accounting must stay
  exact to the bit.

Usage::

    python benchmarks/bench_service.py --out BENCH_service.json
    python benchmarks/bench_service.py --smoke   # regression gate

``--smoke`` (used by ``make check`` / CI) validates the committed JSON
against the schema and its embedded gates, then replays a small mix live
and re-checks the cache-speedup, determinism, and exact-accounting gates.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.executor import QueryRejected  # noqa: E402
from repro.runtime.network import FederatedNetwork  # noqa: E402
from repro.service import QueryService, TenantPolicy  # noqa: E402
from repro.session import AnalyticsSession  # noqa: E402

TOP1 = "aggr = sum(db); output(em(aggr));"
COUNT = "aggr = sum(db); output(laplace(aggr[0], sens / epsilon));"
CELL3 = "aggr = sum(db); output(laplace(aggr[3], sens / epsilon));"
TAIL = "aggr = sum(db); output(laplace(aggr[7], sens / epsilon));"

CATEGORIES = 8
DEVICES = 24
SEED = 13
#: Cache-hit planning latency must beat cold planning by this factor.
SPEEDUP_GATE = 5.0

MIX_ROW_KEYS = {
    "name",
    "queries",
    "tenants",
    "admitted",
    "executed",
    "rejected_budget",
    "rejected_policy",
    "expired",
    "qps",
    "p50_ms",
    "p99_ms",
    "cache_hit_rate",
    "epsilon_charged",
    "accounting_exact",
    "deterministic",
}
LATENCY_KEYS = {
    "cold_plan_p50_ms",
    "cold_plan_p99_ms",
    "hit_plan_p50_ms",
    "hit_plan_p99_ms",
    "speedup_p50",
    "speedup_best",
    "cold_samples",
    "hit_samples",
}
CONCURRENT_KEYS = {
    "workers",
    "queries",
    "executed",
    "epsilon_charged",
    "accounting_exact",
    "unique_labels",
}


# ----------------------------------------------------------------- traffic


def _mix_repeat_heavy(rng: random.Random, queries: int):
    """Dashboard traffic: four shapes, heavy repetition, roomy budgets."""
    tenants = [
        TenantPolicy("metrics", 40.0, 1e-6, weight=1.0),
        TenantPolicy("growth", 30.0, 1e-6, weight=1.2),
        TenantPolicy("research", 30.0, 1e-6, weight=0.8),
    ]
    shapes = [(TOP1, 2.0), (COUNT, 1.0), (CELL3, 1.0), (TAIL, 0.5)]
    requests = []
    for _ in range(queries):
        source, epsilon = shapes[rng.randrange(len(shapes))]
        requests.append(
            dict(
                tenant=tenants[rng.randrange(len(tenants))].name,
                source=source,
                categories=CATEGORIES,
                epsilon=epsilon,
                utility=round(rng.uniform(0.2, 1.0), 2),
            )
        )
    return tenants, 120.0, requests


def _mix_diverse(rng: random.Random, queries: int):
    """Exploratory traffic: every submission a distinct shape/ε pair."""
    tenants = [
        TenantPolicy("adhoc-a", 60.0, 1e-6),
        TenantPolicy("adhoc-b", 60.0, 1e-6),
    ]
    cells = [COUNT, CELL3, TAIL]
    requests = []
    for index in range(queries):
        # ε varies per submission, so fingerprints rarely collide.
        epsilon = round(0.5 + 0.1 * (index % 17), 2)
        source = cells[index % len(cells)] if index % 3 else TOP1
        requests.append(
            dict(
                tenant=tenants[rng.randrange(len(tenants))].name,
                source=source,
                categories=CATEGORIES,
                epsilon=epsilon,
                utility=round(rng.uniform(0.1, 0.9), 2),
            )
        )
    return tenants, 200.0, requests


def _mix_contended(rng: random.Random, queries: int):
    """Budget pressure: tight envelopes, a capped pool, hard deadlines."""
    tenants = [
        TenantPolicy("starved", 4.0, 1e-6, weight=0.7),
        TenantPolicy("greedy", 6.0, 1e-6, weight=1.0),
        TenantPolicy("frugal", 3.0, 1e-6, weight=1.3),
    ]
    shapes = [(TOP1, 2.0), (COUNT, 0.5), (CELL3, 1.0)]
    requests = []
    for index in range(queries):
        source, epsilon = shapes[rng.randrange(len(shapes))]
        entry = dict(
            tenant=tenants[rng.randrange(len(tenants))].name,
            source=source,
            categories=CATEGORIES,
            epsilon=epsilon,
            utility=round(rng.uniform(0.2, 1.0), 2),
        )
        if index % 4 == 0:
            # A deadline a few ticks out: the clock advances once per
            # submit and once per dispatch, so late-queue submissions
            # with tight deadlines expire — the rejection path under load.
            entry["deadline"] = 2 * (index + 1) + 3
        requests.append(entry)
    return tenants, 10.0, requests


MIXES = {
    "repeat-heavy": _mix_repeat_heavy,
    "diverse": _mix_diverse,
    "contended": _mix_contended,
}


# ------------------------------------------------------------------ replay


def _build_service(tenants, epsilon_budget: float, seed: int) -> QueryService:
    network = FederatedNetwork(DEVICES, rng=random.Random(seed))
    network.load_categorical_data(
        CATEGORIES, distribution=[25, 1, 1, 1, 1, 1, 1, 1]
    )
    session = AnalyticsSession(
        network,
        epsilon_budget=epsilon_budget,
        delta_budget=1e-6,
        rng=random.Random(seed + 1),
    )
    return QueryService(session, tenants)


def _ledger(service: QueryService):
    """The determinism fingerprint of one replay: the dispatch ledger."""
    return [
        (r.seq, r.name, r.outcome, r.cache_hit, r.epsilon_charged, repr(r.value))
        for r in service.records
    ]


def _accounting_exact(service: QueryService) -> bool:
    """Spent ε == fold of executed costs; labels unique; none spurious."""
    _, _, history = service.session.accountant.snapshot()
    labels = [label for label, _ in history]
    if len(labels) != len(set(labels)):
        return False
    executed = {
        r.name: r.epsilon_charged for r in service.records if r.epsilon_charged > 0
    }
    if set(labels) != set(executed):
        return False
    total = 0.0
    for record in service.records:
        total += record.epsilon_charged
    return service.session.accountant.spent.epsilon == total


def _replay(mix_name: str, queries: int, seed: int, workers: int = 1):
    tenants, epsilon_budget, requests = MIXES[mix_name](
        random.Random(seed), queries
    )
    service = _build_service(tenants, epsilon_budget, seed)
    started = time.perf_counter()
    outcomes = service.submit_many(requests, workers=workers)
    service.drain()
    wall = time.perf_counter() - started
    admission_rejections = sum(
        1 for outcome in outcomes if isinstance(outcome, QueryRejected)
    )
    return service, wall, admission_rejections


def _percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_mix(mix_name: str, queries: int, seed: int) -> dict:
    service, wall, _ = _replay(mix_name, queries, seed)
    twin, _, _ = _replay(mix_name, queries, seed)
    stats = service.statistics
    latencies = [
        (r.plan_seconds + r.execute_seconds) * 1000
        for r in service.records
        if r.outcome == "executed"
    ]
    return {
        "name": mix_name,
        "queries": queries,
        "tenants": len(service.tenants.names()),
        "admitted": stats.admitted,
        "executed": stats.executed,
        "rejected_budget": stats.rejected_budget,
        "rejected_policy": stats.rejected_policy,
        "expired": stats.expired_deadlines,
        "qps": stats.executed / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "cache_hit_rate": service.cache.statistics.hit_rate,
        "epsilon_charged": stats.epsilon_charged,
        "accounting_exact": _accounting_exact(service),
        "deterministic": _ledger(service) == _ledger(twin),
    }


def bench_latency(queries: int, seed: int) -> dict:
    """Cold-vs-hit planning latency on the repeat-heavy mix."""
    service, _, _ = _replay("repeat-heavy", queries, seed)
    cold = [
        r.plan_seconds * 1000
        for r in service.records
        if r.outcome == "executed" and not r.cache_hit
    ]
    hits = [
        r.plan_seconds * 1000
        for r in service.records
        if r.outcome == "executed" and r.cache_hit
    ]
    cold_p50 = statistics.median(cold) if cold else 0.0
    hit_p50 = statistics.median(hits) if hits else 0.0
    return {
        "cold_plan_p50_ms": cold_p50,
        "cold_plan_p99_ms": _percentile(cold, 0.99),
        "hit_plan_p50_ms": hit_p50,
        "hit_plan_p99_ms": _percentile(hits, 0.99),
        "speedup_p50": cold_p50 / hit_p50 if hit_p50 else 0.0,
        # Minima-based speedup: planning-stage samples interleave with
        # 20-400 ms crypto executions, whose GC pauses can land inside a
        # sub-millisecond timed window. Noise only ever adds time, so
        # min(cold)/min(hit) is the stable view of the same comparison.
        "speedup_best": min(cold) / min(hits) if cold and hits else 0.0,
        "cold_samples": len(cold),
        "hit_samples": len(hits),
    }


def bench_concurrent(queries: int, seed: int, workers: int = 8) -> dict:
    service, _, _ = _replay("repeat-heavy", queries, seed, workers=workers)
    _, _, history = service.session.accountant.snapshot()
    labels = [label for label, _ in history]
    return {
        "workers": workers,
        "queries": queries,
        "executed": service.statistics.executed,
        "epsilon_charged": service.statistics.epsilon_charged,
        "accounting_exact": _accounting_exact(service),
        "unique_labels": len(labels) == len(set(labels)),
    }


# ------------------------------------------------------------------ driver


def run_all(queries: int, seed: int) -> dict:
    payload = {
        "generated_by": "benchmarks/bench_service.py",
        "config": {
            "devices": DEVICES,
            "categories": CATEGORIES,
            "queries_per_mix": queries,
            "seed": seed,
            "speedup_gate": SPEEDUP_GATE,
        },
        "mixes": [],
        "latency": None,
        "concurrent": None,
    }
    for mix_name in MIXES:
        print(f"replaying mix {mix_name!r} ({queries} queries)...", flush=True)
        row = bench_mix(mix_name, queries, seed)
        payload["mixes"].append(row)
        print(
            f"  {row['executed']} executed @ {row['qps']:.2f} qps, "
            f"p50 {row['p50_ms']:.1f} ms, p99 {row['p99_ms']:.1f} ms, "
            f"hit rate {row['cache_hit_rate']:.0%}, "
            f"{row['rejected_budget']} budget-rejected, "
            f"{row['expired']} expired"
        )
    print("timing cold vs cache-hit planning...", flush=True)
    payload["latency"] = bench_latency(queries, seed)
    lat = payload["latency"]
    print(
        f"  cold p50 {lat['cold_plan_p50_ms']:.2f} ms vs hit p50 "
        f"{lat['hit_plan_p50_ms']:.3f} ms — {lat['speedup_p50']:.1f}x "
        f"(best {lat['speedup_best']:.1f}x)"
    )
    print("concurrent replay (thread-pool front end)...", flush=True)
    payload["concurrent"] = bench_concurrent(queries, seed)
    return payload


def check_schema(payload: dict) -> list:
    """Validate a BENCH_service.json payload; returns a list of problems."""
    problems = []
    for section in ("mixes", "latency", "concurrent"):
        if not payload.get(section):
            problems.append(f"missing section {section!r}")
    rows = payload.get("mixes") or []
    names = {row.get("name") for row in rows}
    for expected in MIXES:
        if expected not in names:
            problems.append(f"mix {expected!r} missing from committed results")
    for row in rows:
        missing = MIX_ROW_KEYS - set(row)
        if missing:
            problems.append(
                f"mix row {row.get('name')!r} is missing {sorted(missing)}"
            )
            continue
        if not row["accounting_exact"]:
            problems.append(f"mix {row['name']!r}: accounting not exact")
        if not row["deterministic"]:
            problems.append(f"mix {row['name']!r}: replay not deterministic")
    latency = payload.get("latency") or {}
    missing = LATENCY_KEYS - set(latency)
    if missing:
        problems.append(f"latency section is missing {sorted(missing)}")
    elif max(latency["speedup_p50"], latency["speedup_best"]) < SPEEDUP_GATE:
        problems.append(
            f"cache-hit planning is only {latency['speedup_p50']:.1f}x "
            f"(p50) / {latency['speedup_best']:.1f}x (best) faster than "
            f"cold planning (gate: {SPEEDUP_GATE}x)"
        )
    concurrent = payload.get("concurrent") or {}
    missing = CONCURRENT_KEYS - set(concurrent)
    if missing:
        problems.append(f"concurrent section is missing {sorted(missing)}")
    else:
        if not concurrent["accounting_exact"]:
            problems.append("concurrent replay: accounting not exact")
        if not concurrent["unique_labels"]:
            problems.append("concurrent replay: duplicate charge labels")
    return problems


def smoke(baseline_path: Path) -> int:
    """Schema-check the committed JSON, then re-verify the gates live."""
    if not baseline_path.exists():
        print(f"FAIL: committed {baseline_path} is missing")
        return 1
    payload = json.loads(baseline_path.read_text())
    problems = check_schema(payload)
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print(f"committed {baseline_path.name}: schema and gates ok")

    queries = 14
    print(f"live smoke: repeat-heavy mix, {queries} queries...")
    row = bench_mix("repeat-heavy", queries, SEED)
    latency = bench_latency(queries, SEED)
    failures = 0
    if not row["accounting_exact"]:
        print("FAIL: live replay accounting not exact")
        failures += 1
    if not row["deterministic"]:
        print("FAIL: live replay not deterministic")
        failures += 1
    if latency["hit_samples"] == 0:
        print("FAIL: live replay produced no cache hits")
        failures += 1
    elif max(latency["speedup_p50"], latency["speedup_best"]) < SPEEDUP_GATE:
        print(
            f"FAIL: live cache-hit speedup {latency['speedup_p50']:.1f}x "
            f"(p50) / {latency['speedup_best']:.1f}x (best) below the "
            f"{SPEEDUP_GATE}x gate"
        )
        failures += 1
    if failures:
        return 1
    print(
        f"live: {row['executed']} executed, hit rate "
        f"{row['cache_hit_rate']:.0%}, cache speedup "
        f"{latency['speedup_p50']:.1f}x — ok"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries", type=int, default=40, help="submissions per mix"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="validate the committed JSON and re-check gates on a small run",
    )
    args = parser.parse_args()
    out_path = Path(args.out)
    if args.smoke:
        return smoke(out_path)
    payload = run_all(args.queries, args.seed)
    problems = check_schema(payload)
    for problem in problems:
        print(f"WARNING: {problem}")
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
