"""Figure 6 — expected per-participant bandwidth and computation."""

from repro.eval.experiments import fig6, print_fig6


def test_fig6(benchmark):
    rows = benchmark.pedantic(fig6, rounds=1, iterations=1)
    arboretum = [r for r in rows if r.system == "arboretum"]
    assert len(arboretum) == 10
    legacy = [r for r in rows if r.system != "arboretum"]
    assert {r.system for r in legacy} == {"Honeycrisp", "Orchard"}
    print()
    print_fig6()
