"""Cost-model validation ([44, §C] provides validation data for the
paper's model; this is our equivalent).

The model only needs to *order* candidates correctly (§4.6). We validate
exactly that: run the real MPC engine on the building blocks the model
prices — multiplication, comparison, noise generation, committee sizes —
and check that the measured cost ordering and rough ratios agree with the
model's predictions.
"""

import random
import time

from repro.mpc.engine import MPCEngine
from repro.mpc.protocols import shared_gumbel_noise
from repro.planner.costmodel import CostModel, Work

MODEL = CostModel()


def _timed(fn, repeats):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def _measure_primitives(num_parties=6, repeats=20, seed=3):
    rng = random.Random(seed)
    engine = MPCEngine(num_parties, rng=rng, bit_width=32)
    values = [engine.input_value(rng.randrange(100)) for _ in range(4)]
    mul = _timed(lambda: engine.mul(values[0], values[1]), repeats)
    cmp_ = _timed(lambda: engine.less_than(values[0], values[1]), repeats)
    noise = _timed(lambda: shared_gumbel_noise(engine, 1.0, rng), repeats // 4 or 1)
    return {"mul": mul, "comparison": cmp_, "noise": noise, "engine": engine}


def test_relative_op_ordering(benchmark):
    """Measured: noise > comparison > multiplication — the ordering the
    model's triple counts encode (1 : ~180 : ~2000)."""
    measured = benchmark.pedantic(_measure_primitives, rounds=1, iterations=1)
    print()
    print(
        f"measured per-op seconds: mul={measured['mul'] * 1e3:.2f} ms, "
        f"comparison={measured['comparison'] * 1e3:.2f} ms, "
        f"noise={measured['noise'] * 1e3:.2f} ms"
    )
    assert measured["comparison"] > measured["mul"]

    model_mul = MODEL.compute_seconds(Work(mpc_triples=1))
    model_cmp = MODEL.compute_seconds(Work(mpc_comparisons=1))
    model_ratio = model_cmp / model_mul
    measured_ratio = measured["comparison"] / measured["mul"]
    print(
        f"comparison/mul ratio: model={model_ratio:.0f}, measured={measured_ratio:.0f}"
    )
    # The model's comparison is priced at ~180 triples plus round latency;
    # the in-process engine has no network, so only the triple-count part
    # of the ratio is observable. Same order of magnitude suffices.
    assert 0.05 < measured_ratio / (model_ratio * 0.55) < 20


def test_committee_size_scaling(benchmark):
    """Measured per-member work grows with committee size, as the model's
    peer-proportional traffic/compute terms predict."""

    def measure():
        times = {}
        for parties in (4, 8, 16):
            rng = random.Random(parties)
            engine = MPCEngine(parties, rng=rng, bit_width=32)
            a, b = engine.input_value(3), engine.input_value(9)
            times[parties] = _timed(lambda: engine.less_than(a, b), 10)
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for parties, seconds in times.items():
        print(f"  {parties:2d} parties: {seconds * 1e3:.2f} ms per comparison")
    assert times[16] > times[4]

    model_small = MODEL.traffic_bytes(Work(mpc_comparisons=1), committee_size=4)
    model_large = MODEL.traffic_bytes(Work(mpc_comparisons=1), committee_size=16)
    assert model_large > model_small


def test_calibrated_model_orders_like_default(benchmark):
    """A CostCO-style auto-calibrated model (measured on this machine)
    ranks plan candidates the same way as the paper-anchored model."""
    from repro.planner.costmodel import Goal
    from repro.planner.search import Planner
    from tests.conftest import small_env

    def run():
        env = small_env(num_participants=10**9, categories=2**15, epsilon=0.1)
        source = "aggr = sum(db); output(em(aggr));"
        default_plan = Planner(env).plan_source(source, "default-model")
        calibrated = CostModel.calibrated_from_engine(
            num_parties=4, operations=8, platform_scale=50.0
        )
        calibrated_plan = Planner(env, model=calibrated).plan_source(
            source, "calibrated-model"
        )
        return default_plan, calibrated_plan

    default_plan, calibrated_plan = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("default model chose:   ", default_plan.plan.choices["select_max[2]"])
    print("calibrated model chose:", calibrated_plan.plan.choices["select_max[2]"])
    # Both models must at least agree on the em instantiation family at
    # this scale (committee MPC wins at N=10^9).
    assert default_plan.plan.choices["select_max[2]"].split("[")[0] == (
        calibrated_plan.plan.choices["select_max[2]"].split("[")[0]
    )
