"""Beaver multiplication triples and edaBits for the committee MPCs.

Honest-majority Shamir MPC (the SPDZ-wise protocol the paper uses via
MP-SPDZ) splits work into an input-independent *offline* phase that
produces correlated randomness — multiplication triples (a, b, ab) and
edaBits (a shared value together with sharings of its bits) — and a fast
*online* phase that consumes them. In a deployment, the committee generates
this randomness among itself; in this reproduction a dealer object plays
the offline phase and the engine meters its cost, which is exactly how the
paper's cost model accounts for it ("the first comparison is more expensive
than subsequent ones because it requires the generation of multiplication
triples", §6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..crypto.field import PrimeField
from ..crypto.shamir import Share, share_secret


@dataclass(frozen=True)
class BeaverTriple:
    """Per-party shares of a random (a, b, c) with c = a*b."""

    a: Dict[int, Share]
    b: Dict[int, Share]
    c: Dict[int, Share]


@dataclass(frozen=True)
class EdaBit:
    """Shares of a random m-bit value r together with shares of its bits.

    Used for comparisons: a secret is masked by r, opened, and the public
    masked value is compared against r's shared bits.
    """

    value: Dict[int, Share]
    bits: List[Dict[int, Share]]  # bits[0] = least significant

    @property
    def bit_length(self) -> int:
        return len(self.bits)


class OfflineDealer:
    """Produces the correlated randomness the online phase consumes.

    Counters on this object let the engine report how much offline work a
    computation required, which feeds the planner's cost model.
    """

    def __init__(self, field: PrimeField, party_ids: Sequence[int], threshold: int, rng: random.Random):
        if len(party_ids) < 2 * threshold + 1:
            raise ValueError(
                "honest-majority multiplication needs n >= 2t+1 parties"
            )
        self.field = field
        self.party_ids = list(party_ids)
        self.threshold = threshold
        self._rng = rng
        self.triples_dealt = 0
        self.edabits_dealt = 0
        self.random_shares_dealt = 0

    def _share(self, value: int) -> Dict[int, Share]:
        shares = share_secret(value, self.threshold, self.party_ids, self.field, self._rng)
        return {s.x: s for s in shares}

    def triple(self) -> BeaverTriple:
        a = self.field.random_element(self._rng)
        b = self.field.random_element(self._rng)
        c = self.field.mul(a, b)
        self.triples_dealt += 1
        return BeaverTriple(self._share(a), self._share(b), self._share(c))

    def edabit(self, bit_length: int) -> EdaBit:
        bits = [self._rng.randrange(2) for _ in range(bit_length)]
        value = sum(bit << i for i, bit in enumerate(bits))
        self.edabits_dealt += 1
        return EdaBit(self._share(value), [self._share(b) for b in bits])

    def random_share(self) -> Dict[int, Share]:
        self.random_shares_dealt += 1
        return self._share(self.field.random_element(self._rng))

    def noise_share(self, sample: int) -> Dict[int, Share]:
        """Share an externally drawn (signed) noise sample.

        Stands in for the committee's joint noise-generation sub-protocol;
        the sample never exists in the clear at any single party. The cost
        model charges for the real protocol.
        """
        self.random_shares_dealt += 1
        return self._share(self.field.encode_signed(sample))
