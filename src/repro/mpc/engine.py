"""Honest-majority Shamir MPC engine for committee vignettes.

This is the stand-in for MP-SPDZ's SPDZ-wise Shamir protocol (§6): a
committee of n parties with threshold t < n/2 computes over secret-shared
values. Additions are local; multiplications consume a Beaver triple and one
opening round; comparisons use the masked-opening + bitwise circuit protocol
over edaBits (the MP-SPDZ approach). Every operation is metered — openings,
rounds, triples, bytes — and those counters feed the planner's cost model,
mirroring how the paper benchmarks building blocks and extrapolates.

The engine simulates all parties in one process but enforces the sharing
discipline through its API: a :class:`SecretValue` can only be read via
``open``/``declassify``, reconstruction is degree-checked so a corrupted
share is detected (the honest-majority analogue of SPDZ MAC checks), and
tests exercise malicious members through :meth:`MPCEngine.corrupt_share`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..crypto.field import PrimeField, DEFAULT_FIELD
from ..crypto.shamir import Share, reconstruct_secret, share_secret, share_vector
from .beaver import EdaBit, OfflineDealer

#: Statistical security (bits of masking slack) for masked openings, as in
#: the paper's MP-SPDZ configuration (§6: "40 bits of statistical security").
STATISTICAL_SECURITY_BITS = 40

#: Default width of compared values: 30 integer + 16 fraction bits (§6),
#: plus a sign bit.
DEFAULT_BIT_WIDTH = 47


class CheatingDetected(Exception):
    """Raised when an opened sharing is inconsistent (a party cheated)."""


@dataclass
class SecretValue:
    """Handle to a secret-shared field element living inside one engine."""

    shares: Dict[int, Share]
    engine_id: int

    def __post_init__(self):
        if not self.shares:
            raise ValueError("a secret value needs at least one share")


@dataclass
class CostCounters:
    """Online-phase work performed by an engine, for the cost model."""

    openings: int = 0
    rounds: int = 0
    multiplications: int = 0
    comparisons: int = 0
    bytes_sent: int = 0
    inputs: int = 0
    triples_consumed: int = 0
    edabits_consumed: int = 0

    def snapshot(self) -> "CostCounters":
        return CostCounters(**vars(self))


class MPCEngine:
    """One committee's MPC instance.

    Parameters
    ----------
    num_parties:
        Committee size n. Threshold defaults to the largest t with
        n >= 2t+1 (honest majority).
    field:
        The prime field; defaults to the 127-bit Mersenne field, which
        leaves 40 bits of masking slack above the 47-bit value width.
    """

    _next_engine_id = 0

    def __init__(
        self,
        num_parties: int,
        field: PrimeField = DEFAULT_FIELD,
        threshold: Optional[int] = None,
        rng: Optional[random.Random] = None,
        bit_width: int = DEFAULT_BIT_WIDTH,
    ):
        if num_parties < 3:
            raise ValueError("honest-majority MPC needs at least 3 parties")
        self.field = field
        self.party_ids = list(range(1, num_parties + 1))
        self.threshold = threshold if threshold is not None else (num_parties - 1) // 2
        if num_parties < 2 * self.threshold + 1:
            raise ValueError("threshold violates the honest-majority bound n >= 2t+1")
        self.bit_width = bit_width
        mask_bits = bit_width + 1 + STATISTICAL_SECURITY_BITS
        if field.bits < mask_bits + 2:
            raise ValueError(
                f"field of {field.bits} bits too small for {bit_width}-bit values "
                f"with {STATISTICAL_SECURITY_BITS}-bit statistical masking"
            )
        if rng is None:
            # Shares and masks drawn from an ambient stream would be
            # unreproducible and unauditable; callers must thread their own.
            raise ValueError("MPCEngine requires an explicit random.Random")
        self.rng = rng
        self.dealer = OfflineDealer(field, self.party_ids, self.threshold, self.rng)
        self.counters = CostCounters()
        #: Consulted between communication rounds; the fault-injection
        #: runtime (``repro.faults``) installs a hook here that simulates
        #: crashes, stragglers, and equivocation by raising typed errors.
        self.round_hook: Optional[Callable[[], None]] = None
        self._id = MPCEngine._next_engine_id
        MPCEngine._next_engine_id += 1

    # ------------------------------------------------------------------ io

    @property
    def num_parties(self) -> int:
        return len(self.party_ids)

    def _wrap(self, shares: Dict[int, Share]) -> SecretValue:
        return SecretValue(shares, self._id)

    def _check_ownership(self, *values: SecretValue) -> None:
        for v in values:
            if v.engine_id != self._id:
                raise ValueError("secret value belongs to a different committee")

    def input_value(self, value: int) -> SecretValue:
        """A party inputs a (signed) value by secret-sharing it."""
        encoded = self.field.encode_signed(value)
        shares = share_secret(encoded, self.threshold, self.party_ids, self.field, self.rng)
        self.counters.inputs += 1
        self.counters.bytes_sent += self._share_bytes() * (self.num_parties - 1)
        return self._wrap({s.x: s for s in shares})

    def input_values(self, values: Sequence[int]) -> List[SecretValue]:
        """Batch-input many (signed) values via one Vandermonde sharing.

        Produces exactly the shares, RNG draws (secret-major coefficient
        order), and cost-counter increments that calling
        :meth:`input_value` once per element would, but evaluates all
        sharing polynomials with a single matrix product in
        :func:`repro.crypto.shamir.share_vector`.
        """
        encoded = [self.field.encode_signed(v) for v in values]
        per_party = share_vector(
            encoded, self.threshold, self.party_ids, self.field, self.rng
        )
        self.counters.inputs += len(values)
        self.counters.bytes_sent += (
            self._share_bytes() * (self.num_parties - 1) * len(values)
        )
        return [
            self._wrap({pid: per_party[pid][i] for pid in self.party_ids})
            for i in range(len(values))
        ]

    def input_shares(self, shares: Dict[int, Share]) -> SecretValue:
        """Adopt shares produced elsewhere (e.g. received via VSR)."""
        if set(shares) != set(self.party_ids):
            raise ValueError("shares do not match this committee's parties")
        return self._wrap(dict(shares))

    def export_shares(self, value: SecretValue) -> Dict[int, Share]:
        """Hand shares out for redistribution to another committee."""
        self._check_ownership(value)
        return dict(value.shares)

    def constant(self, value: int) -> SecretValue:
        """Share a public constant (degree-0 'sharing': every share equals it)."""
        encoded = self.field.encode_signed(value)
        return self._wrap({pid: Share(pid, encoded) for pid in self.party_ids})

    # --------------------------------------------------------------- linear

    def add(self, a: SecretValue, b: SecretValue) -> SecretValue:
        self._check_ownership(a, b)
        return self._wrap(
            {
                pid: Share(pid, self.field.add(a.shares[pid].y, b.shares[pid].y))
                for pid in self.party_ids
            }
        )

    def sub(self, a: SecretValue, b: SecretValue) -> SecretValue:
        self._check_ownership(a, b)
        return self._wrap(
            {
                pid: Share(pid, self.field.sub(a.shares[pid].y, b.shares[pid].y))
                for pid in self.party_ids
            }
        )

    def add_public(self, a: SecretValue, k: int) -> SecretValue:
        self._check_ownership(a)
        encoded = self.field.encode_signed(k)
        return self._wrap(
            {
                pid: Share(pid, self.field.add(a.shares[pid].y, encoded))
                for pid in self.party_ids
            }
        )

    def mul_public(self, a: SecretValue, k: int) -> SecretValue:
        self._check_ownership(a)
        encoded = self.field.encode_signed(k)
        return self._wrap(
            {
                pid: Share(pid, self.field.mul(a.shares[pid].y, encoded))
                for pid in self.party_ids
            }
        )

    def sum_values(self, values: Sequence[SecretValue]) -> SecretValue:
        """Sum shared values with a balanced pairwise tree.

        Share addition is exact field addition (no rounding, no counters
        touched by :meth:`add`), so the tree's result is byte-identical to
        the historical left fold while keeping the reduction depth
        logarithmic — the shape a real committee would use to overlap
        communication-free local additions.
        """
        if not values:
            return self.constant(0)
        layer = list(values)
        while len(layer) > 1:
            nxt = [
                self.add(layer[i], layer[i + 1])
                for i in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    # ------------------------------------------------------------- opening

    def _share_bytes(self) -> int:
        return (self.field.bits + 7) // 8

    def _open_raw(self, shares: Dict[int, Share]) -> int:
        """King-model opening with degree-t consistency checking.

        Every party sends its share to a king, who interpolates from t+1
        shares and verifies the remaining n-t-1 against the polynomial; any
        mismatch means some party lied, and the protocol aborts. This is the
        honest-majority error-detection analogue of SPDZ MAC checks.
        """
        if self.round_hook is not None:
            # A round boundary: the fault injector may fail a member here.
            self.round_hook()
        ordered = [shares[pid] for pid in self.party_ids]
        quorum = ordered[: self.threshold + 1]
        secret = reconstruct_secret(quorum, self.field)
        xs = [s.x for s in quorum]
        # Evaluate the degree-t polynomial implied by the quorum at every
        # remaining x and compare.
        for other in ordered[self.threshold + 1 :]:
            predicted = self._interpolate_at(quorum, other.x)
            if predicted != other.y:
                raise CheatingDetected(
                    f"party {other.x} submitted an inconsistent share"
                )
        self.counters.openings += 1
        self.counters.rounds += 1
        # n-1 sends to the king plus n-1 broadcasts of the result.
        self.counters.bytes_sent += 2 * (self.num_parties - 1) * self._share_bytes()
        return secret

    def _interpolate_at(self, shares: Sequence[Share], x: int) -> int:
        acc = 0
        for i, si in enumerate(shares):
            num, den = 1, 1
            for j, sj in enumerate(shares):
                if i == j:
                    continue
                num = self.field.mul(num, self.field.sub(x, sj.x))
                den = self.field.mul(den, self.field.sub(si.x, sj.x))
            acc = self.field.add(acc, self.field.mul(si.y, self.field.div(num, den)))
        return acc

    def open(self, value: SecretValue) -> int:
        """Open a secret to all parties, returning the signed integer."""
        self._check_ownership(value)
        return self.field.decode_signed(self._open_raw(value.shares))

    def open_unsigned(self, value: SecretValue) -> int:
        self._check_ownership(value)
        return self._open_raw(value.shares)

    # -------------------------------------------------------------- multiply

    def mul(self, a: SecretValue, b: SecretValue) -> SecretValue:
        """Beaver multiplication: one triple, one round of two openings."""
        self._check_ownership(a, b)
        triple = self.dealer.triple()
        self.counters.triples_consumed += 1
        d_shares = {
            pid: Share(pid, self.field.sub(a.shares[pid].y, triple.a[pid].y))
            for pid in self.party_ids
        }
        e_shares = {
            pid: Share(pid, self.field.sub(b.shares[pid].y, triple.b[pid].y))
            for pid in self.party_ids
        }
        d = self._open_raw(d_shares)
        e = self._open_raw(e_shares)
        self.counters.rounds -= 1  # the two openings of one Beaver step batch
        de = self.field.mul(d, e)
        out = {}
        for pid in self.party_ids:
            y = triple.c[pid].y
            y = self.field.add(y, self.field.mul(d, triple.b[pid].y))
            y = self.field.add(y, self.field.mul(e, triple.a[pid].y))
            y = self.field.add(y, de)
            out[pid] = Share(pid, y)
        self.counters.multiplications += 1
        return self._wrap(out)

    # ------------------------------------------------------------ comparison

    def less_than(self, a: SecretValue, b: SecretValue) -> SecretValue:
        """Shared bit [a < b] for signed values of at most ``bit_width`` bits.

        Protocol (MP-SPDZ edaBit style): shift d = a - b + 2^k into the
        non-negative range, mask with a random (k+1+40)-bit edaBit r, open
        e = d + r, then evaluate the public-vs-shared bitwise comparison
        [r > e - 2^k] on r's shared bits.
        """
        self._check_ownership(a, b)
        k = self.bit_width
        m = k + 1 + STATISTICAL_SECURITY_BITS
        eda = self.dealer.edabit(m)
        self.counters.edabits_consumed += 1
        d = self.add_public(self.sub(a, b), 1 << k)
        masked = self.add(d, self.input_shares(eda.value))
        e = self._open_raw(masked.shares)
        threshold_value = e - (1 << k)
        result = self._bitwise_public_less_than(threshold_value, eda)
        self.counters.comparisons += 1
        return result

    def _bitwise_public_less_than(self, public_value: int, eda: EdaBit) -> SecretValue:
        """Shared bit [public_value < r] for bit-shared r of eda.bit_length bits."""
        m = eda.bit_length
        if public_value < 0:
            return self.constant(1)
        if public_value >= (1 << m):
            return self.constant(0)
        bits_public = [(public_value >> i) & 1 for i in range(m)]
        shared_bits = [self.input_shares(eda.bits[i]) for i in range(m)]
        # From MSB down: result accumulates (prefix of equal bits) * (E_i=0, r_i=1).
        result = self.constant(0)
        prefix_eq = self.constant(1)
        for i in reversed(range(m)):
            r_i = shared_bits[i]
            if bits_public[i] == 1:
                eq_i = r_i
                lt_i = self.constant(0)
            else:
                eq_i = self.sub(self.constant(1), r_i)
                lt_i = r_i
            contribution = self.mul(prefix_eq, lt_i) if bits_public[i] == 0 else self.constant(0)
            result = self.add(result, contribution)
            prefix_eq = self.mul(prefix_eq, eq_i)
        return result

    def greater_than(self, a: SecretValue, b: SecretValue) -> SecretValue:
        return self.less_than(b, a)

    # ------------------------------------------------------------- selection

    def select(self, bit: SecretValue, if_true: SecretValue, if_false: SecretValue) -> SecretValue:
        """Oblivious choice: bit*(if_true - if_false) + if_false."""
        self._check_ownership(bit, if_true, if_false)
        diff = self.sub(if_true, if_false)
        return self.add(self.mul(bit, diff), if_false)

    def argmax(self, values: Sequence[SecretValue]) -> SecretValue:
        """Shared index of the maximum value (first maximum wins ties)."""
        if not values:
            raise ValueError("argmax of an empty sequence")
        best_value = values[0]
        best_index = self.constant(0)
        for i, v in enumerate(values[1:], start=1):
            is_greater = self.greater_than(v, best_value)
            best_value = self.select(is_greater, v, best_value)
            best_index = self.select(is_greater, self.constant(i), best_index)
        return best_index

    def maximum(self, values: Sequence[SecretValue]) -> SecretValue:
        if not values:
            raise ValueError("max of an empty sequence")
        best = values[0]
        for v in values[1:]:
            is_greater = self.greater_than(v, best)
            best = self.select(is_greater, v, best)
        return best

    # ----------------------------------------------------------------- noise

    def noise(self, sample: int) -> SecretValue:
        """Adopt a jointly generated noise sample as a shared value.

        The sample is produced by the committee's noise sub-protocol (see
        ``mpc.protocols`` for the real distributed-Laplace construction);
        the dealer shares it so no single party ever sees it.
        """
        return self._wrap(self.dealer.noise_share(sample))

    # --------------------------------------------------------------- testing

    def corrupt_share(self, value: SecretValue, party_id: int, delta: int = 1) -> None:
        """Test hook: a malicious party perturbs its share of ``value``."""
        self._check_ownership(value)
        old = value.shares[party_id]
        value.shares[party_id] = Share(party_id, self.field.add(old.y, delta))
