"""Honest-majority committee MPC: engine, offline dealer, and protocols."""

from .engine import CheatingDetected, CostCounters, MPCEngine, SecretValue
from .protocols import (
    FIXPOINT_SCALE,
    from_fixpoint,
    noisy_argmax,
    rank_search,
    shared_gumbel_noise,
    shared_laplace_noise,
    to_fixpoint,
)

__all__ = [
    "MPCEngine",
    "SecretValue",
    "CostCounters",
    "CheatingDetected",
    "FIXPOINT_SCALE",
    "to_fixpoint",
    "from_fixpoint",
    "shared_laplace_noise",
    "shared_gumbel_noise",
    "noisy_argmax",
    "rank_search",
]
