"""Higher-level committee protocols built on the MPC engine.

These are the sub-protocols Arboretum's committee vignettes actually run:
joint noise generation (Laplace via the exact gamma-difference
decomposition, Gumbel via the dealer abstraction), noisy argmax for the
Gumbel instantiation of the exponential mechanism (Fig 4, right), and the
prefix-sum rank search used by the median query.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from .engine import MPCEngine, SecretValue

#: Fixpoint scaling: 16 fractional bits, as in the paper's MP-SPDZ
#: configuration (§6).
FIXPOINT_FRACTION_BITS = 16
FIXPOINT_SCALE = 1 << FIXPOINT_FRACTION_BITS


def to_fixpoint(x: float) -> int:
    """Encode a real number as a fixpoint integer (round to nearest)."""
    return int(round(x * FIXPOINT_SCALE))


def from_fixpoint(v: int) -> float:
    return v / FIXPOINT_SCALE


def laplace_contributions(scale: float, num_contributors: int, rng: random.Random) -> List[float]:
    """Per-party noise contributions whose sum is exactly Laplace(scale).

    Uses the infinite divisibility of the Laplace distribution:
    Lap(b) = Σ_{i=1..n} (G_i - H_i) with G_i, H_i ~ Gamma(1/n, b) i.i.d.
    [Dwork et al., "Our Data, Ourselves"]. Any single honest contributor
    keeps the total unpredictable to the rest of the committee.
    """
    if num_contributors < 1:
        raise ValueError("need at least one contributor")
    shape = 1.0 / num_contributors
    return [
        rng.gammavariate(shape, scale) - rng.gammavariate(shape, scale)
        for _ in range(num_contributors)
    ]


def shared_laplace_noise(
    engine: MPCEngine,
    scale: float,
    rng: random.Random,
    contributors: Optional[int] = None,
) -> SecretValue:
    """Jointly generate shared Laplace(scale) noise, in fixpoint encoding.

    Every committee member inputs a gamma-difference contribution; the sum
    of the shares is a sharing of a genuine Laplace sample that no party
    has seen in the clear. ``contributors`` pins the contribution count to
    the *planned* committee size: under churn a committee may run with
    fewer live members, and the recovery runtime regenerates the missing
    contributions so the noise distribution (and, for a fixed seed, the
    sample itself) is independent of how many members actually survived.
    """
    count = contributors if contributors is not None else engine.num_parties
    contributions = laplace_contributions(scale, count, rng)
    shares = [engine.input_value(to_fixpoint(c)) for c in contributions]
    return engine.sum_values(shares)


def gumbel_sample(scale: float, rng: random.Random) -> float:
    """One Gumbel(scale) sample via inverse CDF."""
    if scale <= 0:
        raise ValueError("Gumbel scale must be positive")
    u = rng.random()
    while u <= 0.0:
        u = rng.random()
    return -scale * math.log(-math.log(u))


def shared_gumbel_noise(engine: MPCEngine, scale: float, rng: random.Random) -> SecretValue:
    """Shared Gumbel(scale) noise in fixpoint encoding.

    Gumbel is not conveniently infinitely divisible, so the sample comes
    from the engine's joint noise sub-protocol (dealer abstraction, see
    ``mpc.beaver.OfflineDealer.noise_share``); the cost model charges for
    the real MPC sampling circuit.
    """
    return engine.noise(to_fixpoint(gumbel_sample(scale, rng)))


def noisy_argmax(
    engine: MPCEngine,
    scores: Sequence[SecretValue],
    noise_scale: float,
    rng: random.Random,
) -> int:
    """Gumbel-noise exponential mechanism: argmax_i (s_i + Gumbel(scale)).

    ``scores`` must already be in fixpoint encoding. The returned index is
    opened (declassified), which is exactly what the mechanism releases.
    """
    noised = [
        engine.add(s, shared_gumbel_noise(engine, noise_scale, rng)) for s in scores
    ]
    index = engine.argmax(noised)
    return engine.open(index)


def noisy_max(
    engine: MPCEngine,
    scores: Sequence[SecretValue],
    noise_scale: float,
    rng: random.Random,
) -> Tuple[int, int]:
    """Return (argmax index, noised max value) — used by the gap query."""
    noised = [
        engine.add(s, shared_gumbel_noise(engine, noise_scale, rng)) for s in scores
    ]
    best_value = engine.maximum(noised)
    index = engine.argmax(noised)
    return engine.open(index), engine.open(best_value)


def prefix_sums(engine: MPCEngine, values: Sequence[SecretValue]) -> List[SecretValue]:
    """Running sums of a shared vector (local, no communication)."""
    out: List[SecretValue] = []
    acc = engine.constant(0)
    for v in values:
        acc = engine.add(acc, v)
        out.append(acc)
    return out


def rank_search(
    engine: MPCEngine,
    histogram: Sequence[SecretValue],
    rank: int,
) -> SecretValue:
    """Index of the histogram bin where the cumulative count reaches ``rank``.

    Because prefix sums are non-decreasing, the bin index equals the number
    of prefixes strictly below the rank: Σ_i [cum_i < rank]. This is the
    core of the median/quantile query (rank = ⌈N/2⌉ for the median), using
    one comparison per bin and no oblivious selects.
    """
    if rank < 1:
        raise ValueError("rank must be >= 1")
    cums = prefix_sums(engine, histogram)
    threshold = engine.constant(rank)
    index = engine.constant(0)
    for cum in cums:
        below = engine.less_than(cum, threshold)
        index = engine.add(index, below)
    return index
