"""Secrecy of the sample (§2.1, §6).

Sampling a φ-fraction of the participants before running an ε-DP query
amplifies the guarantee to ln(1 + φ(e^ε − 1)) — *provided nobody can see
who was sampled*. Arboretum implements this obliviously with ciphertext
bins: each participant places its encrypted input into a uniformly random
bin out of b; a committee samples a secret window of x bins and decrypts
only the sum over that window. Participants cannot tell whether they were
sampled, and the committee never learns which bins participants chose.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence


def amplified_epsilon(epsilon: float, phi: float) -> float:
    """Privacy amplification by subsampling: ln(1 + φ(e^ε − 1))."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < phi <= 1.0:
        raise ValueError("sampling fraction must be in (0, 1]")
    return math.log(1.0 + phi * (math.exp(epsilon) - 1.0))


def required_phi(target_epsilon: float, mechanism_epsilon: float) -> float:
    """The sampling fraction that turns mechanism ε into the target ε."""
    if target_epsilon >= mechanism_epsilon:
        return 1.0
    return (math.exp(target_epsilon) - 1.0) / (math.exp(mechanism_epsilon) - 1.0)


@dataclass(frozen=True)
class BinSamplingPlan:
    """Parameters for the oblivious bin-sampling protocol (§6).

    ``num_bins`` b is the number of slot groups in a standard ciphertext;
    ``window`` x is the number of consecutive (mod b) bins the committee
    decrypts, so the realized sampling fraction is x/b.
    """

    num_bins: int
    window: int

    def __post_init__(self):
        if self.num_bins < 1:
            raise ValueError("need at least one bin")
        if not 1 <= self.window <= self.num_bins:
            raise ValueError("window must be between 1 and num_bins")

    @property
    def fraction(self) -> float:
        return self.window / self.num_bins

    @classmethod
    def for_fraction(cls, phi: float, num_bins: int) -> "BinSamplingPlan":
        """Closest bin plan for a desired sampling fraction x/b ≈ φ."""
        window = max(1, min(num_bins, round(phi * num_bins)))
        return cls(num_bins, window)

    def choose_participant_bin(self, rng: random.Random) -> int:
        """Each device picks its bin uniformly and independently."""
        return rng.randrange(self.num_bins)

    def choose_committee_offset(self, rng: random.Random) -> int:
        """The committee's secret window start j, sampled uniformly."""
        return rng.randrange(self.num_bins)

    def sampled_bins(self, offset: int) -> List[int]:
        """The bins [j, j + x) modulo b that the committee will include."""
        return [(offset + i) % self.num_bins for i in range(self.window)]

    def selection_mask(self, offset: int) -> List[int]:
        """Per-bin 0/1 mask — multiplied into the aggregate before summing,
        so bins outside the window contribute zero (the §6 construction)."""
        mask = [0] * self.num_bins
        for b in self.sampled_bins(offset):
            mask[b] = 1
        return mask

    def is_sampled(self, participant_bin: int, offset: int) -> bool:
        delta = (participant_bin - offset) % self.num_bins
        return delta < self.window


def apply_mask(binned_counts: Sequence[Sequence[int]], mask: Sequence[int]) -> List[int]:
    """Sum per-bin count vectors over the masked window.

    ``binned_counts[b]`` is the aggregate count vector for bin b (what the
    committee holds after homomorphic summation); the result is the sampled
    aggregate the query runs on.
    """
    if not binned_counts:
        raise ValueError("no bins to sample from")
    width = len(binned_counts[0])
    out = [0] * width
    for b, counts in enumerate(binned_counts):
        if mask[b]:
            for i, c in enumerate(counts):
                out[i] += c
    return out
