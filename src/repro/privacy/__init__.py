"""Differential privacy: mechanisms, certification, budget, sampling."""

from .accountant import BudgetExceeded, PrivacyAccountant, PrivacyCost
from .certify import Certificate, CertificationError, Sensitivity, certify
from .mechanisms import (
    exponential_mechanism_expo,
    exponential_mechanism_gumbel,
    laplace_mechanism,
    laplace_sample,
    gumbel_sample,
    noisy_max_with_gap,
    top_k_oneshot,
    top_k_pay_what_you_get,
)
from .sampling import BinSamplingPlan, amplified_epsilon

__all__ = [
    "PrivacyAccountant",
    "PrivacyCost",
    "BudgetExceeded",
    "Certificate",
    "CertificationError",
    "Sensitivity",
    "certify",
    "laplace_sample",
    "laplace_mechanism",
    "gumbel_sample",
    "exponential_mechanism_expo",
    "exponential_mechanism_gumbel",
    "top_k_pay_what_you_get",
    "top_k_oneshot",
    "noisy_max_with_gap",
    "amplified_epsilon",
    "BinSamplingPlan",
]
