"""Differential-privacy certification (§4.2).

Before planning, Arboretum attempts to certify that the submitted query is
differentially private and to determine a sensitivity bound, adopting the
approach of Fuzzi: conservative taint tracking from ``db`` (covering both
explicit and implicit flows) plus sensitivity arithmetic, with the DP
mechanisms (``laplace``, ``em``) acting as the only sanctioned release
points. ``output`` of a value that is still tainted and has not passed
through a mechanism is rejected.

The certificate records the total (ε, δ) cost of the query — which the
key-generation committee later checks against the privacy budget (§5.2) —
and the sensitivity bound of each mechanism application, which the planner
needs to size the noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Program,
    Stmt,
    UnOp,
    Var,
    DB_NAME,
    walk_statements,
)
from ..analysis.types import QueryEnvironment, TypeChecker, infer_types
from .accountant import PrivacyCost
from .sampling import amplified_epsilon

#: Finite-precision allowance: cutting noise tails to the representable
#: range adds a small delta per mechanism invocation (§6).
FINITE_PRECISION_DELTA = 2.0 ** -40

_UNROLL_LIMIT = 64


class CertificationError(Exception):
    """Raised when a query cannot be certified as differentially private."""


@dataclass(frozen=True)
class Sensitivity:
    """How much one participant's row can move a value (L1 and L∞)."""

    l1: float
    linf: float

    @classmethod
    def unbounded(cls) -> "Sensitivity":
        return cls(math.inf, math.inf)

    def is_finite(self) -> bool:
        return math.isfinite(self.l1) and math.isfinite(self.linf)

    def scaled(self, k: float) -> "Sensitivity":
        k = abs(k)
        return Sensitivity(self.l1 * k, self.linf * k)

    def __add__(self, other: "Sensitivity") -> "Sensitivity":
        return Sensitivity(self.l1 + other.l1, self.linf + other.linf)

    def join(self, other: "Sensitivity") -> "Sensitivity":
        return Sensitivity(max(self.l1, other.l1), max(self.linf, other.linf))


@dataclass(frozen=True)
class Taint:
    """Privacy label of a value.

    ``sensitive`` marks derivation from db; a sensitive value carries the
    sensitivity bound and, if it flowed through ``sampleUniform``, the
    sampling fraction phi (for amplification at the mechanism).
    ``released`` marks mechanism outputs, which are safe to declassify.
    """

    sensitive: bool = False
    released: bool = False
    sensitivity: Sensitivity = field(default_factory=lambda: Sensitivity(0.0, 0.0))
    sample_phi: Optional[float] = None

    @classmethod
    def public(cls) -> "Taint":
        return cls()

    def join(self, other: "Taint") -> "Taint":
        phi = None
        if self.sample_phi is not None or other.sample_phi is not None:
            phi = max(self.sample_phi or 0.0, other.sample_phi or 0.0) or None
        sensitive = self.sensitive or other.sensitive
        # A joined value is released iff every *sensitive* constituent has
        # been released; public constituents do not revoke release.
        released = sensitive and all(
            t.released for t in (self, other) if t.sensitive
        )
        return Taint(
            sensitive=sensitive,
            released=released,
            sensitivity=self.sensitivity.join(other.sensitivity),
            sample_phi=phi,
        )


@dataclass(frozen=True)
class MechanismUse:
    """One mechanism application found during certification."""

    mechanism: str  # "laplace" or "em"
    line: int
    sensitivity: Sensitivity
    epsilon: float
    delta: float
    k: int = 1
    sample_phi: Optional[float] = None


@dataclass
class Certificate:
    """The result of successful certification."""

    cost: PrivacyCost
    mechanisms: List[MechanismUse]
    checker: TypeChecker

    @property
    def epsilon(self) -> float:
        return self.cost.epsilon

    @property
    def delta(self) -> float:
        return self.cost.delta


class Certifier:
    """Abstract interpreter computing taints and the total privacy cost."""

    def __init__(self, env: QueryEnvironment, checker: TypeChecker):
        self.env = env
        self.checker = checker
        self.taints: Dict[str, Taint] = {DB_NAME: Taint(True, False, self._db_sensitivity())}
        self.mechanisms: List[MechanismUse] = []
        self._multiplier = 1  # loop multiplicity for widened loops
        self._outputs = 0

    def _db_sensitivity(self) -> Sensitivity:
        elem = self.env.db_element.interval
        width = elem.width
        c = self.env.row_width
        if self.env.row_encoding == "one_hot":
            # One-hot rows (enforced by the input ZKPs) can change the
            # aggregate by at most 2 in L1 and 1 in L∞.
            return Sensitivity(min(2.0, float(c)), 1.0)
        l1 = width * c
        if self.env.row_l1 is not None:
            # A ZKP-enforced L1 promise (e.g. sketch rows set exactly k
            # cells of value 1): a changed row moves the aggregate by at
            # most 2x the bound in L1 (old row removed, new row added).
            l1 = min(l1, 2.0 * self.env.row_l1)
        return Sensitivity(l1, width)

    # -------------------------------------------------------------- program

    def certify(self, program: Program) -> Certificate:
        self._check_block(program.statements)
        if self._outputs == 0:
            raise CertificationError("query produces no output")
        total = PrivacyCost(0.0, 0.0)
        for use in self.mechanisms:
            total = total + PrivacyCost(use.epsilon, use.delta)
        return Certificate(total, list(self.mechanisms), self.checker)

    def _check_block(self, statements: List[Stmt]) -> None:
        for stmt in statements:
            self._check_statement(stmt)

    def _check_statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.taints[stmt.var] = self._taint(stmt.value)
        elif isinstance(stmt, IndexAssign):
            incoming = self._taint(stmt.value).join(self._taint(stmt.index))
            existing = self.taints.get(stmt.var, Taint.public())
            self.taints[stmt.var] = existing.join(incoming)
        elif isinstance(stmt, ExprStmt):
            self._taint(stmt.expr)
        elif isinstance(stmt, For):
            self._check_for(stmt)
        elif isinstance(stmt, If):
            self._check_if(stmt)
        else:
            raise CertificationError(f"unknown statement {type(stmt).__name__}")

    def _trip_count(self, stmt: For) -> int:
        start = self.checker.expr_types.get(id(stmt.start))
        end = self.checker.expr_types.get(id(stmt.end))
        if start is None or end is None:
            return 1
        return max(0, int(math.ceil(end.interval.hi)) - int(math.floor(start.interval.lo)) + 1)

    def _check_for(self, stmt: For) -> None:
        self._taint(stmt.start)
        self._taint(stmt.end)
        self.taints[stmt.var] = Taint.public()
        trips = self._trip_count(stmt)
        if trips <= _UNROLL_LIMIT:
            for _ in range(trips):
                self._check_block(stmt.body)
            return
        # Widened loop: one abstract pass, mechanism charges scaled by the
        # trip count (a mechanism inside a 10^6-iteration loop costs 10^6 ε).
        self._multiplier *= trips
        try:
            self._check_block(stmt.body)
        finally:
            self._multiplier //= trips

    def _check_if(self, stmt: If) -> None:
        cond = self._taint(stmt.cond)
        before = dict(self.taints)
        self._check_block(stmt.then_body)
        after_then = self.taints
        self.taints = dict(before)
        self._check_block(stmt.else_body)
        after_else = self.taints
        merged: Dict[str, Taint] = {}
        for name in set(after_then) | set(after_else):
            a = after_then.get(name, before.get(name, Taint.public()))
            b = after_else.get(name, before.get(name, Taint.public()))
            merged[name] = a.join(b)
        if cond.sensitive and not cond.released:
            # Implicit flow: branching on a secret taints everything either
            # branch writes, with unbounded sensitivity (Fuzzi's conservative
            # rule).
            written = {
                s.var
                for s in walk_statements(stmt.then_body + stmt.else_body)
                if isinstance(s, (Assign, IndexAssign))
            }
            for name in written:
                merged[name] = Taint(True, False, Sensitivity.unbounded())
        self.taints = merged

    # ----------------------------------------------------------- expressions

    def _effective(self, taint: Taint) -> Taint:
        """Released values behave like public data in further computation:
        arbitrary postprocessing of a DP output stays DP."""
        if taint.released:
            return Taint.public()
        return taint

    def _taint(self, expr: Expr) -> Taint:
        if isinstance(expr, (IntLit, FloatLit, BoolLit)):
            return Taint.public()
        if isinstance(expr, Var):
            return self.taints.get(expr.name, Taint.public())
        if isinstance(expr, Index):
            base = self._taint(expr.base)
            index = self._taint(expr.index)
            if base.sensitive:
                elem = Sensitivity(base.sensitivity.linf, base.sensitivity.linf)
                base = replace(base, sensitivity=elem)
            return base.join(index)
        if isinstance(expr, UnOp):
            return self._taint(expr.operand)
        if isinstance(expr, BinOp):
            return self._taint_binop(expr)
        if isinstance(expr, Call):
            return self._taint_call(expr)
        raise CertificationError(f"unknown expression {type(expr).__name__}")

    def _public_magnitude(self, expr: Expr) -> float:
        vt = self.checker.expr_types.get(id(expr))
        if vt is None:
            return math.inf
        return vt.interval.magnitude

    def _taint_binop(self, expr: BinOp) -> Taint:
        left = self._effective(self._taint(expr.left))
        right = self._effective(self._taint(expr.right))
        if not left.sensitive and not right.sensitive:
            return self._taint(expr.left).join(self._taint(expr.right))
        op = expr.op
        if op in ("+", "-"):
            sens = left.sensitivity + right.sensitivity
            return replace(left.join(right), sensitive=True, released=False, sensitivity=sens)
        if op == "*":
            if left.sensitive and right.sensitive:
                sens = Sensitivity.unbounded()
            elif left.sensitive:
                sens = left.sensitivity.scaled(self._public_magnitude(expr.right))
            else:
                sens = right.sensitivity.scaled(self._public_magnitude(expr.left))
            return replace(left.join(right), sensitive=True, released=False, sensitivity=sens)
        if op == "/":
            if right.sensitive:
                sens = Sensitivity.unbounded()
            else:
                magnitude = self._public_magnitude(expr.right)
                factor = math.inf if magnitude == 0 else 1.0  # conservative
                vt = self.checker.expr_types.get(id(expr.right))
                if vt is not None and not vt.interval.contains(0.0):
                    low = min(abs(vt.interval.lo), abs(vt.interval.hi))
                    factor = 1.0 / low
                sens = left.sensitivity.scaled(factor)
            return replace(left.join(right), sensitive=True, released=False, sensitivity=sens)
        # Comparisons and logical operators on secrets: 1-bit output, but
        # sensitivity in the DP sense is unbounded (a single row can flip it).
        joined = left.join(right)
        return replace(joined, sensitive=True, released=False, sensitivity=Sensitivity.unbounded())

    # -------------------------------------------------------------- builtins

    def _taint_call(self, expr: Call) -> Taint:
        func = expr.func
        if func == "laplace":
            return self._mechanism_laplace(expr)
        if func == "em":
            return self._mechanism_em(expr)
        if func == "declassify":
            arg = self._taint(expr.args[0])
            if arg.sensitive and not arg.released:
                raise CertificationError(
                    f"line {expr.line}: declassify of a value that has not "
                    f"passed through a DP mechanism"
                )
            return Taint.public()
        if func == "output":
            arg = self._taint(expr.args[0])
            if arg.sensitive and not arg.released:
                raise CertificationError(
                    f"line {expr.line}: output would leak raw participant "
                    f"data; apply laplace() or em() first"
                )
            self._outputs += 1
            return arg
        if func == "sampleUniform":
            base = self._taint(expr.args[0])
            phi_type = self.checker.expr_types.get(id(expr.args[1]))
            phi = phi_type.interval.hi if phi_type is not None else 1.0
            return replace(base, sample_phi=phi)
        if func == "sum":
            arg = self._taint(expr.args[0])
            if arg.sensitive:
                # Summing a vector: the change is bounded by the L1 bound.
                sens = Sensitivity(arg.sensitivity.l1, arg.sensitivity.l1)
                vt = self.checker.expr_types.get(id(expr.args[0]))
                if vt is not None and len(vt.shape) == 2:
                    sens = arg.sensitivity  # per-element bound carries over
                return replace(arg, sensitivity=sens)
            return arg
        if func in ("max", "argmax"):
            arg = self._taint(expr.args[0])
            if arg.sensitive:
                sens = Sensitivity(arg.sensitivity.linf, arg.sensitivity.linf)
                return replace(arg, sensitivity=sens)
            return arg
        if func == "clip":
            arg = self._taint(expr.args[0])
            if arg.sensitive:
                lo = self.checker.expr_types.get(id(expr.args[1]))
                hi = self.checker.expr_types.get(id(expr.args[2]))
                if lo is not None and hi is not None:
                    width = hi.interval.hi - lo.interval.lo
                    sens = Sensitivity(
                        min(arg.sensitivity.l1, max(width, 0.0)),
                        min(arg.sensitivity.linf, max(width, 0.0)),
                    )
                    return replace(arg, sensitivity=sens)
            return arg
        if func == "len":
            # Array lengths are public metadata (shapes are static).
            for arg in expr.args:
                self._taint(arg)
            return Taint.public()
        # Pointwise numeric builtins: nonlinear, so sensitivity is lost but
        # taint propagates.
        taint = Taint.public()
        for arg in expr.args:
            taint = taint.join(self._taint(arg))
        if taint.sensitive and func in ("exp", "log", "sqrt", "random"):
            taint = replace(taint, sensitivity=Sensitivity.unbounded(), released=False)
        if func == "abs" and taint.sensitive:
            pass  # |x| is 1-Lipschitz: sensitivity carries over unchanged
        return taint

    def _mechanism_epsilon(self, base_epsilon: float, phi: Optional[float]) -> float:
        if phi is None or phi >= 1.0:
            return base_epsilon
        return amplified_epsilon(base_epsilon, phi)

    def _mechanism_laplace(self, expr: Call) -> Taint:
        if len(expr.args) != 2:
            raise CertificationError(f"line {expr.line}: laplace expects (value, scale)")
        value = self._taint(expr.args[0])
        self._taint(expr.args[1])
        if not value.sensitive:
            return value  # noising public data is a no-op privacy-wise
        if not math.isfinite(value.sensitivity.l1):
            raise CertificationError(
                f"line {expr.line}: laplace applied to a value with unbounded "
                f"sensitivity; clip() it first"
            )
        scale_type = self.checker.expr_types.get(id(expr.args[1]))
        if scale_type is None or scale_type.interval.lo <= 0:
            raise CertificationError(f"line {expr.line}: laplace scale must be positive")
        per_use = value.sensitivity.l1 / scale_type.interval.lo
        epsilon = self._mechanism_epsilon(per_use, value.sample_phi) * self._multiplier
        self.mechanisms.append(
            MechanismUse(
                "laplace",
                expr.line,
                value.sensitivity,
                epsilon,
                FINITE_PRECISION_DELTA * self._multiplier,
                sample_phi=value.sample_phi,
            )
        )
        return Taint(sensitive=True, released=True, sensitivity=value.sensitivity)

    def _mechanism_em(self, expr: Call) -> Taint:
        if len(expr.args) not in (1, 2):
            raise CertificationError(f"line {expr.line}: em expects (scores[, k])")
        scores = self._taint(expr.args[0])
        if scores.sensitive and not math.isfinite(scores.sensitivity.linf):
            raise CertificationError(
                f"line {expr.line}: em applied to scores with unbounded "
                f"sensitivity; clip() them first"
            )
        k = 1
        if len(expr.args) == 2:
            kt = self.checker.expr_types.get(id(expr.args[1]))
            if kt is None or kt.interval.lo != kt.interval.hi:
                raise CertificationError(f"line {expr.line}: em's k must be a constant")
            k = int(kt.interval.hi)
            self._taint(expr.args[1])
        if not scores.sensitive:
            return scores
        # One-shot top-k costs sqrt(k)*eps [29]; a single draw costs eps.
        per_use = self.env.epsilon * (math.sqrt(k) if k > 1 else 1.0)
        epsilon = self._mechanism_epsilon(per_use, scores.sample_phi) * self._multiplier
        self.mechanisms.append(
            MechanismUse(
                "em",
                expr.line,
                scores.sensitivity,
                epsilon,
                FINITE_PRECISION_DELTA * self._multiplier,
                k=k,
                sample_phi=scores.sample_phi,
            )
        )
        return Taint(sensitive=True, released=True, sensitivity=scores.sensitivity)


def certify(program: Program, env: QueryEnvironment) -> Certificate:
    """Type-check and certify a program; raises on privacy violations."""
    checker = infer_types(program, env)
    return Certifier(env, checker).certify(program)


def manual_certificate(
    program: Program,
    env: QueryEnvironment,
    epsilon: float,
    delta: float = 0.0,
    sensitivity: Optional[Sensitivity] = None,
) -> Certificate:
    """A CertiPriv-style analyst-supplied certificate (§4.2).

    When automatic certification fails — e.g. for a proof pattern Fuzzi's
    conservative rules cannot follow — the analyst may supply their own
    privacy proof and assert its (ε, δ) cost and sensitivity bound. The
    program is still *type-checked* (the planner needs ranges either way),
    but the taint analysis is skipped; responsibility for the privacy claim
    rests with the supplied proof, exactly as with CertiPriv [10].
    """
    if epsilon <= 0:
        raise ValueError("a certificate must claim a positive epsilon")
    if delta < 0:
        raise ValueError("delta cannot be negative")
    checker = infer_types(program, env)
    sens = sensitivity or Sensitivity(env.sensitivity, env.sensitivity)
    use = MechanismUse(
        mechanism="manual",
        line=0,
        sensitivity=sens,
        epsilon=epsilon,
        delta=delta,
    )
    return Certificate(PrivacyCost(epsilon, delta), [use], checker)
