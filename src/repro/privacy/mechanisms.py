"""Differential-privacy mechanisms (§2.1).

Implements the mechanisms Arboretum's high-level operators expand into:

* the Laplace mechanism for numerical queries;
* the exponential mechanism for categorical queries, in both of the
  instantiations of Fig 4 — the textbook exponentiation form (normalized to
  a finite range, as the paper does for finite-precision arithmetic) and
  the Gumbel-noise argmax form — plus the base-2 variant of Ilvento that
  the MPC programs use (§6);
* top-k selection à la Durfee–Rogers: either k independent Gumbel draws for
  (k·ε)-DP or one-shot noise with the k highest scores for (√k·ε)-DP;
* report-noisy-max with gap (the "free gap" information of Ding et al.).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

#: Normalization width for the exponentiation-based EM (Fig 4 left): scores
#: are shifted so the top score maps to exp(L); smaller scores than top-L
#: are dropped. 16 bits of representable exponent range.
EM_EXPONENT_RANGE = 11


def laplace_sample(scale: float, rng: random.Random) -> float:
    """One Laplace(0, scale) sample via inverse CDF."""
    if scale <= 0:
        raise ValueError("Laplace scale must be positive")
    u = rng.random() - 0.5
    return -scale * math.copysign(math.log(1.0 - 2.0 * abs(u)), u)


def laplace_mechanism(value: float, sensitivity: float, epsilon: float, rng: random.Random) -> float:
    """value + Lap(sensitivity/epsilon): (epsilon, 0)-DP for s-sensitive f."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    return value + laplace_sample(sensitivity / epsilon, rng)


def gumbel_sample(scale: float, rng: random.Random) -> float:
    """One Gumbel(0, scale) sample via inverse CDF."""
    if scale <= 0:
        raise ValueError("Gumbel scale must be positive")
    u = rng.random()
    while u <= 0.0:
        u = rng.random()
    return -scale * math.log(-math.log(u))


def exponential_mechanism_expo(
    scores: Sequence[float],
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
    base: float = math.e,
) -> int:
    """Textbook exponential mechanism via explicit exponentiation (Fig 4 left).

    Returns index i with probability proportional to base^(ε·s_i/(2Δ)).
    As in the paper's instantiation, scores are normalized to the finite
    range [1, base^L] with L = EM_EXPONENT_RANGE and smaller scores dropped,
    which turns the guarantee into (ε, δ)-DP for a negligible δ. Setting
    ``base=2`` gives the Ilvento base-2 variant used in MPC (§6).
    """
    if not scores:
        raise ValueError("exponential mechanism needs at least one score")
    if epsilon <= 0 or sensitivity <= 0:
        raise ValueError("epsilon and sensitivity must be positive")
    rate = epsilon / (2.0 * sensitivity)  # weight_i ∝ e^(rate * s_i)
    # Normalize so the top score maps to base^L; anything whose weight would
    # fall below 1 (i.e. more than L base-units behind the top) is dropped.
    exponent_cap = EM_EXPONENT_RANGE * math.log(base)
    top = max(scores)
    cutoff = top - exponent_cap / rate
    weights: List[float] = []
    for s in scores:
        if s >= cutoff:
            weights.append(math.exp(rate * (s - cutoff)))
        else:
            weights.append(0.0)
    total = sum(weights)
    r = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if r < acc:
            return i
    return len(scores) - 1


def exponential_mechanism_gumbel(
    scores: Sequence[float],
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
) -> int:
    """Exponential mechanism via Gumbel noise + argmax (Fig 4 right).

    argmax_i (s_i + Gumbel(2Δ/ε)) is distributed identically to the
    exponential mechanism — the Gumbel-max trick.
    """
    if not scores:
        raise ValueError("exponential mechanism needs at least one score")
    if epsilon <= 0 or sensitivity <= 0:
        raise ValueError("epsilon and sensitivity must be positive")
    scale = 2.0 * sensitivity / epsilon
    noised = [s + gumbel_sample(scale, rng) for s in scores]
    return max(range(len(noised)), key=noised.__getitem__)


def top_k_pay_what_you_get(
    scores: Sequence[float],
    k: int,
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
) -> List[int]:
    """Top-k via k independent Gumbel draws: (k·ε, 0)-DP (§2.1)."""
    if not 1 <= k <= len(scores):
        raise ValueError("k must be between 1 and the number of candidates")
    remaining = list(range(len(scores)))
    chosen: List[int] = []
    for _ in range(k):
        sub_scores = [scores[i] for i in remaining]
        winner = exponential_mechanism_gumbel(sub_scores, sensitivity, epsilon, rng)
        chosen.append(remaining.pop(winner))
    return chosen


def top_k_oneshot(
    scores: Sequence[float],
    k: int,
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
) -> List[int]:
    """Top-k by noising once and releasing the k best: (√k·ε, 0)-DP [29]."""
    if not 1 <= k <= len(scores):
        raise ValueError("k must be between 1 and the number of candidates")
    scale = 2.0 * sensitivity / epsilon
    noised = [(s + gumbel_sample(scale, rng), i) for i, s in enumerate(scores)]
    noised.sort(reverse=True)
    return [i for _, i in noised[:k]]


def noisy_max_with_gap(
    scores: Sequence[float],
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
) -> Tuple[int, float]:
    """Report-noisy-max plus the noisy gap to the runner-up [28].

    The gap between the highest and second-highest noised scores is a free
    byproduct: releasing it alongside the argmax costs no extra privacy.
    """
    if len(scores) < 2:
        raise ValueError("gap mechanism needs at least two candidates")
    scale = 2.0 * sensitivity / epsilon
    noised = [s + gumbel_sample(scale, rng) for s in scores]
    order = sorted(range(len(noised)), key=noised.__getitem__, reverse=True)
    winner, runner_up = order[0], order[1]
    return winner, max(0.0, noised[winner] - noised[runner_up])


def quantile_rank(total: int, quantile: float) -> int:
    """The 1-based rank a quantile corresponds to (median: quantile=0.5)."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be strictly between 0 and 1")
    return max(1, min(total, int(math.ceil(total * quantile))))


def dp_median_from_histogram(
    histogram: Sequence[int],
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
    quantile: float = 0.5,
) -> int:
    """DP median/quantile over a histogram via the exponential mechanism.

    Uses the standard rank-distance quality score: q(bin) = -(distance of
    the bin's cumulative range from the target rank), which is 1-sensitive
    in the database [14]. Returns the selected bin index.
    """
    total = sum(histogram)
    if total <= 0:
        raise ValueError("histogram is empty")
    rank = quantile_rank(total, quantile)
    scores: List[float] = []
    below = 0
    for count in histogram:
        # Ranks covered by this bin: (below, below + count].
        if below < rank <= below + count:
            distance = 0
        elif rank <= below:
            distance = below - rank + 1
        else:
            distance = rank - (below + count)
        scores.append(-float(distance))
        below += count
    return exponential_mechanism_gumbel(scores, sensitivity, epsilon, rng)
