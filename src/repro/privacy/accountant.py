"""Privacy budget accounting (§5.2).

The key-generation committee checks, before authorizing a query, whether
the remaining balance in the analyst's privacy budget is sufficient; if
not, the query fails. The remaining balance travels inside the query
authorization certificate from one query's committee to the next.

Composition is basic/sequential: epsilons and deltas add. That is what the
paper's certificate mechanism needs — it carries a single scalar balance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Tuple


class BudgetExceeded(Exception):
    """Raised when a query would overdraw the privacy budget."""


@dataclass(frozen=True)
class PrivacyCost:
    """The (ε, δ) price of one query."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self):
        if self.epsilon < 0 or self.delta < 0:
            raise ValueError("privacy costs cannot be negative")

    def __add__(self, other: "PrivacyCost") -> "PrivacyCost":
        return PrivacyCost(self.epsilon + other.epsilon, self.delta + other.delta)


@dataclass
class PrivacyAccountant:
    """Tracks the global (ε, δ) budget across queries.

    ``charge`` is atomic: it either debits the full cost or raises
    BudgetExceeded and leaves the balance untouched, so a rejected query
    consumes nothing (the committee simply refuses to sign the certificate).

    All mutating entry points (and the check-then-debit sequence inside
    them) hold an internal re-entrant lock, so one accountant can back a
    multi-threaded serving layer: concurrent ``charge_once`` calls for the
    same label debit exactly once, and concurrent charges for distinct
    labels never interleave a stale ``can_afford`` check with the debit.
    """

    epsilon_budget: float
    delta_budget: float = 0.0
    spent: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    history: List[Tuple[str, PrivacyCost]] = field(default_factory=list)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def remaining(self) -> PrivacyCost:
        with self._lock:
            return PrivacyCost(
                max(0.0, self.epsilon_budget - self.spent.epsilon),
                max(0.0, self.delta_budget - self.spent.delta),
            )

    def can_afford(self, cost: PrivacyCost) -> bool:
        with self._lock:
            total = self.spent + cost
            return (
                total.epsilon <= self.epsilon_budget + 1e-12
                and total.delta <= self.delta_budget + 1e-15
            )

    def charge(self, cost: PrivacyCost, label: str = "query") -> None:
        with self._lock:
            if not self.can_afford(cost):
                remaining = self.remaining()
                raise BudgetExceeded(
                    f"query {label!r} needs (ε={cost.epsilon:g}, δ={cost.delta:g}) "
                    f"but only (ε={remaining.epsilon:g}, δ={remaining.delta:g}) remains"
                )
            self.spent = self.spent + cost
            self.history.append((label, cost))

    def snapshot(self) -> Tuple[PrivacyCost, PrivacyCost, List[Tuple[str, PrivacyCost]]]:
        """A consistent (spent, remaining, ledger-copy) triple.

        Taken under the lock so a concurrent charge cannot leave the
        three views describing different moments — the service layer's
        budget reports are built from this.
        """
        with self._lock:
            return self.spent, self.remaining(), list(self.history)

    def charged(self, label: str) -> bool:
        """Whether some charge was already debited under ``label``."""
        with self._lock:
            return any(entry == label for entry, _ in self.history)

    def charge_once(self, cost: PrivacyCost, label: str) -> bool:
        """Debit ``cost`` unless ``label`` was already charged.

        This is the replay-safe entry point for crash recovery: a resumed
        executor incarnation re-walks the keygen phase, and the budget must
        be debited exactly once per label no matter how many incarnations
        pass through it. Returns True if the debit happened now, False if
        the label had already paid. Atomicity matches ``charge``: on
        BudgetExceeded nothing is debited. The check-and-debit pair holds
        the accountant lock, so racing incarnations (or service worker
        threads) cannot both observe the label unpaid.
        """
        with self._lock:
            if self.charged(label):
                return False
            self.charge(cost, label)
            return True
