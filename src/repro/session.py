"""Analytics sessions: many queries against one deployment.

Arboretum is built for repeated use — the sortition block chains from
query to query (§5.1), the authorization certificate carries the remaining
privacy budget forward (§5.2), and the planner's cost model is shared.
:class:`AnalyticsSession` packages that lifecycle: it owns the accountant,
the (simulated) network, and a planner per environment, and exposes one
call per query.

    session = AnalyticsSession(network, epsilon_budget=4.0)
    winner = session.ask("aggr = sum(db); output(em(aggr));", categories=8)
    count = session.ask(COUNT_QUERY, categories=8)
    session.remaining_epsilon()   # what's left
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .analysis.types import QueryEnvironment
from .planner.costmodel import Constraints, CostModel, Goal
from .planner.search import Planner, PlanningResult
from .privacy.accountant import PrivacyAccountant
from .runtime.executor import QueryExecutor, QueryResult
from .runtime.network import FederatedNetwork


@dataclass
class SessionRecord:
    """One answered (or refused) query in the session's history."""

    name: str
    epsilon: float
    planning: PlanningResult
    result: Optional[QueryResult]


class AnalyticsSession:
    """A stateful, budget-enforcing interface over one deployment."""

    def __init__(
        self,
        network: FederatedNetwork,
        epsilon_budget: float,
        delta_budget: float = 1e-6,
        epsilon_per_query: float = 1.0,
        sensitivity: float = 1.0,
        committee_size: int = 4,
        key_prime_bits: int = 96,
        constraints: Optional[Constraints] = None,
        goal: Optional[Goal] = None,
        model: Optional[CostModel] = None,
        rng: Optional[random.Random] = None,
    ):
        self.network = network
        self.accountant = PrivacyAccountant(epsilon_budget, delta_budget)
        self.epsilon_per_query = epsilon_per_query
        self.sensitivity = sensitivity
        self.committee_size = committee_size
        self.key_prime_bits = key_prime_bits
        self.constraints = constraints
        self.goal = goal
        self.model = model
        self.rng = rng or random.Random()
        self.history: List[SessionRecord] = []
        self._planners: Dict[tuple, Planner] = {}

    # ------------------------------------------------------------- planning

    def _environment(
        self,
        categories: int,
        epsilon: Optional[float],
        sensitivity: Optional[float],
        row_encoding: str,
        value_range: Optional[tuple] = None,
    ) -> QueryEnvironment:
        from .analysis.ranges import Interval
        from .analysis.types import ValueType

        element = None
        if value_range is not None:
            element = ValueType("int", Interval(float(value_range[0]), float(value_range[1])))
        return QueryEnvironment(
            num_participants=len(self.network),
            row_width=categories,
            db_element=element,
            epsilon=epsilon if epsilon is not None else self.epsilon_per_query,
            sensitivity=sensitivity if sensitivity is not None else self.sensitivity,
            row_encoding=row_encoding,
        )

    def _planner(self, env: QueryEnvironment) -> Planner:
        key = (
            env.row_width,
            env.epsilon,
            env.sensitivity,
            env.row_encoding,
            env.db_element.interval.lo,
            env.db_element.interval.hi,
        )
        if key not in self._planners:
            self._planners[key] = Planner(
                env,
                model=self.model,
                constraints=self.constraints,
                goal=self.goal,
            )
        return self._planners[key]

    def plan(
        self,
        source: str,
        categories: int,
        name: str = "query",
        epsilon: Optional[float] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[tuple] = None,
    ) -> PlanningResult:
        """Certify and plan without executing (no budget is spent)."""
        env = self._environment(
            categories, epsilon, sensitivity, row_encoding, value_range
        )
        return self._planner(env).plan_source(source, name)

    # ------------------------------------------------------------ execution

    def ask(
        self,
        source: str,
        categories: int,
        name: str = "query",
        epsilon: Optional[float] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[tuple] = None,
    ) -> QueryResult:
        """Plan, budget-check, and execute one query.

        Raises :class:`repro.runtime.executor.QueryRejected` when the
        key-generation committee refuses (budget exhausted); a refused
        query spends nothing and is recorded with ``result=None``.
        """
        from .runtime.executor import QueryRejected

        planning = self.plan(
            source, categories, name, epsilon, sensitivity, row_encoding, value_range
        )
        executor = QueryExecutor(
            self.network,
            planning,
            committee_size=self.committee_size,
            key_prime_bits=self.key_prime_bits,
            rng=self.rng,
            accountant=self.accountant,
        )
        try:
            result = executor.run()
        except QueryRejected:
            self.history.append(
                SessionRecord(name, planning.certificate.epsilon, planning, None)
            )
            raise
        self.history.append(
            SessionRecord(name, planning.certificate.epsilon, planning, result)
        )
        return result

    # ------------------------------------------------------------ inspection

    def remaining_epsilon(self) -> float:
        return self.accountant.remaining().epsilon

    def spent_epsilon(self) -> float:
        return self.accountant.spent.epsilon

    def can_afford(self, source: str, categories: int, **kwargs) -> bool:
        """Would the keygen committee authorize this query right now?"""
        from .privacy.accountant import PrivacyCost

        planning = self.plan(source, categories, **kwargs)
        cost = PrivacyCost(planning.certificate.epsilon, planning.certificate.delta)
        return self.accountant.can_afford(cost)

    @property
    def queries_answered(self) -> int:
        return sum(1 for record in self.history if record.result is not None)
