"""Analytics sessions: many queries against one deployment.

Arboretum is built for repeated use — the sortition block chains from
query to query (§5.1), the authorization certificate carries the remaining
privacy budget forward (§5.2), and the planner's cost model is shared.
:class:`AnalyticsSession` packages that lifecycle: it owns the accountant,
the (simulated) network, and a planner per environment, and exposes one
call per query.

    session = AnalyticsSession(network, epsilon_budget=4.0)
    winner = session.ask("aggr = sum(db); output(em(aggr));", categories=8)
    count = session.ask(COUNT_QUERY, categories=8)
    session.remaining_epsilon()   # what's left
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .analysis.types import QueryEnvironment
from .planner.costmodel import Constraints, CostModel, Goal
from .planner.search import Planner, PlanningResult
from .privacy.accountant import PrivacyAccountant
from .runtime.executor import QueryExecutor, QueryResult
from .runtime.network import FederatedNetwork


@dataclass
class SessionRecord:
    """One answered (or refused) query in the session's history."""

    name: str
    epsilon: float
    planning: PlanningResult
    result: Optional[QueryResult]


@dataclass(frozen=True)
class BudgetLine:
    """One source's (label's) total debits in a budget report."""

    label: str
    epsilon: float
    delta: float
    charges: int


@dataclass(frozen=True)
class BudgetReport:
    """Structured per-source budget accounting for a session.

    ``by_label`` aggregates the accountant's ledger per charge label
    (one label per query, or per service submission), in first-charge
    order, so the service layer and the CLI can render per-tenant /
    per-query breakdowns without re-walking the raw history.
    """

    epsilon_budget: float
    delta_budget: float
    spent_epsilon: float
    spent_delta: float
    remaining_epsilon: float
    remaining_delta: float
    by_label: Tuple[BudgetLine, ...] = field(default_factory=tuple)

    def as_dict(self) -> Dict[str, object]:
        return {
            "epsilon_budget": self.epsilon_budget,
            "delta_budget": self.delta_budget,
            "spent_epsilon": self.spent_epsilon,
            "spent_delta": self.spent_delta,
            "remaining_epsilon": self.remaining_epsilon,
            "remaining_delta": self.remaining_delta,
            "by_label": [
                {
                    "label": line.label,
                    "epsilon": line.epsilon,
                    "delta": line.delta,
                    "charges": line.charges,
                }
                for line in self.by_label
            ],
        }


def budget_report_for(accountant: PrivacyAccountant) -> BudgetReport:
    """Aggregate an accountant's ledger into a :class:`BudgetReport`."""
    spent, remaining, history = accountant.snapshot()
    totals: Dict[str, List[float]] = {}
    order: List[str] = []
    for label, cost in history:
        if label not in totals:
            totals[label] = [0.0, 0.0, 0]
            order.append(label)
        totals[label][0] += cost.epsilon
        totals[label][1] += cost.delta
        totals[label][2] += 1
    return BudgetReport(
        epsilon_budget=accountant.epsilon_budget,
        delta_budget=accountant.delta_budget,
        spent_epsilon=spent.epsilon,
        spent_delta=spent.delta,
        remaining_epsilon=remaining.epsilon,
        remaining_delta=remaining.delta,
        by_label=tuple(
            BudgetLine(label, *totals[label][:2], charges=int(totals[label][2]))
            for label in order
        ),
    )


class AnalyticsSession:
    """A stateful, budget-enforcing interface over one deployment."""

    def __init__(
        self,
        network: FederatedNetwork,
        epsilon_budget: float,
        delta_budget: float = 1e-6,
        epsilon_per_query: float = 1.0,
        sensitivity: float = 1.0,
        committee_size: int = 4,
        key_prime_bits: int = 96,
        constraints: Optional[Constraints] = None,
        goal: Optional[Goal] = None,
        model: Optional[CostModel] = None,
        rng: Optional[random.Random] = None,
    ):
        self.network = network
        self.accountant = PrivacyAccountant(epsilon_budget, delta_budget)
        self.epsilon_per_query = epsilon_per_query
        self.sensitivity = sensitivity
        self.committee_size = committee_size
        self.key_prime_bits = key_prime_bits
        self.constraints = constraints
        self.goal = goal
        self.model = model
        self.rng = rng or random.Random()
        self.history: List[SessionRecord] = []
        self._planners: Dict[tuple, Planner] = {}

    # ------------------------------------------------------------- planning

    def _environment(
        self,
        categories: int,
        epsilon: Optional[float],
        sensitivity: Optional[float],
        row_encoding: str,
        value_range: Optional[tuple] = None,
    ) -> QueryEnvironment:
        from .analysis.ranges import Interval
        from .analysis.types import ValueType

        element = None
        if value_range is not None:
            element = ValueType("int", Interval(float(value_range[0]), float(value_range[1])))
        return QueryEnvironment(
            num_participants=len(self.network),
            row_width=categories,
            db_element=element,
            epsilon=epsilon if epsilon is not None else self.epsilon_per_query,
            sensitivity=sensitivity if sensitivity is not None else self.sensitivity,
            row_encoding=row_encoding,
        )

    def _planner(self, env: QueryEnvironment) -> Planner:
        key = (
            env.row_width,
            env.epsilon,
            env.sensitivity,
            env.row_encoding,
            env.db_element.interval.lo,
            env.db_element.interval.hi,
        )
        if key not in self._planners:
            self._planners[key] = Planner(
                env,
                model=self.model,
                constraints=self.constraints,
                goal=self.goal,
            )
        return self._planners[key]

    def environment(
        self,
        categories: int,
        epsilon: Optional[float] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[tuple] = None,
    ) -> QueryEnvironment:
        """The planning environment this session would use for a query.

        Public so layers above the session (the multi-tenant service's
        plan-cache fingerprinting) can see exactly the environment that
        planning will run against.
        """
        return self._environment(
            categories, epsilon, sensitivity, row_encoding, value_range
        )

    def planner(self, env: QueryEnvironment) -> Planner:
        """The (memoized) planner for ``env`` — same instance ``plan`` uses."""
        return self._planner(env)

    def plan(
        self,
        source: str,
        categories: int,
        name: str = "query",
        epsilon: Optional[float] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[tuple] = None,
    ) -> PlanningResult:
        """Certify and plan without executing (no budget is spent)."""
        env = self._environment(
            categories, epsilon, sensitivity, row_encoding, value_range
        )
        return self._planner(env).plan_source(source, name)

    # ------------------------------------------------------------ execution

    def ask(
        self,
        source: str,
        categories: int,
        name: str = "query",
        epsilon: Optional[float] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[tuple] = None,
    ) -> QueryResult:
        """Plan, budget-check, and execute one query.

        Raises :class:`repro.runtime.executor.BudgetExhausted` (a
        :class:`~repro.runtime.executor.QueryRejected` subclass) when the
        accountant declines the query's certified cost; a refused query
        spends nothing and is recorded with ``result=None``.
        """
        from .privacy.accountant import PrivacyCost
        from .runtime.executor import BudgetExhausted

        planning = self.plan(
            source, categories, name, epsilon, sensitivity, row_encoding, value_range
        )
        cost = PrivacyCost(planning.certificate.epsilon, planning.certificate.delta)
        if not self.accountant.can_afford(cost):
            # Refuse before any committee work, with the typed error the
            # service layer's admission controller distinguishes on.
            self.history.append(
                SessionRecord(name, planning.certificate.epsilon, planning, None)
            )
            remaining = self.accountant.remaining()
            raise BudgetExhausted(
                f"query {name!r} needs ε={cost.epsilon:g} but only "
                f"ε={remaining.epsilon:g} of the session budget remains"
            )
        return self.execute_planning(planning, name)

    def execute_planning(
        self,
        planning: PlanningResult,
        name: str = "query",
        charge_label: Optional[str] = None,
    ) -> QueryResult:
        """Execute an already-planned query against this deployment.

        The budget is charged by the executor under ``charge_label``
        (default: ``name``) via the exactly-once ``charge_once`` path.
        This is the entry point the multi-tenant service uses for plans
        served from its keyed cache — the planning result may have been
        produced for an earlier submission, so the charge label must come
        from the submission, not from the plan.
        """
        from .runtime.executor import QueryRejected

        executor = QueryExecutor(
            self.network,
            planning,
            committee_size=self.committee_size,
            key_prime_bits=self.key_prime_bits,
            rng=self.rng,
            accountant=self.accountant,
            charge_label=charge_label if charge_label is not None else name,
        )
        try:
            result = executor.run()
        except QueryRejected:
            self.history.append(
                SessionRecord(name, planning.certificate.epsilon, planning, None)
            )
            raise
        self.history.append(
            SessionRecord(name, planning.certificate.epsilon, planning, result)
        )
        return result

    # ------------------------------------------------------------ inspection

    def remaining_epsilon(self) -> float:
        return self.accountant.remaining().epsilon

    def spent_epsilon(self) -> float:
        return self.accountant.spent.epsilon

    def budget_report(self) -> BudgetReport:
        """Structured per-source remaining/spent epsilon for this session."""
        return budget_report_for(self.accountant)

    def can_afford(self, source: str, categories: int, **kwargs) -> bool:
        """Would the keygen committee authorize this query right now?"""
        from .privacy.accountant import PrivacyCost

        planning = self.plan(source, categories, **kwargs)
        cost = PrivacyCost(planning.certificate.epsilon, planning.certificate.delta)
        return self.accountant.can_afford(cost)

    @property
    def queries_answered(self) -> int:
        return sum(1 for record in self.history if record.result is not None)
