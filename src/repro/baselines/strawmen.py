"""The strawman designs of §3.2 / Table 1.

Quantifies, with the same cost constants as the rest of the system, why
the naive approaches fail at scale for the running example — "which US zip
code contains the most participants?" (N = 10^8, R = 41,683 categories):

* **FHE only** — the aggregator evaluates the whole exponential mechanism
  on per-participant FHE ciphertexts: a ~40-trillion-gate circuit that
  takes years;
* **all-to-all MPC** — per-participant bandwidth scales linearly with N,
  reaching petabytes;
* **MPC committee** (Böhler) — feasible to ~10^6 participants, TB-scale
  committee traffic beyond;
* **HE + single committee** (Orchard) — scales, but the exponential
  mechanism is limited to tens of categories.
"""

from __future__ import annotations

from dataclasses import dataclass

#: §3.2's running example.
ZIPCODE_PARTICIPANTS = 10**8
ZIPCODE_CATEGORIES = 41_683

#: Boolean-circuit FHE throughput (TFHE-class gate bootstrapping) on a
#: server core: ~100 gates/second is generous for 2023 hardware.
FHE_GATES_PER_SECOND = 100.0

#: Gates to evaluate one participant's contribution to one category's
#: quality score inside the full-FHE strawman (comparison + addition over
#: encrypted per-user rows ≈ 10k gates at 32-bit width).
FHE_GATES_PER_SCORE_UPDATE = 10_000.0

#: Per-pair bandwidth of one all-to-all MPC round (share + MAC).
MPC_BYTES_PER_PAIR = 10_000.0

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class StrawmanEstimate:
    approach: str
    aggregator_core_years: float = 0.0
    participant_bytes_typical: float = 0.0
    participant_bytes_worst: float = 0.0
    supports_large_em: bool = False
    note: str = ""


def fhe_only(
    num_participants: int = ZIPCODE_PARTICIPANTS,
    categories: int = ZIPCODE_CATEGORIES,
) -> StrawmanEstimate:
    """Everything under FHE at the aggregator (§3.2, 'FHE only')."""
    gates = num_participants * FHE_GATES_PER_SCORE_UPDATE
    # Quality scores for all categories come from one pass over the
    # encrypted inputs per category batch; the dominant term is the
    # per-participant update repeated across categories / SIMD width.
    simd_width = 2**15
    gates *= max(1.0, categories / simd_width) * 10
    seconds = gates / FHE_GATES_PER_SECOND
    return StrawmanEstimate(
        approach="FHE only",
        aggregator_core_years=seconds / SECONDS_PER_YEAR,
        participant_bytes_typical=5e6,
        participant_bytes_worst=5e6,
        supports_large_em=True,
        note=f"~{gates:.1e} gates; aggregator must also be trusted with the key",
    )


def all_to_all_mpc(num_participants: int = ZIPCODE_PARTICIPANTS) -> StrawmanEstimate:
    """Every participant joins one giant MPC (§3.2, 'All-to-all MPC')."""
    per_participant = num_participants * MPC_BYTES_PER_PAIR
    return StrawmanEstimate(
        approach="All-to-all MPC",
        participant_bytes_typical=per_participant,
        participant_bytes_worst=per_participant,
        supports_large_em=True,
        note="bandwidth O(N) per participant; no practical protocol beyond a few hundred parties",
    )


def gate_count_fhe_only(
    num_participants: int = ZIPCODE_PARTICIPANTS,
    categories: int = ZIPCODE_CATEGORIES,
) -> float:
    """The paper's '40-trillion-gate circuit' estimate for reference."""
    simd_width = 2**15
    return (
        num_participants
        * FHE_GATES_PER_SCORE_UPDATE
        * max(1.0, categories / simd_width)
        * 10
    )
