"""Honeycrisp baseline (Roth et al., SOSP 2019).

Honeycrisp is the predecessor of Orchard: the same single-committee
architecture (keygen, noising, decryption) but specialized to one query —
the count-mean-sketch aggregation Apple uses for telemetry. Cost-wise it
behaves like Orchard with a single released sketch; we model it the same
way and expose it for the cms comparison bars in Figs 6-8.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.types import QueryEnvironment
from ..planner.costmodel import CostModel
from ..planner.plan import PlanScore
from .orchard import orchard_score


def honeycrisp_score(
    env: QueryEnvironment,
    released_values: int = 1,
    model: Optional[CostModel] = None,
) -> PlanScore:
    """Score a Honeycrisp execution of the cms-style aggregation.

    Honeycrisp supports exactly one kind of query (a noised sum/sketch);
    anything with the exponential mechanism is out of scope.
    """
    return orchard_score(env, released_values, uses_em=False, model=model)


def supports(query_name: str) -> bool:
    return query_name == "cms"
