"""Orchard-style baseline (Roth et al., OSDI 2020).

Orchard sums the encrypted inputs at the aggregator (like Arboretum) but
uses a *single* committee for key generation, noising, and decryption. For
Laplace-style queries this is nearly optimal — which is why Arboretum's
costs match it in expectation (§7.2) — but the lone committee must decrypt
and noise *every* released value itself, so its per-member cost grows with
the number of categories, and the exponential mechanism is only feasible
for tens of categories (§3.2).

The baseline is expressed as a vignette list scored by the same cost model
as Arboretum's plans, mirroring the paper's methodology of re-implementing
the Orchard/Honeycrisp MPCs in MP-SPDZ for a fair comparison (§7.1).
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis.types import QueryEnvironment
from ..planner.committees import CommitteeParameters
from ..planner.costmodel import CostModel, Work, ahe_params_for
from ..planner.plan import Location, PlanScore, Vignette, score_vignettes

#: Orchard's exponential mechanism supports only "tens of categories"
#: before the single committee becomes the bottleneck (§3.2).
ORCHARD_EM_CATEGORY_LIMIT = 64


class BaselineUnsupported(Exception):
    """Raised when a baseline cannot run the query at all."""


def orchard_vignettes(
    env: QueryEnvironment,
    released_values: int,
    uses_em: bool,
    model: CostModel,
):
    """Build the Orchard execution as a vignette list.

    ``released_values`` is the number of scalars the committee must noise
    and release; for an EM query it is the number of categories whose
    scores feed the in-committee selection.
    """
    if uses_em and env.row_width > ORCHARD_EM_CATEGORY_LIMIT:
        raise BaselineUnsupported(
            f"Orchard's single committee cannot run the exponential mechanism "
            f"over {env.row_width} categories (limit ~{ORCHARD_EM_CATEGORY_LIMIT})"
        )
    n = env.num_participants
    scheme = ahe_params_for(env.row_width)
    cts = max(1, math.ceil(env.row_width / scheme.slots))
    constants = model.constants

    audit_bytes = constants["audit_leaves_per_device"] * (
        scheme.ciphertext_bytes + constants["merkle_path_bytes"]
    )
    chunk = constants["zkp_chunk_slots"]
    proofs_per_device = max(1, math.ceil(env.row_width / chunk))
    input_work = Work(
        he_encryptions=cts,
        ring_slots=scheme.slots,
        zkp_proofs=proofs_per_device,
        zkp_constraint_slots=min(float(env.row_width), chunk),
        payload_bytes_sent=cts * scheme.ciphertext_bytes,
        payload_bytes_received=scheme.public_key_bytes
        + constants["certificate_bytes"]
        + audit_bytes,
        hash_bytes=audit_bytes,
        fixed_seconds=constants["sortition_signature_seconds"],
    )
    verify_work = Work(zkp_verifications=n * proofs_per_device, hash_bytes=n * 64.0)
    broadcast_work = Work(
        payload_bytes_sent=n
        * (scheme.public_key_bytes + constants["certificate_bytes"] + audit_bytes)
    )
    aggregate_work = Work(he_additions=float(n) * cts, ring_slots=scheme.slots)

    # The single committee: keygen, then decryption of the aggregate, then
    # noising of every released value (and, for small EM, the comparisons).
    committee_work = Work(
        dist_keygens=1.0,
        mpc_setup=1.0,
        mpc_rounds=30.0,
        dist_decryptions=float(cts),
        ring_slots=scheme.slots,
        mpc_noise_samples=float(released_values),
        mpc_comparisons=float(env.row_width - 1) if uses_em else 0.0,
        payload_bytes_received=cts * scheme.ciphertext_bytes,
        payload_bytes_sent=64.0 * released_values,
    )
    return [
        Vignette("input", Location.PARTICIPANT, scheme.name, input_work, instances=n),
        Vignette(
            "committee",
            Location.COMMITTEE,
            "mpc",
            committee_work,
            instances=1.0,
            committee_group="orchard",
            committee_type="keygen",
        ),
        Vignette("verify", Location.AGGREGATOR, "clear", verify_work),
        Vignette("forwarding", Location.AGGREGATOR, "clear", broadcast_work),
        Vignette("aggregate", Location.AGGREGATOR, scheme.name, aggregate_work),
    ], scheme


def orchard_score(
    env: QueryEnvironment,
    released_values: int,
    uses_em: bool = False,
    model: Optional[CostModel] = None,
) -> PlanScore:
    """Score an Orchard-style execution with the shared cost model."""
    model = model or CostModel()
    vignettes, _scheme = orchard_vignettes(env, released_values, uses_em, model)
    # Orchard always runs exactly one committee.
    params = CommitteeParameters.for_plan(1)
    return score_vignettes(vignettes, env.num_participants, model, committee_params=params)
