"""Böhler & Kerschbaum baseline (USENIX Security 2020).

Their protocol computes a differentially private median by delegating the
whole computation to one MPC committee that downloads *every*
participant's (secret-shared) input — there is no homomorphic aggregation
step. This scales to about a million participants; beyond that the
committee's bandwidth becomes the bottleneck.

The paper could not run the original code (unavailable) and instead
extrapolates from the numbers reported in [14, §E]: a committee of m=10
required 1.41 GB of traffic per member at N=10^6 participants. Assuming
at-least-linear scaling in N and m, m=40 and N=1.3·10^9 needs > 7.3 TB per
member (§7.1). We reproduce exactly that extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The anchor measurement from [14, §E].
ANCHOR_TRAFFIC_BYTES = 1.41e9
ANCHOR_PARTICIPANTS = 1e6
ANCHOR_COMMITTEE_SIZE = 10

#: Reported scale ceiling of the original system.
MAX_SUPPORTED_PARTICIPANTS = 1_000_000


@dataclass(frozen=True)
class BohlerEstimate:
    """Extrapolated per-committee-member cost of the Böhler median."""

    num_participants: int
    committee_size: int
    member_traffic_bytes: float

    @property
    def member_traffic_tb(self) -> float:
        return self.member_traffic_bytes / 1e12


def bohler_member_traffic(num_participants: int, committee_size: int = 40) -> BohlerEstimate:
    """Extrapolate committee-member traffic linearly in N and m (§7.1)."""
    scale_n = num_participants / ANCHOR_PARTICIPANTS
    scale_m = committee_size / ANCHOR_COMMITTEE_SIZE
    return BohlerEstimate(
        num_participants=num_participants,
        committee_size=committee_size,
        member_traffic_bytes=ANCHOR_TRAFFIC_BYTES * scale_n * scale_m,
    )


def is_practical(estimate: BohlerEstimate, participant_limit_bytes: float = 4e9) -> bool:
    """Whether a typical participant could serve on the committee at all."""
    return estimate.member_traffic_bytes <= participant_limit_bytes
