"""Fault plans: seeded, deterministic schedules of fault events.

A :class:`FaultPlan` is pure data — which faults hit which protocol phase
— and is consumed by :class:`repro.faults.injector.FaultInjector`. Plans
are either hand-written (the named scenarios in
:mod:`repro.faults.scenarios`) or generated from a seed with
:meth:`FaultPlan.random_plan`, which is what the fault-rate sweep in
``repro.eval`` uses: the same seed always yields the same schedule, so a
chaos run is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .events import (
    COORDINATOR_CRASH,
    CRASH,
    FAULT_KINDS,
    STRAGGLER,
    VSR_LOSS,
    FaultEvent,
)

#: Protocol phases the executor announces to the injector, in order.
PHASES = ("keygen", "input", "decrypt", "program")

#: Fault kinds whose recovery must reproduce the fault-free answer
#: bit-for-bit (they disturb the protocol, not the data).
PROTOCOL_KINDS = (CRASH, STRAGGLER, VSR_LOSS)


@dataclass(frozen=True)
class FaultPlan:
    """A named, immutable schedule of fault events."""

    name: str
    description: str = ""
    events: Tuple[FaultEvent, ...] = ()
    #: True when the schedule is designed to exceed the §5.1 tolerance and
    #: the correct behaviour is a typed UnrecoverableFault.
    expect_unrecoverable: bool = False
    #: True when the schedule changes which inputs reach the aggregate
    #: (garbage uploads, pre-upload churn), so the released value may
    #: legitimately differ from the fault-free run.
    mutates_inputs: bool = False

    def __post_init__(self):
        for event in self.events:
            if event.kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {event.kind!r}")
            if event.phase not in PHASES:
                raise ValueError(
                    f"unknown phase {event.phase!r}; phases are {PHASES}"
                )

    @property
    def crashes_coordinator(self) -> bool:
        """True when the schedule kills the coordinator process itself.

        Such plans only complete when the executor carries a durable
        journal (``repro chaos`` drives them through crash→resume).
        """
        return any(e.kind == COORDINATOR_CRASH for e in self.events)

    def events_for(self, phase: str) -> List[FaultEvent]:
        return [e for e in self.events if e.phase == phase]

    def as_dict(self) -> dict:
        """JSON-safe form, embedded in execution-journal manifests."""
        return {
            "name": self.name,
            "description": self.description,
            "events": [e.as_dict() for e in self.events],
            "expect_unrecoverable": self.expect_unrecoverable,
            "mutates_inputs": self.mutates_inputs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            expect_unrecoverable=data.get("expect_unrecoverable", False),
            mutates_inputs=data.get("mutates_inputs", False),
        )

    def describe(self) -> str:
        header = f"{self.name}: {self.description or '(no description)'}"
        if not self.events:
            return header + "\n  (no fault events)"
        return header + "".join(f"\n  - {e.describe()}" for e in self.events)

    # ------------------------------------------------------------ builders

    @classmethod
    def random_plan(
        cls,
        seed: int,
        num_faults: int,
        phases: Sequence[str] = ("decrypt", "program"),
        kinds: Sequence[str] = PROTOCOL_KINDS,
        max_straggler_delay: float = 90.0,
        name: str = "",
    ) -> "FaultPlan":
        """A seeded random schedule of ``num_faults`` protocol faults.

        Identical ``(seed, num_faults, phases, kinds)`` always produce the
        identical plan; this is the generator behind the eval sweep and the
        property tests.
        """
        rng = random.Random(seed)
        events = []
        for _ in range(num_faults):
            kind = rng.choice(list(kinds))
            phase = rng.choice(list(phases))
            delay = (
                round(rng.uniform(1.0, max_straggler_delay), 3)
                if kind == STRAGGLER
                else 0.0
            )
            events.append(FaultEvent(kind, phase, delay=delay))
        return cls(
            name=name or f"random[seed={seed},n={num_faults}]",
            description=f"seeded random schedule of {num_faults} protocol faults",
            events=tuple(events),
        )


@dataclass
class RecoveryStats:
    """Overhead a faulted run paid relative to its fault-free twin."""

    retries: int = 0
    committees_used: int = 0
    extra_committees: int = 0
    waited_seconds: float = 0.0
    notes: List[str] = field(default_factory=list)
