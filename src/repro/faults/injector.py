"""The fault injector: the runtime's single point of contact with chaos.

The executor consults the injector at **phase boundaries** (population
faults: dropout/restore, garbage uploads, VSR message loss) and the MPC
engine consults it **between rounds** through the ``round_hook`` it
installs on every committee engine (crashes, stragglers, equivocation).
All injected failures surface as typed exceptions the recovery layer in
``runtime/executor.py`` knows how to handle; everything is recorded in
the shared :class:`~repro.faults.events.EventLog`.

Determinism is the whole point: besides the schedule, the injector owns a
tree of named substreams (:meth:`FaultInjector.fresh` /
:meth:`FaultInjector.persistent`) derived from one master seed via
SHA-256, so every value-relevant random draw in a chaos run is keyed by a
stable label rather than by global stream position. That is what makes a
recovered run *bit-identical* to its fault-free twin: replaying a phase
re-derives the same noise, and extra recovery work cannot shift the draws
of later phases.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence

from ..mpc.engine import CheatingDetected
from .events import (
    COORDINATOR_CRASH,
    CRASH,
    DROPOUT,
    EQUIVOCATE,
    GARBAGE,
    PENDING,
    RESTORE,
    STRAGGLER,
    TOLERATED,
    VSR_LOSS,
    EventLog,
    FaultEvent,
)
from .schedule import FaultPlan


class InjectedFailure(Exception):
    """Base class for failures the injector simulates."""

    def __init__(self, message: str, event: Optional[FaultEvent] = None):
        super().__init__(message)
        self.event = event


class PartyTimeout(InjectedFailure):
    """A committee member missed the round timeout (crash or long straggle)."""


def derive_stream_seed(master_seed: int, label: str) -> int:
    """A 64-bit seed for the named substream, stable across processes."""
    digest = hashlib.sha256(f"{master_seed}/{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultInjector:
    """Drives one :class:`FaultPlan` through one query execution.

    Injectors are single-use: they consume schedule events as the run
    progresses and accumulate the event log. Build a fresh injector (same
    plan, same seed) to replay a run.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        round_timeout: float = 30.0,
    ):
        self.plan = plan
        self.seed = seed
        self.round_timeout = round_timeout
        self.log = EventLog()
        self.clock = 0.0
        self.current_phase: Optional[str] = None
        #: First committee allocated per phase, for symbolic target lookup.
        self.allocations: Dict[str, object] = {}
        self._pending: List[FaultEvent] = list(plan.events)
        self._armed: List[FaultEvent] = []
        self._streams: Dict[str, random.Random] = {}

    # ------------------------------------------------------------- streams

    def fresh(self, label: str) -> random.Random:
        """A brand-new stream for ``label`` — identical on every call.

        Use for draws that must survive a phase replay unchanged (noise,
        sampling offsets, per-device upload randomness).
        """
        return random.Random(derive_stream_seed(self.seed, label))

    def persistent(self, label: str) -> random.Random:
        """The cached, run-long stream for ``label`` (MPC share material)."""
        stream = self._streams.get(label)
        if stream is None:
            stream = self._streams[label] = self.fresh(label)
        return stream

    # ------------------------------------------------------- phase control

    def begin_phase(self, phase: str) -> None:
        """Arm this phase's mid-protocol faults (crash/straggle/equivocate)."""
        self.current_phase = phase
        self._armed.extend(
            self._take(phase, (CRASH, STRAGGLER, EQUIVOCATE))
        )

    def _take(self, phase: str, kinds: Sequence[str]) -> List[FaultEvent]:
        hits = [e for e in self._pending if e.phase == phase and e.kind in kinds]
        for event in hits:
            self._pending.remove(event)
        return hits

    def population_events(self, phase: str) -> List[FaultEvent]:
        """Consume this phase's dropout/restore events."""
        return self._take(phase, (DROPOUT, RESTORE))

    def garbage_events(self, phase: str) -> List[FaultEvent]:
        """Consume this phase's garbage-upload events."""
        return self._take(phase, (GARBAGE,))

    def take_vsr_loss(self) -> Optional[FaultEvent]:
        """Consume one lost-VSR-message event for the current phase, if any."""
        hits = self._take(self.current_phase or "", (VSR_LOSS,))
        return hits[0] if hits else None

    def take_coordinator_crash(
        self, checkpoint_label: str, checkpoint_seq: int
    ) -> Optional[FaultEvent]:
        """Consume one coordinator-death event matching this checkpoint.

        A coordinator-crash event targets a checkpoint, not a device: a
        string target names the checkpoint label (``"allocate/keygen"``),
        an integer target names the global checkpoint ordinal, and a
        ``None`` target fires at the first checkpoint of the event's
        phase. These events never arm via :meth:`begin_phase` — they are
        process deaths, not member faults, and the executor consumes them
        directly at its journal checkpoints.
        """
        for event in self._pending:
            if event.kind != COORDINATOR_CRASH:
                continue
            if self.current_phase is not None and event.phase != self.current_phase:
                continue
            target = event.target
            if (
                target is None
                or target == checkpoint_label
                or (isinstance(target, int) and target == checkpoint_seq)
            ):
                self._pending.remove(event)
                return event
        return None

    def unconsumed(self) -> List[FaultEvent]:
        return list(self._pending) + list(self._armed)

    # -------------------------------------------------------- allocations

    def note_allocation(self, phase: str, committee: object) -> None:
        """Remember the first committee allocated in ``phase`` so symbolic
        targets like ``"keygen#1"`` can be resolved later."""
        self.allocations.setdefault(phase, committee)

    def resolve_devices(self, event: FaultEvent) -> List[int]:
        """Turn an event's target into concrete device ids."""
        target = event.target
        if target is None:
            return []
        items = target if isinstance(target, (tuple, list)) else (target,)
        devices: List[int] = []
        for item in items:
            if isinstance(item, int):
                devices.append(item)
                continue
            phase, _, index = str(item).partition("#")
            committee = self.allocations.get(phase)
            if committee is None:
                self.log.note(
                    f"target {item!r} references phase {phase!r} with no "
                    "allocated committee; skipped"
                )
                continue
            members = committee.members
            devices.append(members[int(index or 0) % len(members)])
        return devices

    # ----------------------------------------------------- failure firing

    def on_round(self) -> None:
        """Hook installed on every committee engine: called between MPC
        rounds, fires any armed mid-protocol fault for the current phase."""
        if self._armed:
            self.maybe_fail()

    def maybe_fail(self) -> None:
        """Fire the next armed fault for the current phase, if any.

        Stragglers within the round timeout are absorbed (simulated wait);
        everything else raises a typed failure for the recovery layer.
        """
        while self._armed:
            event = self._armed.pop(0)
            if event.kind == STRAGGLER and event.delay <= self.round_timeout:
                self.clock += event.delay
                self.log.waited_seconds += event.delay
                self.log.record(
                    event,
                    detection=f"member response lagged {event.delay:g}s",
                    recovery=(
                        f"absorbed within the {self.round_timeout:g}s round "
                        "timeout; no replay needed"
                    ),
                    outcome=TOLERATED,
                )
                continue
            self.clock += self.round_timeout
            self.log.waited_seconds += self.round_timeout
            if event.kind == EQUIVOCATE:
                self.log.record(
                    event,
                    detection=(
                        "opened share failed the degree-t consistency check "
                        "(equivocating member)"
                    ),
                    recovery=PENDING,
                )
                raise CheatingDetected(
                    f"injected equivocation during phase {event.phase!r}"
                )
            detection = (
                f"round timeout expired after {event.delay:g}s straggle"
                if event.kind == STRAGGLER
                else "member stopped responding mid-protocol (round timeout)"
            )
            self.log.record(event, detection=detection, recovery=PENDING)
            raise PartyTimeout(
                f"injected {event.kind} during phase {event.phase!r}", event
            )

    def backoff(self, attempt: int) -> None:
        """Account one retry's exponential backoff against the sim clock."""
        wait = self.round_timeout * (2 ** (attempt - 1))
        self.clock += wait
        self.log.waited_seconds += wait
        self.log.retries += 1

    # -------------------------------------------------------------- finish

    def finish(self) -> EventLog:
        """Close out the run: note any events that never got to fire."""
        leftovers = self.unconsumed()
        if leftovers:
            self.log.note(
                f"{len(leftovers)} scheduled event(s) never triggered "
                f"(phase not reached): "
                + "; ".join(e.describe() for e in leftovers)
            )
        return self.log
