"""Deterministic fault injection and churn-tolerant recovery (`repro.faults`).

Arboretum sizes committees so that a malicious fraction *and* a churned
fraction g of members can be tolerated (§5.1); this package is the
machinery that *proves* the runtime actually survives such a fleet. A
:class:`FaultPlan` is a seeded schedule of fault events (mid-phase device
dropout, stragglers, crashed committee members, equivocating shares,
garbage uploads, lost VSR messages); the :class:`FaultInjector` feeds
them to the runtime at phase boundaries and between MPC rounds; the
:class:`EventLog` records every injected fault paired with its detection,
recovery action, and outcome. Schedules that stay within the tolerance
recover to bit-identical results; schedules that exceed it raise a typed
:class:`UnrecoverableFault` carrying the log.
"""

from .events import (
    COORDINATOR_CRASH,
    CRASH,
    DATA_CHANGING_KINDS,
    DROPOUT,
    EQUIVOCATE,
    FAULT_KINDS,
    GARBAGE,
    PENDING,
    RECOVERED,
    RESTORE,
    STRAGGLER,
    TOLERATED,
    UNDETECTED,
    UNRECOVERABLE,
    VSR_LOSS,
    CoordinatorCrash,
    EventLog,
    EventRecord,
    FaultEvent,
    UnrecoverableFault,
)
from .injector import (
    FaultInjector,
    InjectedFailure,
    PartyTimeout,
    derive_stream_seed,
)
from .schedule import PHASES, PROTOCOL_KINDS, FaultPlan, RecoveryStats
from .scenarios import SCENARIOS, get_scenario, list_scenarios

__all__ = [
    "COORDINATOR_CRASH",
    "CRASH",
    "DATA_CHANGING_KINDS",
    "DROPOUT",
    "EQUIVOCATE",
    "FAULT_KINDS",
    "GARBAGE",
    "PENDING",
    "PHASES",
    "PROTOCOL_KINDS",
    "RECOVERED",
    "RESTORE",
    "SCENARIOS",
    "STRAGGLER",
    "TOLERATED",
    "UNDETECTED",
    "UNRECOVERABLE",
    "VSR_LOSS",
    "CoordinatorCrash",
    "EventLog",
    "EventRecord",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFailure",
    "PartyTimeout",
    "RecoveryStats",
    "UnrecoverableFault",
    "derive_stream_seed",
    "get_scenario",
    "list_scenarios",
]
