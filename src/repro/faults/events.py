"""Structured fault/recovery event log (the `repro.faults` ledger).

Every injected fault flows through the same life cycle — *injected* →
*detected* → *recovery action* → *outcome* — and every step is recorded
here so tests and the ``repro chaos`` CLI can assert that no fault went
unhandled. The log is also the payload of :class:`UnrecoverableFault`,
the typed error raised when a schedule's losses genuinely exceed the
§5.1 tolerance: callers always get the full forensic trail, never a hang
or a silently wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

# --------------------------------------------------------------- fault kinds

#: A device stops responding at the start of a phase (churn, §5.1's g).
DROPOUT = "dropout"
#: A previously churned device comes back online at the start of a phase.
RESTORE = "restore"
#: A committee member crashes mid-protocol (detected via round timeout).
CRASH = "crash"
#: A committee member answers late; below the round timeout the delay is
#: absorbed, above it the member is treated as crashed.
STRAGGLER = "straggler"
#: A member submits an inconsistent share (caught by the degree-t check).
EQUIVOCATE = "equivocate"
#: A device uploads a malformed/garbage ciphertext vector (caught by ZKP).
GARBAGE = "garbage"
#: One dealer's VSR redistribution message is lost in transit.
VSR_LOSS = "vsr-loss"
#: The *coordinator process itself* dies at a named execution-journal
#: checkpoint (`runtime/journal.py`). Unlike every other kind, this is not
#: a protocol fault the phase-retry loop can absorb: the run survives only
#: if a durable journal exists to resume from.
COORDINATOR_CRASH = "coordinator-crash"

FAULT_KINDS = (
    DROPOUT,
    RESTORE,
    CRASH,
    STRAGGLER,
    EQUIVOCATE,
    GARBAGE,
    VSR_LOSS,
    COORDINATOR_CRASH,
)

#: Fault kinds that change *which data enters the aggregate* (and therefore
#: legitimately change the released value); every other kind must be
#: recovered to a bit-identical result.
DATA_CHANGING_KINDS = frozenset({GARBAGE})

# ------------------------------------------------------------------- events

#: A target names who the fault hits: an absolute device id, a symbolic
#: committee-member reference like ``"keygen#1"`` (member 1 of the first
#: committee allocated in the ``keygen`` phase), or a tuple of either.
Target = Union[int, str, Tuple[Union[int, str], ...]]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what kind, during which phase, against whom."""

    kind: str
    phase: str
    target: Optional[Target] = None
    delay: float = 0.0  # seconds; stragglers only
    note: str = ""

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def describe(self) -> str:
        parts = [f"{self.kind} @ {self.phase}"]
        if self.target is not None:
            parts.append(f"target={self.target!r}")
        if self.delay:
            parts.append(f"delay={self.delay:g}s")
        if self.note:
            parts.append(self.note)
        return " ".join(parts)

    def as_dict(self) -> dict:
        """JSON-safe representation (tuples become lists)."""
        target = self.target
        if isinstance(target, tuple):
            target = list(target)
        return {
            "kind": self.kind,
            "phase": self.phase,
            "target": target,
            "delay": self.delay,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        target = data.get("target")
        if isinstance(target, list):
            target = tuple(target)
        return cls(
            kind=data["kind"],
            phase=data["phase"],
            target=target,
            delay=data.get("delay", 0.0),
            note=data.get("note", ""),
        )


# ------------------------------------------------------------ event records

#: Outcome states an :class:`EventRecord` can end in.
RECOVERED = "recovered"      # a recovery action restored progress
TOLERATED = "tolerated"      # absorbed without any replay (e.g. short delay)
UNRECOVERABLE = "unrecoverable"
PENDING = "pending"          # detection logged; recovery still in flight
UNDETECTED = "undetected"    # injected but nothing noticed (a test failure)

TERMINAL_OUTCOMES = frozenset({RECOVERED, TOLERATED, UNRECOVERABLE, UNDETECTED})


@dataclass
class EventRecord:
    """One injected fault paired with its detection and recovery."""

    fault: FaultEvent
    detection: str
    recovery: str
    outcome: str = PENDING

    def format(self) -> str:
        return (
            f"[{self.fault.phase}] {self.fault.kind}"
            + (f" target={self.fault.target!r}" if self.fault.target is not None else "")
            + f" -> detected: {self.detection}"
            + f" -> recovery: {self.recovery}"
            + f" -> {self.outcome}"
        )

    def as_dict(self) -> dict:
        return {
            "fault": self.fault.as_dict(),
            "detection": self.detection,
            "recovery": self.recovery,
            "outcome": self.outcome,
        }


@dataclass
class EventLog:
    """Ordered record of injected faults plus recovery-overhead counters."""

    records: List[EventRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    retries: int = 0
    waited_seconds: float = 0.0

    def record(
        self, fault: FaultEvent, detection: str, recovery: str, outcome: str = PENDING
    ) -> EventRecord:
        rec = EventRecord(fault, detection, recovery, outcome)
        self.records.append(rec)
        return rec

    def note(self, message: str) -> None:
        self.notes.append(message)

    def resolve_phase(self, phase: str, outcome: str, recovery: str = "") -> None:
        """Settle every still-pending record of ``phase`` with ``outcome``."""
        for rec in self.records:
            if rec.fault.phase == phase and rec.outcome == PENDING:
                rec.outcome = outcome
                if recovery and rec.recovery in ("", PENDING):
                    rec.recovery = recovery

    # ------------------------------------------------------------- queries

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def recovered(self) -> int:
        return sum(1 for r in self.records if r.outcome in (RECOVERED, TOLERATED))

    @property
    def all_recovered(self) -> bool:
        return all(r.outcome in (RECOVERED, TOLERATED) for r in self.records)

    def unresolved(self) -> List[EventRecord]:
        return [r for r in self.records if r.outcome not in TERMINAL_OUTCOMES]

    def by_kind(self, kind: str) -> List[EventRecord]:
        return [r for r in self.records if r.fault.kind == kind]

    # ----------------------------------------------------------- rendering

    def as_dict(self) -> dict:
        """JSON-safe representation; the exact form the execution journal
        embeds in its checkpoint records and ``repro chaos --json`` emits."""
        return {
            "records": [rec.as_dict() for rec in self.records],
            "notes": list(self.notes),
            "retries": self.retries,
            "waited_seconds": self.waited_seconds,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — digestable."""
        import json

        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def format(self) -> str:
        lines = [
            f"fault log: {self.injected} injected, {self.recovered} recovered/"
            f"tolerated; {self.retries} phase retries, "
            f"{self.waited_seconds:.1f}s simulated waiting"
        ]
        for rec in self.records:
            lines.append("  " + rec.format())
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class UnrecoverableFault(Exception):
    """The fault budget exceeded the §5.1 tolerance; recovery is impossible.

    Carries the full :class:`EventLog` so the caller can see exactly which
    injected fault broke the run and what recovery was attempted first.
    """

    def __init__(self, reason: str, log: Optional[EventLog] = None):
        super().__init__(reason)
        self.reason = reason
        self.log = log if log is not None else EventLog()


class CoordinatorCrash(Exception):
    """The simulated coordinator process died at a journal checkpoint.

    Deliberately *not* a subclass of ``InjectedFailure``: the executor's
    phase-retry machinery must not catch it — a process death takes the
    whole in-memory run with it. The only recovery is a new incarnation
    resuming from the durable :class:`~repro.runtime.journal.ExecutionJournal`
    (whose path, when one was attached, rides along here).
    """

    def __init__(
        self,
        reason: str,
        event: Optional[FaultEvent] = None,
        checkpoint: Optional[str] = None,
        checkpoint_seq: Optional[int] = None,
        journal_path: Optional[str] = None,
    ):
        super().__init__(reason)
        self.reason = reason
        self.event = event
        self.checkpoint = checkpoint
        self.checkpoint_seq = checkpoint_seq
        self.journal_path = journal_path
