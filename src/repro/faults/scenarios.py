"""Named fault scenarios for ``repro chaos`` and the smoke suite.

Each scenario is a ready-made :class:`~repro.faults.schedule.FaultPlan`
exercising one recovery path of the runtime. Scenarios are deliberately
small (one or two events) so the CLI transcript reads as a story:
injected fault → detection → recovery action → outcome.
"""

from __future__ import annotations

from typing import List

from .events import (
    COORDINATOR_CRASH,
    CRASH,
    DROPOUT,
    EQUIVOCATE,
    GARBAGE,
    RESTORE,
    STRAGGLER,
    VSR_LOSS,
    FaultEvent,
)
from .schedule import FaultPlan

SCENARIOS = {
    plan.name: plan
    for plan in (
        FaultPlan(
            "none",
            "no faults; the baseline every recovery is compared against",
        ),
        FaultPlan(
            "keygen-loss",
            "a key-generation committee member churns after the key shares "
            "were dealt; survivors re-share via Shamir threshold recovery",
            events=(FaultEvent(DROPOUT, "decrypt", target="keygen#1"),),
        ),
        FaultPlan(
            "decrypt-crash",
            "a decryption-committee member crashes mid-protocol; the task "
            "fails over to a fresh committee and the phase is replayed",
            events=(FaultEvent(CRASH, "decrypt"),),
        ),
        FaultPlan(
            "double-crash",
            "back-to-back crashes in two different phases; two independent "
            "failovers",
            events=(FaultEvent(CRASH, "decrypt"), FaultEvent(CRASH, "program")),
        ),
        FaultPlan(
            "straggler",
            "one short straggle (absorbed within the round timeout) and one "
            "long straggle (treated as a crash, triggering failover)",
            events=(
                FaultEvent(STRAGGLER, "decrypt", delay=5.0),
                FaultEvent(STRAGGLER, "program", delay=120.0),
            ),
        ),
        FaultPlan(
            "vsr-loss",
            "one dealer's verifiable-secret-redistribution message is lost; "
            "the receiving committee reconstructs from an alternative quorum",
            events=(FaultEvent(VSR_LOSS, "decrypt"),),
        ),
        FaultPlan(
            "equivocate",
            "a member submits an inconsistent share during the program "
            "phase; the degree-t check aborts and the committee is replaced",
            events=(FaultEvent(EQUIVOCATE, "program"),),
        ),
        FaultPlan(
            "garbage-upload",
            "two devices upload malformed ciphertext vectors; the "
            "well-formedness ZKPs reject them before aggregation",
            events=(
                FaultEvent(GARBAGE, "input", target=2),
                FaultEvent(GARBAGE, "input", target=3),
            ),
            mutates_inputs=True,
        ),
        FaultPlan(
            "churn-wave",
            "four devices churn before decryption and return during the "
            "program phase; committees are trimmed or skipped (§5.1)",
            events=(
                FaultEvent(DROPOUT, "decrypt", target=(5, 6, 7, 8)),
                FaultEvent(RESTORE, "program", target=(5, 6, 7, 8)),
            ),
        ),
        FaultPlan(
            "coordinator-crash-keygen",
            "the coordinator process dies at the keygen allocation "
            "checkpoint, before any budget was charged; a fresh incarnation "
            "resumes from the execution journal and replays forward",
            events=(
                FaultEvent(COORDINATOR_CRASH, "keygen", target="allocate/keygen"),
            ),
        ),
        FaultPlan(
            "coordinator-crash-input",
            "the coordinator dies after the aggregate was committed — the "
            "privacy budget is already journaled, so the resumed "
            "incarnation must complete without double-billing the accountant",
            events=(
                FaultEvent(COORDINATOR_CRASH, "input", target="input/aggregated"),
            ),
        ),
        FaultPlan(
            "coordinator-crash-program",
            "the coordinator dies mid-mechanism (at the first noising "
            "committee); resume re-derives identical labelled noise streams",
            events=(
                FaultEvent(COORDINATOR_CRASH, "program", target="allocate/noise[0]"),
            ),
        ),
        FaultPlan(
            "coordinator-crash-double",
            "two independent process deaths in one run, in different "
            "phases; the journal grows across three incarnations",
            events=(
                FaultEvent(COORDINATOR_CRASH, "decrypt", target="allocate/decryption"),
                FaultEvent(COORDINATOR_CRASH, "program", target="allocate/noise[0]"),
            ),
        ),
        FaultPlan(
            "crash-amid-churn",
            "keygen-committee churn forces Shamir share recovery, then the "
            "coordinator dies; the resumed incarnation replays the "
            "recovery bit-identically from its seeded substreams",
            events=(
                FaultEvent(DROPOUT, "decrypt", target="keygen#1"),
                FaultEvent(
                    COORDINATOR_CRASH, "program", target="allocate/operations"
                ),
            ),
        ),
        FaultPlan(
            "overload",
            "the keygen committee loses members beyond the reconstruction "
            "quorum after dealing key shares; the fault budget exceeds the "
            "§5.1 tolerance and the run must abort with UnrecoverableFault",
            events=(
                FaultEvent(
                    DROPOUT,
                    "decrypt",
                    target=("keygen#0", "keygen#1", "keygen#2"),
                ),
            ),
            expect_unrecoverable=True,
        ),
    )
}


def get_scenario(name: str) -> FaultPlan:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")


def list_scenarios() -> List[FaultPlan]:
    return list(SCENARIOS.values())
