"""Repo-specific source lint (the second half of ``repro.verify``).

A small ``ast``-based linter with rules that generic tools do not know
about because they encode *this* codebase's safety conventions:

* **R1 no-private-state** — outside ``crypto/`` no code may reach into
  another object's underscore-prefixed attributes or forge cipher-state
  objects (``BGVCiphertext``/``PaillierCiphertext``) directly; the
  behavioural crypto models keep their plaintext slots private and the
  only sanctioned read is ``decrypt`` with the matching key.
* **R2 no-unseeded-rng** — inside ``privacy/``, ``mpc/``, and
  ``runtime/`` every random draw must come from an explicitly threaded
  ``random.Random`` instance: no module-level ``random.random()``-style
  calls and no zero-argument ``random.Random()`` constructions. DP noise,
  MPC shares, and protocol decisions drawn from an ambient, unseedable
  stream are untestable, unauditable, and unreplayable — the
  fault-recovery runtime depends on every run being exactly replayable.
* **R3 no-float-on-secret** — in the MPC/secret-sharing modules, values
  annotated as ``SecretValue``/``Share`` are field elements; true
  division or mixing with float literals silently leaves the field.
  (Floor division — exact field arithmetic — is fine.)
* **R4 no-unused-imports** — a pyflakes-subset check so ``make lint``
  has teeth even when ruff is not installed. ``__init__.py`` re-export
  hubs and ``from __future__`` imports are exempt.
* **R5 rng-stream-hygiene** — a *cross-function, cross-file* dataflow
  rule: every statically-known label passed to the seed-derivation
  surface (``derive_stream_seed`` and the ``fresh``/``persistent``/
  ``_fresh`` stream accessors) must be unique per call site. Two call
  sites sharing a label template silently draw *correlated* randomness
  — DP noise reusing MPC share material, replayed phases consuming each
  other's streams — which breaks both privacy and the bit-identical
  replay guarantee. F-string labels are compared as templates (the
  interpolated holes are wildcards); fully dynamic labels are skipped.
* **R6 no-numpy-default-rng** — inside ``runtime/``, ``mpc/``, and
  ``crypto/`` no code may draw from numpy's ambient global stream
  (``np.random.<fn>``) or construct an unseeded generator
  (``default_rng()`` with no arguments). Same rationale as R2, for the
  vectorized data plane: unseeded draws are unreplayable.
* **R7 no-raw-modexp** — inside ``crypto/``, ``mpc/``, and ``runtime/``
  every bigint modular exponentiation (3-argument ``pow``, and direct
  ``gmpy2`` imports) must go through the pluggable kernel dispatch in
  ``crypto/backend.py``. A raw ``pow(..., n_squared)`` bypasses backend
  selection, so the accelerated path silently stops covering that call
  site *and* the differential-equivalence suite stops testing it.

All rules report through the shared :class:`VerificationReport` shape,
with ``file:line`` subjects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .report import VerificationReport, Violation

#: Cipher-state classes whose direct construction outside crypto/ would
#: bypass encryption (forging a ciphertext around chosen "plaintext").
_CIPHER_STATE_CLASSES = frozenset({"BGVCiphertext", "PaillierCiphertext"})

#: ``random``-module samplers that draw from the ambient global stream.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "getrandbits",
        "seed",
    }
)

#: ``numpy.random`` names that construct *seedable* generator machinery
#: rather than drawing from the module-level global stream (R6).
_NUMPY_SEEDED_CONSTRUCTORS = frozenset(
    {"Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
)

#: Annotations marking secret-tainted field elements (R3).
_SECRET_ANNOTATIONS = ("SecretValue", "Share")

#: Files (beyond ``mpc/``) whose arithmetic is field arithmetic.
_FIELD_ARITHMETIC_FILES = frozenset({"field.py", "shamir.py", "vsr.py"})


@dataclass(frozen=True)
class LintRule:
    rule: str
    scope: str
    description: str


LINT_RULES: Tuple[LintRule, ...] = (
    LintRule(
        "no-private-state",
        "src outside crypto/",
        "no underscore-attribute access on foreign objects, no direct "
        "construction of cipher-state classes",
    ),
    LintRule(
        "no-unseeded-rng",
        "privacy/, mpc/, runtime/",
        "no global-stream random.* calls, no zero-argument random.Random()",
    ),
    LintRule(
        "no-float-on-secret",
        "mpc/, crypto field arithmetic",
        "no true division or float mixing on SecretValue/Share operands",
    ),
    LintRule(
        "no-unused-imports",
        "all of src",
        "every module-level import is used (init re-export hubs exempt)",
    ),
    LintRule(
        "rng-stream-hygiene",
        "runtime/, mpc/, crypto/, faults/",
        "every derive_stream_seed / fresh / persistent label template is "
        "unique per call site (no correlated substreams)",
    ),
    LintRule(
        "no-numpy-default-rng",
        "runtime/, mpc/, crypto/",
        "no numpy.random global-stream calls, no unseeded default_rng()",
    ),
    LintRule(
        "no-raw-modexp",
        "runtime/, mpc/, crypto/ (except crypto/backend.py)",
        "no 3-argument pow() or direct gmpy2 use outside the crypto "
        "backend dispatch layer",
    ),
)

#: Functions whose string argument names a derived random substream. Maps
#: callable name -> index of the label argument (R5).
_STREAM_SEED_FUNCS = {
    "derive_stream_seed": 1,
    "fresh": 0,
    "persistent": 0,
    "_fresh": 0,
    "_shard_stream": 0,
}


def _annotation_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations ("Share", "Optional[SecretValue]").
            names.update(
                part
                for marker in _SECRET_ANNOTATIONS
                for part in ([marker] if marker in sub.value else [])
            )
    return names


def _is_secret_annotation(node: ast.AST) -> bool:
    if node is None:
        return False
    return any(m in _annotation_names(node) for m in _SECRET_ANNOTATIONS)


def _label_template(expr: ast.AST):
    """The static template of a stream-label expression, or ``None``.

    String constants are themselves; f-strings become templates with
    ``{}`` holes (``f"noise/em{seq}/{start}"`` -> ``"noise/em{}/{}"``),
    so two call sites differing only in interpolated values still
    compare equal — which is exactly the collision R5 hunts. Anything
    else (a variable, a ``+`` concat) is dynamic and skipped.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts = []
        for piece in expr.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    return None


class _FileLinter(ast.NodeVisitor):
    """Runs every applicable rule over one parsed module."""

    def __init__(self, path: Path, rel: str, tree: ast.Module, source: str = ""):
        self.path = path
        self.rel = rel
        self.tree = tree
        self.lines = source.splitlines()
        parts = path.parts
        self.in_crypto = "crypto" in parts
        self.in_rng_scope = (
            "privacy" in parts or "mpc" in parts or "runtime" in parts
        )
        self.in_field_scope = "mpc" in parts or (
            self.in_crypto and path.name in _FIELD_ARITHMETIC_FILES
        )
        self.in_np_scope = (
            "runtime" in parts or "mpc" in parts or self.in_crypto
        )
        #: The one module allowed to write raw bigint modexp (R7).
        self.is_backend_module = self.in_crypto and path.name == "backend.py"
        self.in_stream_scope = self.in_np_scope or "faults" in parts
        self.is_init = path.name == "__init__.py"
        self.class_names = {
            n.name for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
        }
        self._normalized_classes = {
            name.replace("_", "").lower() for name in self.class_names
        }
        self.violations: List[Violation] = []
        #: Names bound to secret-annotated values in the current function.
        self._secret_stack: List[Set[str]] = []
        #: Aliases ``import numpy [as X]`` binds in this module (R6).
        self.numpy_aliases: Set[str] = set()
        #: Aliases bound to the ``numpy.random`` submodule itself (R6).
        self.numpy_random_aliases: Set[str] = set()
        #: ``(template, site)`` for every statically-labelled stream-seed
        #: call; the cross-file uniqueness post-pass lives in
        #: :meth:`SourceLinter.lint_paths` (R5).
        self.stream_labels: List[Tuple[str, str]] = []
        #: Names ``from numpy.random import default_rng [as X]`` binds (R6).
        self.default_rng_aliases: Set[str] = set()

    def _allowed(self, rule: str, line: int) -> bool:
        # Escape hatch for deliberate violations (Byzantine test
        # hooks, adversarial fixtures): ``# verify: allow(<rule>)``.
        if 0 < line <= len(self.lines):
            return f"verify: allow({rule})" in self.lines[line - 1]
        return False

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._allowed(rule, line):
            return
        self.violations.append(Violation(rule, f"{self.rel}:{line}", message))

    def run(self) -> List[Violation]:
        self.visit(self.tree)
        if not self.is_init:
            self._check_unused_imports()
        return self.violations

    # ------------------------------------------------------ R1 private state

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if (
            not self.in_crypto
            and attr.startswith("_")
            and not attr.startswith("__")
        ):
            receiver = node.value
            # self/cls, the enclosing class itself, and instances named
            # after a class in this file (e.g. ``parser`` of ``_Parser``)
            # are that class's own state, not a foreign object's.
            allowed = isinstance(receiver, ast.Name) and (
                receiver.id in ("self", "cls")
                or receiver.id in self.class_names
                or receiver.id.replace("_", "").lower() in self._normalized_classes
            )
            if not allowed:
                where = (
                    receiver.id
                    if isinstance(receiver, ast.Name)
                    else type(receiver).__name__
                )
                self._flag(
                    "no-private-state",
                    node,
                    f"access to private attribute {attr!r} of {where!r}; "
                    "internal state (cipher slots, engine internals) may "
                    "only be touched by its own class or inside crypto/",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # R1: forging cipher state.
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if (
            not self.in_crypto
            and name in _CIPHER_STATE_CLASSES
        ):
            self._flag(
                "no-private-state",
                node,
                f"direct construction of {name} outside crypto/ forges "
                "cipher state; use the scheme's encrypt()",
            )
        # R2: global-stream RNG.
        if self.in_rng_scope and isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "Random" and not node.args and not node.keywords:
                    self._flag(
                        "no-unseeded-rng",
                        node,
                        "random.Random() without a seed: privacy/MPC "
                        "randomness must be threaded through an explicit, "
                        "caller-provided random.Random",
                    )
                elif func.attr in _GLOBAL_RNG_FUNCS:
                    self._flag(
                        "no-unseeded-rng",
                        node,
                        f"random.{func.attr}() draws from the ambient global "
                        "stream; pass a random.Random instance instead",
                    )
        # R5: collect statically-labelled stream-seed call sites; the
        # cross-file uniqueness check runs in SourceLinter.lint_paths.
        if self.in_stream_scope and name in _STREAM_SEED_FUNCS:
            idx = _STREAM_SEED_FUNCS[name]
            label_expr = None
            for kw in node.keywords:
                if kw.arg == "label":
                    label_expr = kw.value
            if label_expr is None and len(node.args) > idx:
                label_expr = node.args[idx]
            if label_expr is not None:
                template = _label_template(label_expr)
                line = getattr(node, "lineno", 0)
                if template is not None and not self._allowed(
                    "rng-stream-hygiene", line
                ):
                    self.stream_labels.append((template, f"{self.rel}:{line}"))
        # R6: numpy's ambient global stream / unseeded generators.
        if self.in_np_scope:
            if isinstance(func, ast.Attribute):
                base = func.value
                is_np_random = (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in self.numpy_aliases
                ) or (
                    isinstance(base, ast.Name)
                    and base.id in self.numpy_random_aliases
                )
                if is_np_random:
                    if func.attr in ("default_rng", "RandomState"):
                        if not node.args and not node.keywords:
                            self._flag(
                                "no-numpy-default-rng",
                                node,
                                f"{func.attr}() without a seed is "
                                "unreplayable; derive the seed from the "
                                "run's master seed (derive_stream_seed)",
                            )
                    elif func.attr not in _NUMPY_SEEDED_CONSTRUCTORS:
                        self._flag(
                            "no-numpy-default-rng",
                            node,
                            f"numpy.random.{func.attr}() draws from numpy's "
                            "ambient global stream; use a seeded Generator "
                            "instead",
                        )
            elif (
                isinstance(func, ast.Name)
                and func.id in self.default_rng_aliases
                and not node.args
                and not node.keywords
            ):
                self._flag(
                    "no-numpy-default-rng",
                    node,
                    "default_rng() without a seed is unreplayable; derive "
                    "the seed from the run's master seed",
                )
        # R7: raw bigint modexp outside the backend dispatch layer.
        if (
            self.in_np_scope
            and not self.is_backend_module
            and isinstance(func, ast.Name)
            and func.id == "pow"
            and len(node.args) == 3
        ):
            self._flag(
                "no-raw-modexp",
                node,
                "3-argument pow() bypasses the pluggable crypto backend; "
                "route this modexp through crypto/backend.py "
                "(get_backend().powmod / invmod / powmod_vector)",
            )
        # R3: float() coercion of a secret.
        if (
            self._secret_stack
            and isinstance(func, ast.Name)
            and func.id == "float"
        ):
            for arg in node.args:
                for leaf in ast.walk(arg):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id in self._secret_stack[-1]
                    ):
                        self._flag(
                            "no-float-on-secret",
                            node,
                            f"float({leaf.id}) coerces a secret field "
                            "element out of the field",
                        )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if (
                self.in_np_scope
                and not self.is_backend_module
                and alias.name.split(".")[0] == "gmpy2"
            ):
                self._flag(
                    "no-raw-modexp",
                    node,
                    "direct gmpy2 import bypasses the pluggable crypto "
                    "backend; only crypto/backend.py may bind gmpy2",
                )
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    # ``import numpy.random`` binds the top-level ``numpy``.
                    self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            self.in_np_scope
            and not self.is_backend_module
            and node.module
            and node.module.split(".")[0] == "gmpy2"
        ):
            self._flag(
                "no-raw-modexp",
                node,
                "direct gmpy2 import bypasses the pluggable crypto "
                "backend; only crypto/backend.py may bind gmpy2",
            )
        if self.in_rng_scope and node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RNG_FUNCS:
                    self._flag(
                        "no-unseeded-rng",
                        node,
                        f"importing random.{alias.name} binds the ambient "
                        "global stream; thread a random.Random instead",
                    )
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                binding = alias.asname or alias.name
                if alias.name == "default_rng":
                    self.default_rng_aliases.add(binding)
                elif (
                    self.in_np_scope
                    and alias.name not in _NUMPY_SEEDED_CONSTRUCTORS
                ):
                    self._flag(
                        "no-numpy-default-rng",
                        node,
                        f"importing numpy.random.{alias.name} binds numpy's "
                        "ambient global stream; use a seeded Generator",
                    )
        self.generic_visit(node)

    # -------------------------------------------------- R3 float-on-secret

    def _visit_function(self, node) -> None:
        secrets: Set[str] = set()
        if self.in_field_scope:
            args = list(node.args.posonlyargs) + list(node.args.args) + list(
                node.args.kwonlyargs
            )
            for arg in args:
                if _is_secret_annotation(arg.annotation):
                    secrets.add(arg.arg)
        self._secret_stack.append(secrets)
        self.generic_visit(node)
        self._secret_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._secret_stack and self._secret_stack[-1]:
            secrets = self._secret_stack[-1]

            def touches_secret(expr: ast.AST) -> str:
                for leaf in ast.walk(expr):
                    if isinstance(leaf, ast.Name) and leaf.id in secrets:
                        return leaf.id
                return ""

            secret_name = touches_secret(node.left) or touches_secret(node.right)
            if secret_name:
                if isinstance(node.op, ast.Div):
                    self._flag(
                        "no-float-on-secret",
                        node,
                        f"true division on secret operand {secret_name!r}; "
                        "field elements need modular inverse or floor "
                        "division",
                    )
                else:
                    for side in (node.left, node.right):
                        if isinstance(side, ast.Constant) and isinstance(
                            side.value, float
                        ):
                            self._flag(
                                "no-float-on-secret",
                                node,
                                f"float literal {side.value!r} mixed into "
                                f"arithmetic on secret {secret_name!r}",
                            )
        self.generic_visit(node)

    # --------------------------------------------------- R4 unused imports

    def _check_unused_imports(self) -> None:
        imported = []  # (binding name, display name, node)
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    binding = alias.asname or alias.name.split(".")[0]
                    imported.append((binding, alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    binding = alias.asname or alias.name
                    imported.append((binding, alias.name, node))
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # Covers __all__ entries and string-form annotations.
                used.add(node.value)
        for binding, display, node in imported:
            if binding not in used:
                self._flag(
                    "no-unused-imports",
                    node,
                    f"{display!r} is imported but never used",
                )


class SourceLinter:
    """Lints a set of files or directory trees."""

    def __init__(self, root: Path = None):
        self.root = Path(root) if root else Path.cwd()

    def _files(self, paths: Sequence) -> Iterable[Path]:
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            elif path.suffix == ".py":
                yield path

    def lint_file(self, path: Path) -> List[Violation]:
        violations, _ = self._lint_file(path)
        return violations

    def _lint_file(self, path: Path) -> Tuple[List[Violation], List[Tuple[str, str]]]:
        """One file's violations plus its stream-label sites (for R5)."""
        path = Path(path)
        try:
            rel = str(path.relative_to(self.root))
        except ValueError:
            rel = str(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return (
                [
                    Violation(
                        "syntax",
                        f"{rel}:{exc.lineno or 0}",
                        f"unparsable: {exc.msg}",
                    )
                ],
                [],
            )
        linter = _FileLinter(path, rel, tree, source)
        violations = linter.run()
        return violations, linter.stream_labels

    def lint_paths(self, paths: Sequence) -> VerificationReport:
        report = VerificationReport(
            target=", ".join(str(p) for p in paths),
            checked_rules=[rule.rule for rule in LINT_RULES],
        )
        for raw in paths:
            if not Path(raw).exists():
                # A typo'd path silently "passing" would defeat the lint.
                report.add("no-such-path", str(raw), "path does not exist")
        stream_sites: List[Tuple[str, str]] = []
        for path in self._files(paths):
            violations, labels = self._lint_file(path)
            report.violations.extend(violations)
            stream_sites.extend(labels)
        # R5 post-pass: stream-label uniqueness is a *global* property —
        # a label reused in a different module is just as correlated as
        # one reused next door, so the check must run across every file
        # in the lint set, after all of them have been visited.
        by_template: Dict[str, List[str]] = {}
        for template, site in stream_sites:
            by_template.setdefault(template, []).append(site)
        for template, sites in sorted(by_template.items()):
            distinct = sorted(set(sites))
            if len(distinct) > 1:
                for site in distinct:
                    others = ", ".join(s for s in distinct if s != site)
                    report.violations.append(
                        Violation(
                            "rng-stream-hygiene",
                            site,
                            f"stream label template {template!r} is also "
                            f"derived at {others}; each call site must use "
                            "a unique label or the substreams are "
                            "correlated",
                        )
                    )
        return report


def lint_paths(paths: Sequence, root: Path = None) -> VerificationReport:
    """Lint files/directories; the module-level convenience entry point."""
    return SourceLinter(root).lint_paths(paths)
