"""Verification reports: violations, severities, and the one exception type.

Every checker in ``repro.verify`` — the plan/IR verifier and the source
linter — reports through the same structures, so callers (the planner's
debug post-condition, the executor's pre-execution gate, the CLI, the
test suite) handle one shape: a :class:`VerificationReport` holding
:class:`Violation` records, and a single :class:`PlanVerificationError`
for the raising paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a plan unsound (or a source file non-compliant)
    and fail verification; ``WARNING`` findings are surfaced but do not
    block execution — e.g. a small-scale simulation that selects more
    committee seats than there are devices, which the runtime handles by
    reusing devices.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One finding: which rule fired, where, and what to do about it.

    ``subject`` names the thing being blamed — a vignette, a logical op key,
    or a ``file:line`` location — so diagnostics stay actionable.
    ``node_path`` pins the finding to a structured location in the plan
    (``ops[3]:select_max``, ``post[1]:line 2``, ``plan.scheme``, ...), so
    tooling can navigate to the offending node without parsing prose.
    """

    rule: str
    subject: str
    message: str
    severity: Severity = Severity.ERROR
    node_path: str = ""

    @property
    def location(self) -> str:
        """The most specific location available for this finding."""
        return self.node_path or self.subject

    def __str__(self) -> str:
        at = f" @ {self.node_path}" if self.node_path else ""
        return f"[{self.rule}] {self.subject}{at}: {self.message}"


@dataclass
class VerificationReport:
    """The outcome of verifying one plan or linting one file set."""

    target: str
    violations: List[Violation] = field(default_factory=list)
    checked_rules: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity violation was found."""
        return not self.errors

    def add(
        self,
        rule: str,
        subject: str,
        message: str,
        severity: Severity = Severity.ERROR,
        node_path: str = "",
    ) -> None:
        self.violations.append(
            Violation(rule, subject, message, severity, node_path)
        )

    def merge(self, other: "VerificationReport") -> None:
        self.violations.extend(other.violations)
        for rule in other.checked_rules:
            if rule not in self.checked_rules:
                self.checked_rules.append(rule)

    def format(self) -> str:
        lines = [
            f"verification of {self.target}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"({len(self.checked_rules)} rules checked)"
        ]
        for v in self.violations:
            lines.append(f"  {v.severity.value:7s} {v}")
        if not self.violations:
            lines.append("  clean")
        return "\n".join(lines)

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`PlanVerificationError` if any ERROR was found."""
        if not self.ok:
            raise PlanVerificationError(self)
        return self


class PlanVerificationError(Exception):
    """Raised when a plan (or source tree) fails verification.

    This is the single exception type downstream code catches for *all*
    verifier failures; the full report rides along as ``.report``.
    """

    def __init__(self, report: VerificationReport):
        self.report = report
        super().__init__(report.format())
