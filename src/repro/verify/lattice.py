"""The abstract domain of the privacy dataflow analyzer.

Three lattices, combined into one :class:`AbstractValue` per variable:

* :class:`TaintLabel` — where a value sits on the release ladder
  ``PUBLIC ⊑ RELEASED ⊑ NOISED ⊑ CLIPPED ⊑ RAW``. Values at or below
  ``NOISED`` may legally cross a release boundary (``output`` /
  ``declassify``); anything above is participant data that has not
  passed through a DP mechanism.
* :class:`Bounds` — a closed interval ``[lo, hi]`` used both for
  sensitivity bounds (how much one row can move a value, in L1/L∞) and
  for privacy-budget accounting. Budget sums use
  :func:`widened_add`, which rounds the endpoints *outward* by one ulp
  per addition, so the accumulated interval provably contains the exact
  real-number sum regardless of float rounding.
* :class:`SensitivityBounds` — the (L1, L∞) pair of :class:`Bounds`.
  The ``hi`` endpoints are computed with exactly the float operations
  (and operation order) of :class:`repro.privacy.certify.Certifier`, so
  on an untampered plan the derived upper bound is bit-identical to the
  sensitivity the certifier recorded — any discrepancy is a finding,
  not rounding noise.

The lattice is deliberately small: every join is a few comparisons, so
analyzing a plan costs microseconds and the planner can afford to run it
as a post-condition on every search result.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional


class TaintLabel(enum.Enum):
    """Release-ladder label; higher rank = more dangerous to release."""

    PUBLIC = 0  # no dependence on participant data
    RELEASED = 1  # mechanism output that already crossed a release boundary
    NOISED = 2  # mechanism output, not yet published
    CLIPPED = 3  # raw data with a finite, proven sensitivity bound
    RAW = 4  # raw data with unbounded (or unproven) sensitivity

    def join(self, other: "TaintLabel") -> "TaintLabel":
        return self if self.value >= other.value else other

    @property
    def releasable(self) -> bool:
        """May this value cross ``output``/``declassify``?"""
        return self.value <= TaintLabel.NOISED.value


@dataclass(frozen=True)
class Bounds:
    """A closed interval ``[lo, hi]`` with lo <= hi (inf allowed)."""

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"invalid bounds [{self.lo}, {self.hi}]")

    @classmethod
    def exact(cls, x: float) -> "Bounds":
        return cls(x, x)

    @classmethod
    def zero(cls) -> "Bounds":
        return _ZERO_BOUNDS

    @classmethod
    def unbounded(cls) -> "Bounds":
        return _UNBOUNDED_BOUNDS

    @property
    def is_finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def __add__(self, other: "Bounds") -> "Bounds":
        return Bounds(self.lo + other.lo, self.hi + other.hi)

    def join(self, other: "Bounds") -> "Bounds":
        """Least upper bound for worst-case quantities: both endpoints max."""
        return Bounds(max(self.lo, other.lo), max(self.hi, other.hi))

    def hull(self, other: "Bounds") -> "Bounds":
        """Convex hull (interval union) — for value ranges, not worst cases."""
        return Bounds(min(self.lo, other.lo), max(self.hi, other.hi))

    def scaled(self, lo_k: float, hi_k: float) -> "Bounds":
        """Scale by a magnitude interval [lo_k, hi_k] with 0 <= lo_k <= hi_k."""
        hi = self.hi * hi_k
        if math.isnan(hi):  # 0 * inf
            hi = 0.0 if self.hi == 0.0 else math.inf
        lo = self.lo * lo_k
        if math.isnan(lo):
            lo = 0.0
        return Bounds(lo, hi)

    def __str__(self) -> str:
        if self.is_point:
            return f"{self.hi:g}"
        return f"[{self.lo:g}, {self.hi:g}]"


# The analyzer constructs these constants in every transfer function;
# Bounds is frozen, so the instances are safely shared.
_ZERO_BOUNDS = Bounds(0.0, 0.0)
_UNBOUNDED_BOUNDS = Bounds(0.0, math.inf)


def widened_add(a: Bounds, b: Bounds) -> Bounds:
    """Interval sum with endpoints rounded outward by one ulp.

    Used by the budget accountant reconciliation: after n additions the
    returned interval contains the exact real sum of any per-term values
    inside the operand intervals, whatever IEEE-754 rounding did.
    """
    lo = a.lo + b.lo
    hi = a.hi + b.hi
    if math.isfinite(lo):
        lo = math.nextafter(lo, -math.inf)
    if math.isfinite(hi):
        hi = math.nextafter(hi, math.inf)
    return Bounds(lo, hi)


@dataclass(frozen=True)
class SensitivityBounds:
    """Interval bounds on the (L1, L∞) sensitivity of one value."""

    l1: Bounds
    linf: Bounds

    @classmethod
    def exact(cls, l1: float, linf: float) -> "SensitivityBounds":
        return cls(Bounds.exact(l1), Bounds.exact(linf))

    @classmethod
    def zero(cls) -> "SensitivityBounds":
        return _ZERO_SENS

    @classmethod
    def unbounded(cls) -> "SensitivityBounds":
        return _UNBOUNDED_SENS

    @property
    def is_finite(self) -> bool:
        return self.l1.is_finite and self.linf.is_finite

    def __add__(self, other: "SensitivityBounds") -> "SensitivityBounds":
        return SensitivityBounds(self.l1 + other.l1, self.linf + other.linf)

    def join(self, other: "SensitivityBounds") -> "SensitivityBounds":
        return SensitivityBounds(self.l1.join(other.l1), self.linf.join(other.linf))

    def scaled(self, lo_k: float, hi_k: float) -> "SensitivityBounds":
        return SensitivityBounds(
            self.l1.scaled(lo_k, hi_k), self.linf.scaled(lo_k, hi_k)
        )

    def __str__(self) -> str:
        return f"(l1={self.l1}, linf={self.linf})"


_ZERO_SENS = SensitivityBounds(_ZERO_BOUNDS, _ZERO_BOUNDS)
_UNBOUNDED_SENS = SensitivityBounds(_UNBOUNDED_BOUNDS, _UNBOUNDED_BOUNDS)


@dataclass(frozen=True)
class AbstractValue:
    """The analyzer's knowledge about one value.

    ``sensitive``/``released`` mirror the certifier's taint flags exactly
    (the label is derived from them), ``sensitivity`` carries the interval
    bounds, ``clip`` the tightest clip window the value passed through
    (None if never clipped), and ``sample_phi`` the sampling fraction if
    the value flowed through ``sampleUniform``.
    """

    sensitive: bool = False
    released: bool = False
    sensitivity: SensitivityBounds = field(default_factory=SensitivityBounds.zero)
    clip: Optional[Bounds] = None
    sample_phi: Optional[float] = None

    @classmethod
    def public(cls) -> "AbstractValue":
        return _PUBLIC

    @property
    def label(self) -> TaintLabel:
        if not self.sensitive:
            return TaintLabel.PUBLIC
        if self.released:
            return TaintLabel.NOISED
        if self.sensitivity.is_finite:
            return TaintLabel.CLIPPED
        return TaintLabel.RAW

    def join(self, other: "AbstractValue") -> "AbstractValue":
        # Mirrors certify.Taint.join: a joined value is released iff every
        # *sensitive* constituent has been released.
        phi = None
        if self.sample_phi is not None or other.sample_phi is not None:
            phi = max(self.sample_phi or 0.0, other.sample_phi or 0.0) or None
        sensitive = self.sensitive or other.sensitive
        released = sensitive and all(
            v.released for v in (self, other) if v.sensitive
        )
        clip = None
        if self.clip is not None and other.clip is not None:
            clip = self.clip.join(other.clip)
        return AbstractValue(
            sensitive=sensitive,
            released=released,
            sensitivity=self.sensitivity.join(other.sensitivity),
            clip=clip,
            sample_phi=phi,
        )

    def with_sensitivity(self, sens: SensitivityBounds) -> "AbstractValue":
        return replace(self, sensitivity=sens)

    def effective(self) -> "AbstractValue":
        """Released values behave as public in further computation."""
        if self.released:
            return AbstractValue.public()
        return self


_PUBLIC = AbstractValue()
