"""Machine-checkable privacy certificates for analyzed plans.

The dataflow analyzer (:mod:`repro.verify.dataflow`) distills each clean
analysis into a :class:`PrivacyCertificate`: one :class:`NodeCertificate`
per release point with its taint label, proven sensitivity interval, the
noise scale it was proven against, and its (ε, δ) charge interval, plus
outward-rounded budget totals that must contain the accountant's number.

The certificate is a plain dict-of-scalars document so it can travel
alongside the serialized plan (``planner.serialize`` embeds it) and be
re-checked without importing the analyzer: :func:`PrivacyCertificate.
digest` hashes the canonical JSON form, and the executor refuses to run a
plan whose attached certificate digest does not match a fresh re-analysis
(a tampered plan or a stale certificate both fail closed).

The future rewrite engine consumes certificates the same way: a rewrite
is privacy-preserving iff the rewritten plan re-analyzes to a certificate
whose per-node charges are pointwise <= the original's totals.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .lattice import Bounds

#: Bumped whenever the certificate schema or the analysis semantics
#: change, so stale serialized certificates fail digest comparison loudly.
CERTIFICATE_VERSION = 1


def _num(x: float) -> Any:
    """JSON-safe float (inf/nan have no JSON literal)."""
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if math.isnan(x):
        return "nan"
    return x


def _unnum(x: Any) -> float:
    if isinstance(x, str):
        return float(x)
    return float(x)


def _bounds_to_list(b: Bounds) -> List[Any]:
    return [_num(b.lo), _num(b.hi)]


def _bounds_from_list(raw) -> Bounds:
    return Bounds(_unnum(raw[0]), _unnum(raw[1]))


@dataclass(frozen=True)
class NodeCertificate:
    """The proof obligations discharged at one release point."""

    node_path: str  # e.g. "post[2]:line 3" or "ops[4]:noise_output"
    mechanism: str  # "laplace" | "em" | "manual"
    label: str  # TaintLabel name of the value entering the mechanism
    sensitivity_l1: Bounds
    sensitivity_linf: Bounds
    noise_scale: Optional[Bounds]  # proven scale interval (laplace), None for em
    epsilon: Bounds
    delta: Bounds
    k: int = 1
    sample_phi: Optional[float] = None
    multiplicity: int = 1  # loop multiplier folded into epsilon/delta

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "node_path": self.node_path,
            "mechanism": self.mechanism,
            "label": self.label,
            "sensitivity_l1": _bounds_to_list(self.sensitivity_l1),
            "sensitivity_linf": _bounds_to_list(self.sensitivity_linf),
            "epsilon": _bounds_to_list(self.epsilon),
            "delta": _bounds_to_list(self.delta),
            "k": self.k,
            "multiplicity": self.multiplicity,
        }
        out["noise_scale"] = (
            _bounds_to_list(self.noise_scale) if self.noise_scale else None
        )
        out["sample_phi"] = _num(self.sample_phi) if self.sample_phi else None
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "NodeCertificate":
        return cls(
            node_path=raw["node_path"],
            mechanism=raw["mechanism"],
            label=raw["label"],
            sensitivity_l1=_bounds_from_list(raw["sensitivity_l1"]),
            sensitivity_linf=_bounds_from_list(raw["sensitivity_linf"]),
            noise_scale=(
                _bounds_from_list(raw["noise_scale"])
                if raw.get("noise_scale")
                else None
            ),
            epsilon=_bounds_from_list(raw["epsilon"]),
            delta=_bounds_from_list(raw["delta"]),
            k=int(raw.get("k", 1)),
            sample_phi=(
                _unnum(raw["sample_phi"]) if raw.get("sample_phi") else None
            ),
            multiplicity=int(raw.get("multiplicity", 1)),
        )


@dataclass(frozen=True)
class PrivacyCertificate:
    """One plan's machine-checkable privacy proof summary."""

    query_name: str
    nodes: Tuple[NodeCertificate, ...]
    total_epsilon: Bounds  # outward-rounded sum of node epsilons
    total_delta: Bounds
    claimed_epsilon: float  # the accountant-facing certificate totals
    claimed_delta: float
    analysis: str = "dataflow"  # "dataflow" | "manual"
    version: int = CERTIFICATE_VERSION
    checked_rules: Tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "analysis": self.analysis,
            "query_name": self.query_name,
            "nodes": [node.to_dict() for node in self.nodes],
            "total_epsilon": _bounds_to_list(self.total_epsilon),
            "total_delta": _bounds_to_list(self.total_delta),
            "claimed_epsilon": _num(self.claimed_epsilon),
            "claimed_delta": _num(self.claimed_delta),
            "checked_rules": list(self.checked_rules),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "PrivacyCertificate":
        return cls(
            query_name=raw["query_name"],
            nodes=tuple(NodeCertificate.from_dict(n) for n in raw["nodes"]),
            total_epsilon=_bounds_from_list(raw["total_epsilon"]),
            total_delta=_bounds_from_list(raw["total_delta"]),
            claimed_epsilon=_unnum(raw["claimed_epsilon"]),
            claimed_delta=_unnum(raw["claimed_delta"]),
            analysis=raw.get("analysis", "dataflow"),
            version=int(raw.get("version", CERTIFICATE_VERSION)),
            checked_rules=tuple(raw.get("checked_rules", ())),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest_bytes(self) -> bytes:
        return hashlib.sha256(self.canonical_json().encode("utf-8")).digest()

    def digest(self) -> str:
        return self.digest_bytes().hex()

    def format(self) -> str:
        lines = [
            f"privacy certificate for {self.query_name!r} "
            f"({self.analysis} analysis, v{self.version}, "
            f"digest {self.digest()[:16]}...)"
        ]
        for node in self.nodes:
            scale = f", scale {node.noise_scale}" if node.noise_scale else ""
            phi = f", phi={node.sample_phi:g}" if node.sample_phi else ""
            mult = f" x{node.multiplicity}" if node.multiplicity > 1 else ""
            lines.append(
                f"  {node.node_path}: {node.mechanism}{mult} on {node.label} "
                f"value, sens l1={node.sensitivity_l1} "
                f"linf={node.sensitivity_linf}{scale}{phi} "
                f"-> eps {node.epsilon}, delta {node.delta}"
            )
        lines.append(
            f"  total: eps {self.total_epsilon} (claimed "
            f"{self.claimed_epsilon:g}), delta {self.total_delta} "
            f"(claimed {self.claimed_delta:.3e})"
        )
        return "\n".join(lines)
