"""The invariant catalog the plan verifier enforces.

Each :class:`Invariant` names one property every plan the planner emits
must satisfy, with the paper section it comes from. The checks themselves
live in :mod:`repro.verify.plan_checker`; this module is the single place
that documents *what* is checked, so the CLI, the docs, and the tests can
enumerate the catalog without duplicating prose.

Rule groups:

* ``ssa-*``  — def-before-use and pipeline shape on the lowered IR (§4.3)
* ``ty-*``   — type/range consistency between IR, environment and plan (§4.4)
* ``enc-*``  — encryption-type soundness (§4.5, §6)
* ``dp-*``   — differential-privacy soundness (§4.2)
* ``com-*``  — committee feasibility (§5.1-§5.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from .report import Severity

#: Vignettes that legitimately run in the clear: proof verification and
#: mailbox forwarding see only ciphertexts-as-bytes and ZKPs, and
#: postprocess/publish see only already-released mechanism outputs (§4.5).
CLEAR_ALLOWED: FrozenSet[str] = frozenset(
    {"verify", "forwarding", "postprocess", "publish"}
)

#: Vignette names that realize a DP mechanism (Gumbel/Laplace noising and
#: the FHE exponential mechanism); a release must be dominated by one.
MECHANISM_VIGNETTES: FrozenSet[str] = frozenset(
    {"em-expo", "em-noise", "em-argmax", "noise-output"}
)

#: The multiplicative depth budget the planner provisions FHE schemes for
#: (expand.py instantiates ``fhe_params_for(packed, depth=6)``).
PLANNER_FHE_DEPTH = 6


@dataclass(frozen=True)
class Invariant:
    """One verifiable property of a concrete plan."""

    rule: str
    title: str
    paper_ref: str
    description: str
    severity: Severity = Severity.ERROR


INVARIANTS: Tuple[Invariant, ...] = (
    # ------------------------------------------------------------ SSA / IR
    Invariant(
        "ssa-def-before-use",
        "Post-aggregate statements use only defined variables",
        "§4.3",
        "Every variable read in the committee-interpreted statement list is "
        "the aggregate variable, a predefined scalar (epsilon/sens/N), an "
        "environment constant, or was assigned earlier in the block.",
    ),
    Invariant(
        "ssa-pipeline-order",
        "Logical ops appear in pipeline order",
        "§4.3",
        "EncryptInput precedes Aggregate, every mechanism op follows the "
        "Aggregate, and the Output op follows at least one mechanism op.",
    ),
    Invariant(
        "ty-ranges",
        "IR operand ranges match the environment",
        "§4.4",
        "EncryptInput/Aggregate widths equal the environment row width, "
        "participant counts match, and mechanism arities (k, count, length) "
        "are positive and within the aggregate's width.",
    ),
    Invariant(
        "ty-scheme-consistent",
        "Plan scheme re-derives from its choices",
        "§4.5, §6",
        "Recomputing the §4.5 cryptosystem rule from the plan's choice list "
        "(FHE iff some stage needs more than additions) reproduces the "
        "plan's SchemeParams, and the input vignette uploads exactly "
        "ceil(packed_width / slots) ciphertexts.",
    ),
    Invariant(
        "choice-legal",
        "Every choice is drawn from the op's legal option set",
        "§4.3",
        "Re-enumerating the choice space of the logical plan yields every "
        "choice recorded in the plan (no out-of-grid fanouts or batch "
        "sizes, no option applied to the wrong operator).",
    ),
    # ---------------------------------------------------------- encryption
    Invariant(
        "enc-no-clear-secrets",
        "No plaintext crosses a vignette boundary",
        "§4.5",
        "Only proof-verification, forwarding, postprocess and publish "
        "vignettes may run in the clear; every stage that touches "
        "db-derived values is AHE/FHE/TFHE/MPC.",
    ),
    Invariant(
        "enc-decrypt-in-committee",
        "Decryption happens only inside decryption committees",
        "§4.5, §5.2",
        "Every vignette performing threshold decryptions runs at a "
        "COMMITTEE location with committee_type='decryption'; the "
        "aggregator and participants never hold key shares.",
    ),
    Invariant(
        "enc-ahe-depth",
        "AHE stages never exceed additive depth",
        "§4.5, §6",
        "Under an AHE (depth-0 BGV) scheme no vignette performs ciphertext "
        "multiplications, exponentiations or comparisons, and no vignette "
        "is marked 'fhe'.",
    ),
    Invariant(
        "enc-bgv-budget",
        "FHE parameters cover the circuit's noise budget",
        "§6",
        "An FHE plan's ciphertext modulus is at least what "
        "BGVParams.for_depth requires for the planner's depth budget, and "
        "the ring degree meets the HE-standard security table for that "
        "modulus size.",
    ),
    Invariant(
        "enc-no-he-after-share",
        "No homomorphic stage after the data is secret-shared",
        "§4.5",
        "Once a decryption-type committee has turned the aggregate into "
        "MPC sharings, no later aggregator vignette operates on AHE/FHE "
        "ciphertexts of it.",
    ),
    # ------------------------------------------------------------------ DP
    Invariant(
        "dp-noise-dominates-output",
        "Every output is dominated by a noise op",
        "§4.2",
        "Each Output op in the IR is preceded by a SelectMax or "
        "NoiseOutput op, and the publish vignette runs after at least one "
        "mechanism vignette — declassification only post-noise.",
    ),
    Invariant(
        "dp-epsilon-matches",
        "Re-derived (ε, δ) matches the certificate",
        "§4.2",
        "Summing the certificate's mechanism applications reproduces its "
        "total privacy cost, and the mechanism kinds match the IR's "
        "mechanism ops (unless the certificate is analyst-supplied).",
    ),
    Invariant(
        "dp-budget-afford",
        "The accountant can afford the plan",
        "§5.2",
        "When an accountant ledger is supplied, the certificate's total "
        "cost fits the remaining budget (the keygen committee's check, "
        "replayed statically).",
    ),
    # ---------------------------------------------------------- committees
    Invariant(
        "com-tail-bound",
        "Committee size satisfies the binomial tail bound",
        "§5.1",
        "committee_failure_probability(m, c, f, g) <= the per-round "
        "failure budget for the plan's committee count — the sizing "
        "inequality of §5.1, re-evaluated.",
    ),
    Invariant(
        "com-count-covers-plan",
        "Sized committee count covers the vignettes",
        "§5.1",
        "The CommitteeParameters were computed for at least as many "
        "committees as the vignette sequence actually uses.",
    ),
    Invariant(
        "com-keygen-unique",
        "Exactly one keygen committee, in MPC",
        "§5.2",
        "The plan has exactly one keygen vignette; it runs at a COMMITTEE "
        "location in MPC with committee_type='keygen'.",
    ),
    Invariant(
        "com-fanin-capacity",
        "Vignette fan-in fits committee capacity",
        "§4.3, §5.1",
        "Tree fanouts, MPC batch sizes and decryption batches recorded in "
        "the plan's choices stay within the planner's parameter grids, so "
        "no committee is asked to combine more inputs than a committee of "
        "size m can process.",
    ),
    Invariant(
        "com-staffing",
        "Enough devices to staff all committees",
        "§5.1",
        "num_committees * m should not exceed the participant population; "
        "small-scale simulations may exceed it (devices serve on several "
        "committees), so this is a warning, not an error.",
        severity=Severity.WARNING,
    ),
)

INVARIANTS_BY_RULE: Dict[str, Invariant] = {inv.rule: inv for inv in INVARIANTS}

#: The semantic rules of the privacy dataflow analyzer (PR 6). Kept in a
#: separate catalog from the syntactic plan invariants above: the plan
#: checker enumerates INVARIANTS, the dataflow pass enumerates these, and
#: the CLI/docs can print both without either checker claiming the
#: other's rules as "checked".
DATAFLOW_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "df-taint-release",
        "No un-noised value crosses a release boundary",
        "§4.2",
        "Abstract interpretation of the post-aggregate statements proves "
        "every value reaching output()/declassify() carries a NOISED (or "
        "PUBLIC) taint label; a RAW or CLIPPED label at a release point is "
        "a hard error, even when the op-level IR looks well-formed.",
    ),
    Invariant(
        "df-noise-scale",
        "Every noise scale is sufficient for the proven sensitivity",
        "§4.2",
        "At each laplace node the recorded ε must cover l1_hi/scale_lo "
        "(sensitivity interval over the proven scale interval, sampling- "
        "amplified and loop-multiplied); at each em node the environment "
        "sensitivity that sizes the runtime noise must cover the derived "
        "L∞ bound. Presence of a mechanism is not enough — the scale must "
        "be proven sufficient.",
    ),
    Invariant(
        "df-sensitivity-certified",
        "Recorded sensitivities dominate the derived intervals",
        "§4.2",
        "Each mechanism use's recorded sensitivity must be >= the "
        "interval the dataflow pass derives for the value actually "
        "flowing into it — a clip() dropped by a rewrite, or a scaling "
        "inserted after certification, shows up here.",
    ),
    Invariant(
        "df-budget-interval",
        "Budget accounting reconciles within a proven interval",
        "§4.2, §5.2",
        "The derived mechanism-use sequence must match the certificate's "
        "recorded uses one-for-one (kind, k, count, δ), and the claimed "
        "total (ε, δ) must dominate the outward-rounded interval sum of "
        "the per-node charges — catching double-spends and unrecorded "
        "releases that leave the per-use sum internally consistent.",
    ),
    Invariant(
        "df-sampling-amplification",
        "Amplification is claimed only when the plan samples",
        "§2.1, §6",
        "A recorded use may claim a sampling fraction φ < 1 only when the "
        "IR's EncryptInput op actually activates the oblivious "
        "bin-sampling layout with that fraction.",
    ),
    Invariant(
        "df-certificate-stale",
        "An attached PrivacyCertificate matches a fresh re-analysis",
        "§5.2",
        "The executor re-analyzes the plan and compares digests; a "
        "serialized certificate that no longer matches the plan it rides "
        "with fails closed.",
    ),
    Invariant(
        "df-analysis-incomplete",
        "The analyzer covered every statement it was given",
        "§4.2",
        "Statement or expression forms the abstract interpreter cannot "
        "model make the analysis fail closed rather than silently "
        "under-approximate.",
    ),
    Invariant(
        "df-manual-certificate",
        "Analyst-supplied certificates are flagged, not re-proven",
        "§4.2",
        "A manual (CertiPriv-style) certificate skips the taint and "
        "budget re-derivation; the certificate is marked as asserted so "
        "downstream consumers know the proof burden lies with the "
        "analyst.",
        severity=Severity.WARNING,
    ),
)

DATAFLOW_BY_RULE: Dict[str, Invariant] = {
    inv.rule: inv for inv in DATAFLOW_INVARIANTS
}


def catalog_text() -> str:
    """Human-readable invariant catalog (the CLI's --list-invariants)."""
    lines = []
    for inv in INVARIANTS:
        lines.append(f"{inv.rule:26s} {inv.paper_ref:12s} {inv.title}")
    return "\n".join(lines)
