"""Static plan verification and privacy-invariant source lint.

Two halves (see docs/ARCHITECTURE.md, "Plan verification"):

* :func:`verify_plan` / :func:`verify_planning_result` statically re-check
  a concrete plan against the invariant catalog in
  :mod:`repro.verify.invariants` — IR well-formedness, encryption-type
  soundness, DP soundness, committee feasibility — without executing any
  cryptography.
* :func:`lint_paths` runs the repo-specific ``ast`` linter
  (:mod:`repro.verify.source_lint`) over source trees.

Both report through :class:`VerificationReport`; raising callers get a
single exception type, :class:`PlanVerificationError`.

PR 6 adds the semantic third: :func:`analyze_planning_result` runs the
privacy dataflow analyzer (:mod:`repro.verify.dataflow`) — abstract
interpretation over the plan IR with a taint lattice, sensitivity
intervals, and interval budget accounting — and distills clean analyses
into a machine-checkable :class:`PrivacyCertificate`.
"""

from .certificate import NodeCertificate, PrivacyCertificate
from .dataflow import (
    DataflowAnalyzer,
    analyze_logical_plan,
    analyze_planning_result,
)
from .invariants import (
    DATAFLOW_BY_RULE,
    DATAFLOW_INVARIANTS,
    INVARIANTS,
    INVARIANTS_BY_RULE,
    Invariant,
    catalog_text,
)
from .lattice import AbstractValue, Bounds, SensitivityBounds, TaintLabel
from .plan_checker import PlanChecker, verify_plan, verify_planning_result
from .report import (
    PlanVerificationError,
    Severity,
    VerificationReport,
    Violation,
)
from .source_lint import LINT_RULES, LintRule, SourceLinter, lint_paths

__all__ = [
    "AbstractValue",
    "Bounds",
    "DATAFLOW_BY_RULE",
    "DATAFLOW_INVARIANTS",
    "DataflowAnalyzer",
    "INVARIANTS",
    "INVARIANTS_BY_RULE",
    "Invariant",
    "LINT_RULES",
    "LintRule",
    "NodeCertificate",
    "PlanChecker",
    "PlanVerificationError",
    "PrivacyCertificate",
    "Severity",
    "SensitivityBounds",
    "SourceLinter",
    "TaintLabel",
    "VerificationReport",
    "Violation",
    "analyze_logical_plan",
    "analyze_planning_result",
    "catalog_text",
    "lint_paths",
    "verify_plan",
    "verify_planning_result",
]
