"""Static plan verification and privacy-invariant source lint.

Two halves (see docs/ARCHITECTURE.md, "Plan verification"):

* :func:`verify_plan` / :func:`verify_planning_result` statically re-check
  a concrete plan against the invariant catalog in
  :mod:`repro.verify.invariants` — IR well-formedness, encryption-type
  soundness, DP soundness, committee feasibility — without executing any
  cryptography.
* :func:`lint_paths` runs the repo-specific ``ast`` linter
  (:mod:`repro.verify.source_lint`) over source trees.

Both report through :class:`VerificationReport`; raising callers get a
single exception type, :class:`PlanVerificationError`.
"""

from .invariants import INVARIANTS, INVARIANTS_BY_RULE, Invariant, catalog_text
from .plan_checker import PlanChecker, verify_plan, verify_planning_result
from .report import (
    PlanVerificationError,
    Severity,
    VerificationReport,
    Violation,
)
from .source_lint import LINT_RULES, LintRule, SourceLinter, lint_paths

__all__ = [
    "INVARIANTS",
    "INVARIANTS_BY_RULE",
    "Invariant",
    "LINT_RULES",
    "LintRule",
    "PlanChecker",
    "PlanVerificationError",
    "Severity",
    "SourceLinter",
    "VerificationReport",
    "Violation",
    "catalog_text",
    "lint_paths",
    "verify_plan",
    "verify_planning_result",
]
