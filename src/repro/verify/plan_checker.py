"""Static verification of concrete plans (the belt to the planner's braces).

``verify_plan`` takes a scored :class:`~repro.planner.plan.Plan`, the
lowered :class:`~repro.planner.ir.LogicalPlan` it was instantiated from,
and the privacy :class:`~repro.privacy.certify.Certificate`, and re-checks
every invariant in :mod:`repro.verify.invariants` without executing any
cryptography. The planner's search and expansion code *should* only
produce plans that pass; the point of this pass is that a scoring bug, an
expansion rewrite, or a tampered plan object is caught before the runtime
spends real committees on it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

from ..lang.ast import (
    Assign,
    ExprStmt,
    For,
    If,
    IndexAssign,
    Stmt,
    Var,
    DB_NAME,
    walk_expr,
)
from ..crypto.bgv import min_ring_degree_log2
from ..planner.committees import committee_failure_probability
from ..planner.costmodel import ahe_params_for, fhe_params_for
from ..planner.expand import (
    ARGMAX_FANOUTS,
    Choice,
    DEC_BATCH_SIZES,
    MPC_BATCH_SIZES,
    NOISE_BATCH_SIZES,
    SAMPLE_BIN_CHOICES,
    TREE_FANOUTS,
    _needs_fhe,
    choice_space,
)
from ..planner.ir import (
    Aggregate,
    EncryptInput,
    LogicalPlan,
    NoiseOutput,
    Output,
    SelectMax,
    VectorTransform,
)
from ..planner.plan import Location, Plan, count_committees
from ..privacy.accountant import PrivacyAccountant, PrivacyCost
from ..privacy.certify import Certificate
from .invariants import (
    CLEAR_ALLOWED,
    INVARIANTS_BY_RULE,
    MECHANISM_VIGNETTES,
    PLANNER_FHE_DEPTH,
)
from .report import Severity, VerificationReport

#: Plaintext modulus the BGV noise model assumes (§6: summing binary values
#: over ~10^9 users needs ~2^30); per-level modulus consumption follows
#: :meth:`repro.crypto.bgv.BGVParams.max_levels`.
_PLAINTEXT_BITS = 31
_PER_LEVEL_BITS = _PLAINTEXT_BITS + 20
_NOISE_FLOOR_BITS = 30

#: Relative tolerance when comparing re-derived (ε, δ) with the certificate.
_EPS_TOL = 1e-9


def _rel_close(a: float, b: float) -> bool:
    return abs(a - b) <= _EPS_TOL * max(abs(a), abs(b), 1.0)


class PlanChecker:
    """One verification run over one (plan, logical plan, certificate)."""

    def __init__(
        self,
        plan: Plan,
        logical: LogicalPlan,
        certificate: Optional[Certificate] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ):
        self.plan = plan
        self.logical = logical
        self.certificate = certificate or logical.certificate
        self.accountant = accountant
        self.report = VerificationReport(target=f"plan for {plan.query_name!r}")

    # ------------------------------------------------------------- plumbing

    def _fail(
        self, rule: str, subject: str, message: str, node_path: str = ""
    ) -> None:
        severity = INVARIANTS_BY_RULE[rule].severity
        # Every finding carries a plan-node path so tooling (and humans
        # reading `repro verify-plan` output) can jump straight to the
        # offending IR op, vignette, or post-aggregate statement.
        self.report.add(rule, subject, message, severity, node_path=node_path or subject)

    def _checked(self, rule: str) -> None:
        if rule not in self.report.checked_rules:
            self.report.checked_rules.append(rule)

    def check(self) -> VerificationReport:
        for method in (
            self.check_ssa_def_before_use,
            self.check_pipeline_order,
            self.check_ranges,
            self.check_scheme_consistent,
            self.check_choices_legal,
            self.check_no_clear_secrets,
            self.check_decrypt_in_committee,
            self.check_ahe_depth,
            self.check_bgv_budget,
            self.check_no_he_after_share,
            self.check_noise_dominates_output,
            self.check_epsilon_matches,
            self.check_budget_afford,
            self.check_committee_tail_bound,
            self.check_committee_count,
            self.check_keygen_unique,
            self.check_fanin_capacity,
            self.check_staffing,
        ):
            method()
        return self.report

    # ------------------------------------------------------------- SSA / IR

    def check_ssa_def_before_use(self) -> None:
        """ssa-def-before-use: reads in the post-aggregate block resolve."""
        self._checked("ssa-def-before-use")
        defined: Set[str] = {DB_NAME, "epsilon", "sens", "N"}
        defined.update(self.logical.env.constants)
        if self.logical.aggregate_var:
            defined.add(self.logical.aggregate_var)
        self._walk_block(self.logical.post_statements, defined)

    def _walk_block(self, statements: Sequence[Stmt], defined: Set[str]) -> None:
        for stmt in statements:
            if isinstance(stmt, Assign):
                self._check_reads(stmt.value, defined, stmt)
                defined.add(stmt.var)
            elif isinstance(stmt, IndexAssign):
                self._check_reads(stmt.index, defined, stmt)
                self._check_reads(stmt.value, defined, stmt)
                defined.add(stmt.var)
            elif isinstance(stmt, ExprStmt):
                self._check_reads(stmt.expr, defined, stmt)
            elif isinstance(stmt, For):
                self._check_reads(stmt.start, defined, stmt)
                self._check_reads(stmt.end, defined, stmt)
                defined.add(stmt.var)
                self._walk_block(stmt.body, defined)
            elif isinstance(stmt, If):
                self._check_reads(stmt.cond, defined, stmt)
                # Union of branch definitions: a name defined in either
                # branch may be read afterwards (the interpreter initializes
                # both paths), so only flag reads of names defined nowhere.
                then_defs = set(defined)
                else_defs = set(defined)
                self._walk_block(stmt.then_body, then_defs)
                self._walk_block(stmt.else_body, else_defs)
                defined |= then_defs | else_defs

    def _check_reads(self, expr, defined: Set[str], stmt: Stmt) -> None:
        for node in walk_expr(expr):
            if isinstance(node, Var) and node.name not in defined:
                self._fail(
                    "ssa-def-before-use",
                    f"line {stmt.line}",
                    f"variable {node.name!r} is read before any definition "
                    f"(aggregate variable is "
                    f"{self.logical.aggregate_var!r})",
                    node_path=f"post:line {stmt.line}",
                )
                defined.add(node.name)  # report each undefined name once

    def check_pipeline_order(self) -> None:
        """ssa-pipeline-order: input -> aggregate -> mechanisms -> output."""
        self._checked("ssa-pipeline-order")
        ops = self.logical.ops
        input_idx = [i for i, op in enumerate(ops) if isinstance(op, EncryptInput)]
        agg_idx = [i for i, op in enumerate(ops) if isinstance(op, Aggregate)]
        mech_idx = [
            i for i, op in enumerate(ops) if isinstance(op, (SelectMax, NoiseOutput))
        ]
        if not input_idx or not agg_idx:
            self._fail(
                "ssa-pipeline-order",
                "ops",
                "logical plan lacks an EncryptInput/Aggregate pair",
                node_path="logical.ops",
            )
            return
        if min(agg_idx) < min(input_idx):
            self._fail(
                "ssa-pipeline-order",
                f"aggregate[{min(agg_idx)}]",
                "Aggregate appears before EncryptInput",
                node_path=f"ops[{min(agg_idx)}]",
            )
        for i in mech_idx:
            if i < min(agg_idx):
                self._fail(
                    "ssa-pipeline-order",
                    f"{ops[i].name}[{i}]",
                    "mechanism op appears before the Aggregate",
                    node_path=f"ops[{i}]",
                )

    def check_ranges(self) -> None:
        """ty-ranges: IR operand shapes agree with the environment."""
        self._checked("ty-ranges")
        env = self.logical.env
        for i, op in enumerate(self.logical.ops):
            subject = f"{op.name}[{i}]"
            if isinstance(op, EncryptInput):
                if op.categories != env.row_width:
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"input width {op.categories} != environment row "
                        f"width {env.row_width}",
                    )
                if op.sample_bins < 1 or not 0.0 < op.sample_fraction <= 1.0:
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"invalid sampling layout (bins={op.sample_bins}, "
                        f"fraction={op.sample_fraction})",
                    )
            elif isinstance(op, Aggregate):
                if op.num_participants != env.num_participants:
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"aggregate over {op.num_participants} participants "
                        f"!= environment N {env.num_participants}",
                    )
                if op.categories != env.row_width:
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"aggregate width {op.categories} != row width "
                        f"{env.row_width}",
                    )
            elif isinstance(op, SelectMax):
                if op.categories < 1 or not 1 <= op.k <= max(op.categories, 1):
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"select_max over {op.categories} categories with "
                        f"k={op.k} is out of range",
                    )
            elif isinstance(op, NoiseOutput):
                if op.count < 1:
                    self._fail(
                        "ty-ranges", subject, f"noise op releases {op.count} values"
                    )
            elif isinstance(op, VectorTransform):
                if op.length < 1 or op.linear_ops < 0 or op.nonlinear_ops < 0:
                    self._fail(
                        "ty-ranges",
                        subject,
                        f"transform of length {op.length} with "
                        f"{op.linear_ops}/{op.nonlinear_ops} linear/nonlinear "
                        "ops is malformed",
                    )
            elif isinstance(op, Output):
                if op.values < 1:
                    self._fail(
                        "ty-ranges", subject, f"output publishes {op.values} values"
                    )

    # ----------------------------------------------------- scheme / choices

    def _choice_list(self) -> List[Choice]:
        return [c for c in self.plan.choice_list if isinstance(c, Choice)]

    def check_scheme_consistent(self) -> None:
        """ty-scheme-consistent: the §4.5 scheme rule re-derives the params."""
        self._checked("ty-scheme-consistent")
        choices = self._choice_list()
        scheme = self.plan.scheme
        if len(choices) != len(self.logical.ops):
            self.report.add(
                "ty-scheme-consistent",
                "choices",
                f"plan records {len(choices)} structured choices for "
                f"{len(self.logical.ops)} logical ops; cannot re-derive the "
                "scheme",
                Severity.WARNING,
            )
            return
        bins = 1
        for op, choice in zip(self.logical.ops, choices):
            if isinstance(op, EncryptInput) and choice.option == "binned_upload":
                bins = choice.params[0]
        packed = max(self.logical.env.row_width, 1) * bins
        use_fhe = _needs_fhe(self.logical.ops, choices)
        expected = (
            fhe_params_for(packed, depth=PLANNER_FHE_DEPTH)
            if use_fhe
            else ahe_params_for(packed)
        )
        if (scheme.name, scheme.ring_log2, scheme.ciphertext_modulus_bits) != (
            expected.name,
            expected.ring_log2,
            expected.ciphertext_modulus_bits,
        ):
            self._fail(
                "ty-scheme-consistent",
                "scheme",
                f"plan carries {scheme.name} (ring 2^{scheme.ring_log2}, "
                f"{scheme.ciphertext_modulus_bits}-bit modulus) but its "
                f"choices re-derive to {expected.name} (ring "
                f"2^{expected.ring_log2}, "
                f"{expected.ciphertext_modulus_bits}-bit modulus)",
            )
            return
        expected_cts = max(1, math.ceil(packed / scheme.slots))
        for v in self.plan.vignettes:
            if v.name == "input" and v.work.he_encryptions != expected_cts:
                self._fail(
                    "ty-scheme-consistent",
                    "vignette 'input'",
                    f"uploads {v.work.he_encryptions:g} ciphertexts; packed "
                    f"width {packed} over {scheme.slots} slots needs "
                    f"{expected_cts}",
                )

    def check_choices_legal(self) -> None:
        """choice-legal: each recorded choice is in the op's option set."""
        self._checked("choice-legal")
        choices = self._choice_list()
        if not choices:
            self.report.add(
                "choice-legal",
                "choices",
                "plan has no structured choice list; skipping legality check",
                Severity.WARNING,
            )
            return
        space = choice_space(self.logical)
        if len(choices) != len(space):
            self._fail(
                "choice-legal",
                "choices",
                f"{len(choices)} choices recorded for {len(space)} "
                "choice-space slots",
            )
            return
        for (op, options), choice in zip(space, choices):
            if choice not in options:
                self._fail(
                    "choice-legal",
                    choice.key,
                    f"choice {choice.label()} is not among the "
                    f"{len(options)} legal instantiations of op {op.name!r}",
                )

    # ----------------------------------------------------------- encryption

    def check_no_clear_secrets(self) -> None:
        """enc-no-clear-secrets: cleartext vignettes are allowlisted."""
        self._checked("enc-no-clear-secrets")
        for v in self.plan.vignettes:
            if v.crypto == "clear" and v.name not in CLEAR_ALLOWED:
                self._fail(
                    "enc-no-clear-secrets",
                    f"vignette {v.name!r}",
                    f"runs in the clear at {v.location.value}; only "
                    f"{sorted(CLEAR_ALLOWED)} may (db-derived values must "
                    "stay in AHE/FHE/TFHE/MPC, §4.5)",
                )

    def check_decrypt_in_committee(self) -> None:
        """enc-decrypt-in-committee: threshold decryption stays in committees."""
        self._checked("enc-decrypt-in-committee")
        for v in self.plan.vignettes:
            if v.work.dist_decryptions <= 0:
                continue
            if v.location is not Location.COMMITTEE:
                self._fail(
                    "enc-decrypt-in-committee",
                    f"vignette {v.name!r}",
                    f"performs {v.work.dist_decryptions:g} threshold "
                    f"decryptions at {v.location.value}; decryption is only "
                    "legal inside a committee (§5.2)",
                )
            elif v.committee_type != "decryption":
                self._fail(
                    "enc-decrypt-in-committee",
                    f"vignette {v.name!r}",
                    f"decrypts but is typed {v.committee_type!r}; key shares "
                    "only travel to committee_type='decryption' committees",
                )

    def check_ahe_depth(self) -> None:
        """enc-ahe-depth: additive-only schemes see additive-only work."""
        self._checked("enc-ahe-depth")
        if self.plan.scheme.name != "ahe":
            return
        for v in self.plan.vignettes:
            if v.crypto == "fhe":
                self._fail(
                    "enc-ahe-depth",
                    f"vignette {v.name!r}",
                    "is marked FHE but the plan's scheme is depth-0 AHE",
                )
            mults = (
                v.work.he_ct_mults
                + v.work.he_exponentiations
                + v.work.he_comparisons
            )
            if mults > 0:
                self._fail(
                    "enc-ahe-depth",
                    f"vignette {v.name!r}",
                    f"performs {mults:g} multiplicative HE ops under an AHE "
                    "scheme, which only supports additions (§4.5)",
                )

    def check_bgv_budget(self) -> None:
        """enc-bgv-budget: modulus/ring cover the noise budget and security."""
        self._checked("enc-bgv-budget")
        scheme = self.plan.scheme
        if scheme.ciphertext_modulus_bits < 60:
            self._fail(
                "enc-bgv-budget",
                "scheme",
                f"{scheme.ciphertext_modulus_bits}-bit modulus cannot even "
                "hold a depth-0 aggregate of a ~2^30 plaintext (needs >= 60)",
            )
        if scheme.name != "fhe":
            return
        try:
            required_ring = min_ring_degree_log2(scheme.ciphertext_modulus_bits)
        except ValueError:
            self._fail(
                "enc-bgv-budget",
                "scheme",
                f"no standard BGV parameter set covers a "
                f"{scheme.ciphertext_modulus_bits}-bit modulus",
            )
            return
        if scheme.ring_log2 < required_ring:
            self._fail(
                "enc-bgv-budget",
                "scheme",
                f"ring degree 2^{scheme.ring_log2} is insecure for a "
                f"{scheme.ciphertext_modulus_bits}-bit modulus; the HE "
                f"standard table requires >= 2^{required_ring}",
            )
        levels = max(
            0,
            (scheme.ciphertext_modulus_bits - _NOISE_FLOOR_BITS) // _PER_LEVEL_BITS,
        )
        for v in self.plan.vignettes:
            if v.work.he_ct_mults > 0 or v.work.he_exponentiations > 0:
                # The em's degree-8 exponential approximation plus the
                # masking chain needs ~3 multiplicative levels; see
                # BGVParams.for_depth for the bits-per-level model.
                if levels < 3:
                    self._fail(
                        "enc-bgv-budget",
                        f"vignette {v.name!r}",
                        f"multiplies ciphertexts but the "
                        f"{scheme.ciphertext_modulus_bits}-bit modulus only "
                        f"supports {levels} BGV level(s); decryption would "
                        "fail with NoiseBudgetExceeded",
                    )
                    break

    def check_no_he_after_share(self) -> None:
        """enc-no-he-after-share: no aggregator HE once data is shared."""
        self._checked("enc-no-he-after-share")
        shared = False
        for v in self.plan.vignettes:
            if shared and v.location is Location.AGGREGATOR and v.crypto in (
                "ahe",
                "fhe",
            ):
                self._fail(
                    "enc-no-he-after-share",
                    f"vignette {v.name!r}",
                    "operates homomorphically on the aggregator after a "
                    "decryption committee already turned the aggregate into "
                    "MPC sharings",
                )
            # Only the full-aggregate decryption layer and the TFHE->MPC
            # conversion move the *aggregate* into sharings; 'em-decrypt'
            # opens just the mechanism's selected output, leaving the
            # aggregate ciphertexts valid for later HE stages.
            if v.name in ("decrypt", "scheme-convert"):
                shared = True

    # -------------------------------------------------------------------- DP

    def check_noise_dominates_output(self) -> None:
        """dp-noise-dominates-output: declassify only post-noise."""
        self._checked("dp-noise-dominates-output")
        ops = self.logical.ops
        mech_idx = [
            i for i, op in enumerate(ops) if isinstance(op, (SelectMax, NoiseOutput))
        ]
        for i, op in enumerate(ops):
            if isinstance(op, Output):
                if not any(j < i for j in mech_idx):
                    self._fail(
                        "dp-noise-dominates-output",
                        f"output[{i}]",
                        "Output op is not dominated by any SelectMax/"
                        "NoiseOutput; the release would be un-noised",
                    )
        names = [v.name for v in self.plan.vignettes]
        mech_vignettes = [
            i for i, name in enumerate(names) if name in MECHANISM_VIGNETTES
        ]
        for i, name in enumerate(names):
            if name == "publish" and not any(j < i for j in mech_vignettes):
                self._fail(
                    "dp-noise-dominates-output",
                    "vignette 'publish'",
                    "publishes before any mechanism vignette "
                    f"({sorted(MECHANISM_VIGNETTES)}) has run",
                )

    def check_epsilon_matches(self) -> None:
        """dp-epsilon-matches: certificate totals re-derive from mechanisms."""
        self._checked("dp-epsilon-matches")
        cert = self.certificate
        total = PrivacyCost(0.0, 0.0)
        for use in cert.mechanisms:
            total = total + PrivacyCost(use.epsilon, use.delta)
        if not _rel_close(total.epsilon, cert.cost.epsilon) or not _rel_close(
            total.delta, cert.cost.delta
        ):
            self._fail(
                "dp-epsilon-matches",
                "certificate",
                f"claimed cost (ε={cert.cost.epsilon:g}, δ={cert.cost.delta:g})"
                f" != sum of its {len(cert.mechanisms)} mechanism uses "
                f"(ε={total.epsilon:g}, δ={total.delta:g})",
            )
        kinds = {use.mechanism for use in cert.mechanisms}
        if "manual" in kinds:
            return  # analyst-supplied proof: kinds are not derivable
        # Loop handling differs between the two passes (the certifier
        # unrolls small loops into per-iteration uses; the lowering folds
        # them into one op with a multiplied count), so compare mechanism
        # *presence*, not application counts.
        ir_kinds = set()
        if any(isinstance(op, SelectMax) for op in self.logical.ops):
            ir_kinds.add("em")
        if any(isinstance(op, NoiseOutput) for op in self.logical.ops):
            ir_kinds.add("laplace")
        if ir_kinds != kinds:
            self._fail(
                "dp-epsilon-matches",
                "certificate",
                f"IR realizes mechanisms {sorted(ir_kinds)} but the "
                f"certificate records {sorted(kinds)}; a release is either "
                "un-noised or double-counted",
            )

    def check_budget_afford(self) -> None:
        """dp-budget-afford: replay the keygen committee's ledger check."""
        if self.accountant is None:
            return
        self._checked("dp-budget-afford")
        if not self.accountant.can_afford(self.certificate.cost):
            remaining = self.accountant.remaining()
            self._fail(
                "dp-budget-afford",
                "accountant",
                f"certificate costs (ε={self.certificate.cost.epsilon:g}, "
                f"δ={self.certificate.cost.delta:g}) but the ledger only has "
                f"(ε={remaining.epsilon:g}, δ={remaining.delta:g}) left",
            )

    # ------------------------------------------------------------ committees

    def check_committee_tail_bound(self) -> None:
        """com-tail-bound: the §5.1 sizing inequality holds for this plan."""
        self._checked("com-tail-bound")
        params = self.plan.committee_params
        p_fail = committee_failure_probability(
            params.committee_size,
            params.num_committees,
            params.malicious_fraction,
            params.churn_tolerance,
        )
        if p_fail > params.per_round_budget * (1.0 + _EPS_TOL):
            self._fail(
                "com-tail-bound",
                "committee_params",
                f"m={params.committee_size} gives failure probability "
                f"{p_fail:.3g} over {params.num_committees} committees, "
                f"above the per-round budget {params.per_round_budget:.3g} "
                "(§5.1 binomial tail bound)",
            )

    def check_committee_count(self) -> None:
        """com-count-covers-plan: sizing saw every committee the plan uses."""
        self._checked("com-count-covers-plan")
        params = self.plan.committee_params
        # Mirror score_vignettes: sizing runs for max(int(count), 1).
        used = max(int(count_committees(self.plan.vignettes)), 1)
        if params.num_committees < used:
            self._fail(
                "com-count-covers-plan",
                "committee_params",
                f"sized for {params.num_committees} committees but the "
                f"vignette sequence uses {used}; the tail bound no longer "
                "covers all of them",
            )

    def check_keygen_unique(self) -> None:
        """com-keygen-unique: one MPC keygen committee holds the key."""
        self._checked("com-keygen-unique")
        keygens = [
            v
            for v in self.plan.vignettes
            if v.name == "keygen" or v.work.dist_keygens > 0
        ]
        if len(keygens) != 1:
            self._fail(
                "com-keygen-unique",
                "vignette 'keygen'",
                f"plan has {len(keygens)} keygen vignettes; exactly one "
                "committee may generate the keypair (§5.2)",
            )
            return
        v = keygens[0]
        if (
            v.location is not Location.COMMITTEE
            or v.crypto != "mpc"
            or v.committee_type != "keygen"
        ):
            self._fail(
                "com-keygen-unique",
                f"vignette {v.name!r}",
                f"keygen runs at {v.location.value} in {v.crypto!r} as "
                f"{v.committee_type!r}; it must be a committee_type='keygen' "
                "committee in MPC",
            )

    def check_fanin_capacity(self) -> None:
        """com-fanin-capacity: fan-ins stay within the planner's grids."""
        self._checked("com-fanin-capacity")
        caps = {
            "participant_tree": ("tree fanout", max(TREE_FANOUTS)),
            "committee_tree": ("tree fanout", max(TREE_FANOUTS)),
            "committee_mpc": ("MPC batch", max(MPC_BATCH_SIZES)),
            "committee_mpc_fused": ("MPC batch", max(MPC_BATCH_SIZES)),
            "committee_noise": ("noise batch", max(NOISE_BATCH_SIZES)),
            "binned_upload": ("sample bins", max(SAMPLE_BIN_CHOICES)),
        }
        for choice in self._choice_list():
            if choice.option in caps and choice.params:
                what, cap = caps[choice.option]
                if choice.params[0] > cap:
                    self._fail(
                        "com-fanin-capacity",
                        choice.key,
                        f"{what} {choice.params[0]} exceeds the committee "
                        f"capacity grid (max {cap})",
                    )
            elif choice.option == "gumbel_mpc" and len(choice.params) == 4:
                _style, dec, noise, fanout = choice.params
                for what, value, cap in (
                    ("decryption batch", dec, max(DEC_BATCH_SIZES)),
                    ("noising batch", noise, max(NOISE_BATCH_SIZES)),
                    ("argmax fanout", fanout, max(ARGMAX_FANOUTS)),
                ):
                    if value > cap:
                        self._fail(
                            "com-fanin-capacity",
                            choice.key,
                            f"{what} {value} exceeds the committee capacity "
                            f"grid (max {cap})",
                        )

    def check_staffing(self) -> None:
        """com-staffing (warning): population covers the selected seats."""
        self._checked("com-staffing")
        params = self.plan.committee_params
        n = self.logical.env.num_participants
        if params.devices_selected > n:
            self._fail(
                "com-staffing",
                "committee_params",
                f"{params.num_committees} committees x m="
                f"{params.committee_size} selects "
                f"{params.devices_selected} devices from a population of "
                f"{n}; fine in simulation (devices serve repeatedly) but "
                "infeasible in deployment",
            )


def verify_plan(
    plan: Plan,
    logical: LogicalPlan,
    certificate: Optional[Certificate] = None,
    accountant: Optional[PrivacyAccountant] = None,
) -> VerificationReport:
    """Statically verify one concrete plan against the invariant catalog."""
    return PlanChecker(plan, logical, certificate, accountant).check()


def verify_planning_result(result, accountant=None) -> VerificationReport:
    """Verify a :class:`~repro.planner.search.PlanningResult` end to end."""
    return verify_plan(
        result.plan, result.logical_plan, result.certificate, accountant
    )
