"""The privacy dataflow analyzer: semantic verification of planned queries.

PR 1's plan checker re-checks *syntactic* invariants (op ordering, scheme
consistency, certificate-internal sums). This module adds the semantic
half: an abstract interpreter that walks the logical plan — the IR ops
that seed the aggregate, then the post-aggregate statement list the
committees execute — propagating the :mod:`repro.verify.lattice` domain:

(a) a **taint lattice** (RAW / CLIPPED / NOISED / RELEASED), so any flow
    of an un-noised aggregate past ``output``/``declassify`` is a hard
    error even when the op-level IR looks well-formed;
(b) **sensitivity and clip-bound intervals**, so the scale at each noise
    node is *proven* sufficient for the upstream L1/L∞ sensitivity (the
    PR 1 rules only check a mechanism is present);
(c) **interval-arithmetic budget accounting** per node, reconciled
    against the certificate's totals with outward-rounded sums.

The transfer functions deliberately mirror
:class:`repro.privacy.certify.Certifier` operation-for-operation: the
upper endpoints of every derived interval are computed with the same
float expressions in the same order, so on an untampered plan the
derived bounds are bit-identical to what the certifier recorded, and any
relative discrepancy beyond 1e-9 is a genuine miscalibration, not
rounding noise.

A clean analysis distills into a
:class:`repro.verify.certificate.PrivacyCertificate` that travels with
the serialized plan; the executor re-analyzes before running and refuses
plans whose attached certificate does not match (fail closed).

The analyzer is *total*: it never raises, it reports. Callers decide
whether a dirty report is fatal (:meth:`VerificationReport.
raise_if_failed`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Stmt,
    UnOp,
    Var,
    DB_NAME,
    walk_statements,
)
from ..planner.ir import (
    EncryptInput,
    LogicalPlan,
    NoiseOutput,
    SelectMax,
)
from ..privacy.certify import (
    Certificate,
    FINITE_PRECISION_DELTA,
    MechanismUse,
    _UNROLL_LIMIT,
)
from ..privacy.sampling import amplified_epsilon
from .certificate import NodeCertificate, PrivacyCertificate
from .invariants import DATAFLOW_BY_RULE
from .lattice import (
    AbstractValue,
    Bounds,
    SensitivityBounds,
    widened_add,
)
from .report import Severity, VerificationReport

#: Relative tolerance for comparing derived and recorded (ε, δ, Δ): the
#: mirrored transfer functions reproduce the certifier bit-for-bit, so
#: this only absorbs serialization round-trips, never real discrepancies.
_REL_TOL = 1e-9


def _dominates(recorded: float, derived: float) -> bool:
    """recorded >= derived, within relative tolerance."""
    if math.isinf(derived):
        return math.isinf(recorded)
    return recorded >= derived - _REL_TOL * max(abs(recorded), abs(derived), 1.0)


def _dominates_tiny(recorded: float, derived: float) -> bool:
    """Like :func:`_dominates` without the absolute floor.

    δ charges sit around 2^-40 — far below any absolute tolerance floor —
    so their comparison must be purely relative or a zeroed record would
    still "dominate".
    """
    if math.isinf(derived):
        return math.isinf(recorded)
    return recorded >= derived - _REL_TOL * max(abs(recorded), abs(derived))


@dataclass(frozen=True)
class DerivedUse:
    """One mechanism application found by the abstract interpreter."""

    mechanism: str
    line: int
    node_path: str
    sensitivity: SensitivityBounds
    scale: Optional[Bounds]  # proven laplace scale interval; None for em
    epsilon: Bounds
    delta: Bounds
    k: int = 1
    sample_phi: Optional[float] = None
    multiplicity: int = 1
    label: str = "CLIPPED"  # taint label of the value entering the mechanism


class DataflowAnalyzer:
    """One analysis run over one (logical plan, certificate)."""

    def __init__(self, logical: LogicalPlan, certificate: Optional[Certificate] = None):
        self.logical = logical
        self.certificate = certificate or logical.certificate
        self.checker = self.certificate.checker
        self.env = logical.env
        self.report = VerificationReport(
            target=f"dataflow for {logical.query_name!r}"
        )
        self.values: Dict[str, AbstractValue] = {}
        self.derived: List[DerivedUse] = []
        self._multiplier = 1
        self._path = "post"
        self._path_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- plumbing

    def _fail(
        self,
        rule: str,
        subject: str,
        message: str,
        node_path: str = "",
        severity: Optional[Severity] = None,
    ) -> None:
        if severity is None:
            severity = DATAFLOW_BY_RULE[rule].severity
        self.report.add(rule, subject, message, severity, node_path=node_path)

    def _checked(self, rule: str) -> None:
        if rule not in self.report.checked_rules:
            self.report.checked_rules.append(rule)

    def _node_path(self, line: int) -> str:
        base = f"{self._path}:line {line}"
        n = self._path_counts.get(base, 0)
        self._path_counts[base] = n + 1
        return base if n == 0 else f"{base}#{n}"

    # ------------------------------------------------------------------ run

    def analyze(self) -> Tuple[VerificationReport, Optional[PrivacyCertificate]]:
        for rule in (
            "df-taint-release",
            "df-noise-scale",
            "df-sensitivity-certified",
            "df-budget-interval",
            "df-sampling-amplification",
        ):
            self._checked(rule)
        kinds = {use.mechanism for use in self.certificate.mechanisms}
        if kinds == {"manual"}:
            return self._manual_certificate()
        try:
            phi = self._seed_aggregate()
            self._interpret_block(self.logical.post_statements, top_level=True)
            self._check_ir_consistency(phi)
            self._check_against_certificate()
        except Exception as exc:  # analysis must be total: fail closed
            self._fail(
                "df-analysis-incomplete",
                "analyzer",
                f"abstract interpretation aborted: {type(exc).__name__}: {exc}",
            )
        if not self.report.ok:
            return self.report, None
        return self.report, self._build_certificate()

    # ----------------------------------------------- IR walk / aggregate init

    def _db_sensitivity(self) -> SensitivityBounds:
        """Mirror of Certifier._db_sensitivity, as point bounds: the row
        promises are ZKP-enforced, so lower and upper bound coincide."""
        elem = self.env.db_element.interval
        width = elem.width
        c = self.env.row_width
        if self.env.row_encoding == "one_hot":
            return SensitivityBounds.exact(min(2.0, float(c)), 1.0)
        l1 = width * c
        if self.env.row_l1 is not None:
            l1 = min(l1, 2.0 * self.env.row_l1)
        return SensitivityBounds.exact(l1, width)

    def _seed_aggregate(self) -> Optional[float]:
        """Walk the IR ops, seed the aggregate variable's abstract value,
        and return the sampling fraction the IR actually implements."""
        phi: Optional[float] = None
        for op in self.logical.ops:
            if isinstance(op, EncryptInput) and op.sample_fraction < 1.0:
                phi = op.sample_fraction
        if not _rel_equal(
            self.logical.sample_fraction, phi if phi is not None else 1.0
        ):
            self._fail(
                "df-budget-interval",
                "ops",
                f"logical plan claims sample fraction "
                f"{self.logical.sample_fraction:g} but the EncryptInput op "
                f"implements {phi if phi is not None else 1.0:g}",
                node_path=self._op_path(EncryptInput),
            )
        elem = self.env.db_element.interval
        aggregate = AbstractValue(
            sensitive=True,
            released=False,
            sensitivity=self._db_sensitivity(),
            clip=Bounds(min(elem.lo, elem.hi), max(elem.lo, elem.hi)),
            sample_phi=phi,
        )
        if self.logical.aggregate_var:
            self.values[self.logical.aggregate_var] = aggregate
        self.values[DB_NAME] = replace(aggregate, clip=None)
        return phi

    def _op_path(self, op_type) -> str:
        for i, op in enumerate(self.logical.ops):
            if isinstance(op, op_type):
                return f"ops[{i}]:{op.name}"
        return "ops"

    def _check_ir_consistency(self, phi: Optional[float]) -> None:
        """The mechanism ops the IR realizes must match the derived uses.

        Loop handling differs (the certifier and this pass unroll small
        loops; the lowering folds them into one op with a multiplied
        count), so ops and uses are compared at the kind/parameter level,
        not one-to-one.
        """
        derived_kinds = {use.mechanism for use in self.derived}
        ir_kinds = set()
        for op in self.logical.ops:
            if isinstance(op, SelectMax):
                ir_kinds.add("em")
            elif isinstance(op, NoiseOutput):
                ir_kinds.add("laplace")
        if ir_kinds != derived_kinds:
            self._fail(
                "df-budget-interval",
                "ops",
                f"IR realizes mechanisms {sorted(ir_kinds)} but the "
                f"statement dataflow derives {sorted(derived_kinds)}; a "
                "release op has no matching statement or vice versa",
                node_path="ops",
            )
        derived_ks = {use.k for use in self.derived if use.mechanism == "em"}
        for i, op in enumerate(self.logical.ops):
            if isinstance(op, SelectMax) and op.k not in derived_ks:
                self._fail(
                    "df-budget-interval",
                    f"select_max[{i}]",
                    f"SelectMax op selects k={op.k} but no derived em use "
                    f"has that arity (derived k values: {sorted(derived_ks)})",
                    node_path=f"ops[{i}]:select_max",
                )

    # --------------------------------------------------- statement interpreter

    def _interpret_block(self, statements: List[Stmt], top_level: bool = False) -> None:
        for i, stmt in enumerate(statements):
            if top_level:
                self._path = f"post[{i}]"
            self._interpret_statement(stmt)

    def _interpret_statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.values[stmt.var] = self._eval(stmt.value)
        elif isinstance(stmt, IndexAssign):
            incoming = self._eval(stmt.value).join(self._eval(stmt.index))
            existing = self.values.get(stmt.var, AbstractValue.public())
            self.values[stmt.var] = existing.join(incoming)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, For):
            self._interpret_for(stmt)
        elif isinstance(stmt, If):
            self._interpret_if(stmt)
        else:
            self._fail(
                "df-analysis-incomplete",
                f"line {getattr(stmt, 'line', 0)}",
                f"unmodeled statement form {type(stmt).__name__}",
                node_path=self._path,
            )

    def _trip_count(self, stmt: For) -> int:
        start = self.checker.expr_types.get(id(stmt.start))
        end = self.checker.expr_types.get(id(stmt.end))
        if start is None or end is None:
            return 1
        return max(
            0,
            int(math.ceil(end.interval.hi)) - int(math.floor(start.interval.lo)) + 1,
        )

    def _interpret_for(self, stmt: For) -> None:
        self._eval(stmt.start)
        self._eval(stmt.end)
        self.values[stmt.var] = AbstractValue.public()
        trips = self._trip_count(stmt)
        if trips <= _UNROLL_LIMIT:
            for _ in range(trips):
                self._interpret_block(stmt.body)
            return
        self._multiplier *= trips
        try:
            self._interpret_block(stmt.body)
        finally:
            self._multiplier //= trips

    def _interpret_if(self, stmt: If) -> None:
        cond = self._eval(stmt.cond)
        before = dict(self.values)
        self._interpret_block(stmt.then_body)
        after_then = self.values
        self.values = dict(before)
        self._interpret_block(stmt.else_body)
        after_else = self.values
        merged: Dict[str, AbstractValue] = {}
        for name in set(after_then) | set(after_else):
            a = after_then.get(name, before.get(name, AbstractValue.public()))
            b = after_else.get(name, before.get(name, AbstractValue.public()))
            merged[name] = a.join(b)
        if cond.sensitive and not cond.released:
            written = {
                s.var
                for s in walk_statements(stmt.then_body + stmt.else_body)
                if isinstance(s, (Assign, IndexAssign))
            }
            for name in written:
                merged[name] = AbstractValue(
                    True, False, SensitivityBounds.unbounded()
                )
        self.values = merged

    # -------------------------------------------------------------- expressions

    def _eval(self, expr: Expr) -> AbstractValue:
        if isinstance(expr, (IntLit, FloatLit, BoolLit)):
            return AbstractValue.public()
        if isinstance(expr, Var):
            return self.values.get(expr.name, AbstractValue.public())
        if isinstance(expr, Index):
            base = self._eval(expr.base)
            index = self._eval(expr.index)
            if base.sensitive:
                elem = SensitivityBounds(
                    base.sensitivity.linf, base.sensitivity.linf
                )
                base = base.with_sensitivity(elem)
            return base.join(index)
        if isinstance(expr, UnOp):
            return self._eval(expr.operand)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        self._fail(
            "df-analysis-incomplete",
            f"line {getattr(expr, 'line', 0)}",
            f"unmodeled expression form {type(expr).__name__}",
            node_path=self._path,
        )
        return AbstractValue(True, False, SensitivityBounds.unbounded())

    def _magnitude_bounds(self, expr: Expr) -> Tuple[float, float]:
        """(min |x|, max |x|) over the checker's value interval for expr.

        The upper endpoint is exactly Certifier._public_magnitude; an
        expression the type checker never saw (inserted post-certification)
        has unknown magnitude, which the interval arithmetic turns into an
        unbounded derived sensitivity — exactly the fail-closed behavior a
        tampered plan deserves.
        """
        vt = self.checker.expr_types.get(id(expr))
        if vt is None:
            return 0.0, math.inf
        hi = vt.interval.magnitude
        lo = 0.0 if vt.interval.contains(0.0) else min(
            abs(vt.interval.lo), abs(vt.interval.hi)
        )
        return lo, hi

    def _eval_binop(self, expr: BinOp) -> AbstractValue:
        left = self._eval(expr.left).effective()
        right = self._eval(expr.right).effective()
        if not left.sensitive and not right.sensitive:
            return self._eval(expr.left).join(self._eval(expr.right))
        op = expr.op
        if op in ("+", "-"):
            sens = left.sensitivity + right.sensitivity
            return replace(
                left.join(right), sensitive=True, released=False, sensitivity=sens
            )
        if op == "*":
            if left.sensitive and right.sensitive:
                sens = SensitivityBounds.unbounded()
            elif left.sensitive:
                lo_k, hi_k = self._magnitude_bounds(expr.right)
                sens = left.sensitivity.scaled(lo_k, hi_k)
            else:
                lo_k, hi_k = self._magnitude_bounds(expr.left)
                sens = right.sensitivity.scaled(lo_k, hi_k)
            return replace(
                left.join(right), sensitive=True, released=False, sensitivity=sens
            )
        if op == "/":
            if right.sensitive:
                sens = SensitivityBounds.unbounded()
            else:
                lo_mag, hi_mag = self._magnitude_bounds(expr.right)
                factor_hi = math.inf if hi_mag == 0 else 1.0  # conservative
                vt = self.checker.expr_types.get(id(expr.right))
                if vt is not None and not vt.interval.contains(0.0):
                    low = min(abs(vt.interval.lo), abs(vt.interval.hi))
                    factor_hi = 1.0 / low
                factor_lo = 0.0 if not math.isfinite(hi_mag) else (
                    1.0 / hi_mag if hi_mag > 0 else 0.0
                )
                sens = left.sensitivity.scaled(factor_lo, factor_hi)
            return replace(
                left.join(right), sensitive=True, released=False, sensitivity=sens
            )
        # Comparisons / logical ops on secrets: unbounded in the DP sense.
        joined = left.join(right)
        return replace(
            joined,
            sensitive=True,
            released=False,
            sensitivity=SensitivityBounds.unbounded(),
        )

    # ---------------------------------------------------------------- builtins

    def _eval_call(self, expr: Call) -> AbstractValue:
        func = expr.func
        if func == "laplace":
            return self._use_laplace(expr)
        if func == "em":
            return self._use_em(expr)
        if func in ("declassify", "output"):
            arg = self._eval(expr.args[0]) if expr.args else AbstractValue.public()
            if arg.sensitive and not arg.released:
                self._fail(
                    "df-taint-release",
                    f"line {expr.line}",
                    f"{func}() receives a {arg.label.name} value "
                    f"(sensitivity {arg.sensitivity}); only NOISED or "
                    "PUBLIC values may cross a release boundary",
                    node_path=self._node_path(expr.line),
                )
            return AbstractValue.public() if func == "declassify" else arg
        if func == "sampleUniform":
            base = self._eval(expr.args[0])
            phi_type = self.checker.expr_types.get(id(expr.args[1]))
            phi = phi_type.interval.hi if phi_type is not None else 1.0
            return replace(base, sample_phi=phi)
        if func == "sum":
            arg = self._eval(expr.args[0])
            if arg.sensitive:
                sens = SensitivityBounds(arg.sensitivity.l1, arg.sensitivity.l1)
                vt = self.checker.expr_types.get(id(expr.args[0]))
                if vt is not None and len(vt.shape) == 2:
                    sens = arg.sensitivity
                return arg.with_sensitivity(sens)
            return arg
        if func in ("max", "argmax"):
            arg = self._eval(expr.args[0])
            if arg.sensitive:
                return arg.with_sensitivity(
                    SensitivityBounds(arg.sensitivity.linf, arg.sensitivity.linf)
                )
            return arg
        if func == "clip":
            arg = self._eval(expr.args[0])
            if arg.sensitive:
                lo = self.checker.expr_types.get(id(expr.args[1]))
                hi = self.checker.expr_types.get(id(expr.args[2]))
                if lo is not None and hi is not None:
                    width = max(hi.interval.hi - lo.interval.lo, 0.0)
                    sens = SensitivityBounds(
                        Bounds(
                            min(arg.sensitivity.l1.lo, width),
                            min(arg.sensitivity.l1.hi, width),
                        ),
                        Bounds(
                            min(arg.sensitivity.linf.lo, width),
                            min(arg.sensitivity.linf.hi, width),
                        ),
                    )
                    window = Bounds(lo.interval.lo, hi.interval.hi)
                    return replace(arg, sensitivity=sens, clip=window)
            return arg
        if func == "len":
            for arg in expr.args:
                self._eval(arg)
            return AbstractValue.public()
        value = AbstractValue.public()
        for arg in expr.args:
            value = value.join(self._eval(arg))
        if value.sensitive and func in ("exp", "log", "sqrt", "random"):
            value = replace(
                value, sensitivity=SensitivityBounds.unbounded(), released=False
            )
        return value  # abs is 1-Lipschitz: sensitivity carries over unchanged

    # -------------------------------------------------------------- mechanisms

    def _amplified(self, per_use: float, phi: Optional[float]) -> float:
        if phi is None or phi >= 1.0 or per_use <= 0 or math.isinf(per_use):
            return per_use
        return amplified_epsilon(per_use, phi)

    def _use_laplace(self, expr: Call) -> AbstractValue:
        value = self._eval(expr.args[0])
        if len(expr.args) > 1:
            self._eval(expr.args[1])
        if not value.sensitive:
            return value  # noising public data is a no-op privacy-wise
        path = self._node_path(expr.line)
        scale_type = (
            self.checker.expr_types.get(id(expr.args[1]))
            if len(expr.args) > 1
            else None
        )
        scale: Optional[Bounds] = None
        if scale_type is None or scale_type.interval.lo <= 0:
            self._fail(
                "df-noise-scale",
                f"line {expr.line}",
                "laplace scale has no proven positive lower bound (the "
                "scale expression was never seen by the certified type "
                "derivation); the noise cannot be proven sufficient",
                node_path=path,
            )
        else:
            scale = Bounds(scale_type.interval.lo, scale_type.interval.hi)
        if not math.isfinite(value.sensitivity.l1.hi):
            self._fail(
                "df-noise-scale",
                f"line {expr.line}",
                f"a value with unbounded L1 sensitivity reaches laplace() "
                f"({value.label.name}); no finite scale suffices — clip() "
                "was dropped or a post-certification rewrite inflated the "
                "sensitivity",
                node_path=path,
            )
        if scale is not None:
            # Mirror of Certifier._mechanism_laplace, upper endpoint exact.
            per_hi = value.sensitivity.l1.hi / scale.lo
            eps_hi = self._amplified(per_hi, value.sample_phi) * self._multiplier
            per_lo = (
                value.sensitivity.l1.lo / scale.hi if scale.hi > 0 else 0.0
            )
            eps_lo = self._amplified(per_lo, value.sample_phi) * self._multiplier
            epsilon = Bounds(min(eps_lo, eps_hi), eps_hi)
        else:
            epsilon = Bounds.unbounded()
        delta = Bounds.exact(FINITE_PRECISION_DELTA * self._multiplier)
        self.derived.append(
            DerivedUse(
                "laplace",
                expr.line,
                path,
                value.sensitivity,
                scale,
                epsilon,
                delta,
                sample_phi=value.sample_phi,
                multiplicity=self._multiplier,
                label=value.label.name,
            )
        )
        return AbstractValue(
            sensitive=True, released=True, sensitivity=value.sensitivity
        )

    def _use_em(self, expr: Call) -> AbstractValue:
        scores = self._eval(expr.args[0])
        k = 1
        if len(expr.args) == 2:
            kt = self.checker.expr_types.get(id(expr.args[1]))
            k = int(kt.interval.hi) if kt is not None else 1
            self._eval(expr.args[1])
        if not scores.sensitive:
            return scores
        path = self._node_path(expr.line)
        if not math.isfinite(scores.sensitivity.linf.hi):
            self._fail(
                "df-noise-scale",
                f"line {expr.line}",
                f"scores with unbounded L∞ sensitivity reach em() "
                f"({scores.label.name}); the exponential mechanism's noise "
                "cannot be proven sufficient",
                node_path=path,
            )
        elif not _dominates(self.env.sensitivity, scores.sensitivity.linf.hi):
            # The runtime sizes the EM noise as 2·Δ/ε with Δ taken from the
            # environment. When Δ sits below the derived L∞ bound the scale
            # cannot be *proven* sufficient — but the derived bound is an
            # over-approximation (e.g. unrolled prefix sums), and the repo's
            # trust model lets the analyst assert a tighter Δ, exactly as
            # with a manual certificate. Surfaced as a warning to audit;
            # tampered certificates stay hard errors via the recorded-use
            # comparisons below.
            self._fail(
                "df-noise-scale",
                f"line {expr.line}",
                f"the environment sensitivity Δ={self.env.sensitivity:g} "
                f"that sizes the runtime EM noise is below the derived L∞ "
                f"bound {scores.sensitivity.linf.hi:g}; the calibration "
                "rests on the analyst's asserted Δ, not on this analysis",
                node_path=path,
                severity=Severity.WARNING,
            )
        # Mirror of Certifier._mechanism_em.
        per_use = self.env.epsilon * (math.sqrt(k) if k > 1 else 1.0)
        eps = self._amplified(per_use, scores.sample_phi) * self._multiplier
        self.derived.append(
            DerivedUse(
                "em",
                expr.line,
                path,
                scores.sensitivity,
                None,
                Bounds.exact(eps),
                Bounds.exact(FINITE_PRECISION_DELTA * self._multiplier),
                k=k,
                sample_phi=scores.sample_phi,
                multiplicity=self._multiplier,
                label=scores.label.name,
            )
        )
        return AbstractValue(
            sensitive=True, released=True, sensitivity=scores.sensitivity
        )

    # ------------------------------------------------- certificate reconciliation

    def _check_against_certificate(self) -> None:
        recorded: List[MechanismUse] = list(self.certificate.mechanisms)
        if len(recorded) != len(self.derived):
            self._fail(
                "df-budget-interval",
                "certificate",
                f"certificate records {len(recorded)} mechanism use(s) but "
                f"the dataflow derives {len(self.derived)}; a use was "
                "duplicated (budget double-spend) or a release went "
                "unrecorded",
                node_path="certificate.mechanisms",
            )
            return
        for i, (rec, der) in enumerate(zip(recorded, self.derived)):
            subject = f"mechanisms[{i}] ({der.node_path})"
            if rec.mechanism != der.mechanism:
                self._fail(
                    "df-budget-interval",
                    subject,
                    f"recorded use is {rec.mechanism!r} but the dataflow "
                    f"derives {der.mechanism!r} at this release point",
                    node_path=der.node_path,
                )
                continue
            if rec.k != der.k:
                self._fail(
                    "df-budget-interval",
                    subject,
                    f"recorded k={rec.k} != derived k={der.k}",
                    node_path=der.node_path,
                )
            if rec.sample_phi is not None and der.sample_phi is None:
                self._fail(
                    "df-sampling-amplification",
                    subject,
                    f"recorded use claims amplification at φ="
                    f"{rec.sample_phi:g} but the plan's input op does not "
                    "sample; the recorded ε is unjustifiably small",
                    node_path=der.node_path,
                )
            if not _dominates(rec.sensitivity.l1, der.sensitivity.l1.hi) or (
                not _dominates(rec.sensitivity.linf, der.sensitivity.linf.hi)
            ):
                self._fail(
                    "df-sensitivity-certified",
                    subject,
                    f"recorded sensitivity (l1={rec.sensitivity.l1:g}, "
                    f"linf={rec.sensitivity.linf:g}) does not dominate the "
                    f"derived interval (l1={der.sensitivity.l1}, "
                    f"linf={der.sensitivity.linf}); noise sized from the "
                    "record would be insufficient",
                    node_path=der.node_path,
                )
            if not _dominates(rec.epsilon, der.epsilon.hi):
                self._fail(
                    "df-noise-scale",
                    subject,
                    f"recorded ε={rec.epsilon:g} is below the proven "
                    f"requirement {der.epsilon.hi:g} (sensitivity "
                    f"{der.sensitivity.l1}/scale "
                    f"{der.scale if der.scale else 'n/a'}, x"
                    f"{der.multiplicity}); the mechanism is undercharged "
                    "for the noise it actually adds",
                    node_path=der.node_path,
                )
            if not _dominates_tiny(rec.delta, der.delta.hi):
                self._fail(
                    "df-budget-interval",
                    subject,
                    f"recorded δ={rec.delta:.3e} is below the derived "
                    f"finite-precision allowance {der.delta.hi:.3e}",
                    node_path=der.node_path,
                )
        # Totals: the claimed cost must dominate the outward-rounded
        # interval sum of the derived per-node charges.
        total_eps, total_delta = self._derived_totals()
        cost = self.certificate.cost
        if not _dominates(cost.epsilon, total_eps.lo):
            self._fail(
                "df-budget-interval",
                "certificate",
                f"claimed total ε={cost.epsilon:g} lies below the proven "
                f"interval sum {total_eps} of the per-node charges",
                node_path="certificate.cost",
            )
        if not _dominates_tiny(cost.delta, total_delta.lo):
            self._fail(
                "df-budget-interval",
                "certificate",
                f"claimed total δ={cost.delta:.3e} lies below the proven "
                f"interval sum {total_delta}",
                node_path="certificate.cost",
            )

    def _derived_totals(self) -> Tuple[Bounds, Bounds]:
        total_eps = Bounds.zero()
        total_delta = Bounds.zero()
        for use in self.derived:
            total_eps = widened_add(total_eps, use.epsilon)
            total_delta = widened_add(total_delta, use.delta)
        return total_eps, total_delta

    # --------------------------------------------------------------- manual

    def _manual_certificate(self) -> Tuple[VerificationReport, PrivacyCertificate]:
        self._checked("df-manual-certificate")
        self._fail(
            "df-manual-certificate",
            "certificate",
            "analyst-supplied certificate: taint and budget re-derivation "
            "skipped; the privacy claim rests on the supplied proof",
        )
        nodes = tuple(
            NodeCertificate(
                node_path=f"manual[{i}]",
                mechanism="manual",
                label="RAW",
                sensitivity_l1=Bounds.exact(use.sensitivity.l1),
                sensitivity_linf=Bounds.exact(use.sensitivity.linf),
                noise_scale=None,
                epsilon=Bounds.exact(use.epsilon),
                delta=Bounds.exact(use.delta),
                k=use.k,
                sample_phi=use.sample_phi,
            )
            for i, use in enumerate(self.certificate.mechanisms)
        )
        cert = PrivacyCertificate(
            query_name=self.logical.query_name,
            nodes=nodes,
            total_epsilon=Bounds.exact(self.certificate.cost.epsilon),
            total_delta=Bounds.exact(self.certificate.cost.delta),
            claimed_epsilon=self.certificate.cost.epsilon,
            claimed_delta=self.certificate.cost.delta,
            analysis="manual",
            checked_rules=tuple(self.report.checked_rules),
        )
        return self.report, cert

    # ---------------------------------------------------------- certificate

    def _build_certificate(self) -> PrivacyCertificate:
        total_eps, total_delta = self._derived_totals()
        nodes = tuple(
            NodeCertificate(
                node_path=use.node_path,
                mechanism=use.mechanism,
                label=use.label,
                sensitivity_l1=use.sensitivity.l1,
                sensitivity_linf=use.sensitivity.linf,
                noise_scale=use.scale,
                epsilon=use.epsilon,
                delta=use.delta,
                k=use.k,
                sample_phi=use.sample_phi,
                multiplicity=use.multiplicity,
            )
            for use in self.derived
        )
        return PrivacyCertificate(
            query_name=self.logical.query_name,
            nodes=nodes,
            total_epsilon=total_eps,
            total_delta=total_delta,
            claimed_epsilon=self.certificate.cost.epsilon,
            claimed_delta=self.certificate.cost.delta,
            analysis="dataflow",
            checked_rules=tuple(self.report.checked_rules),
        )


def _rel_equal(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1.0)


def analyze_logical_plan(
    logical: LogicalPlan, certificate: Optional[Certificate] = None
) -> Tuple[VerificationReport, Optional[PrivacyCertificate]]:
    """Run the dataflow analysis over one lowered plan."""
    return DataflowAnalyzer(logical, certificate).analyze()


def analyze_planning_result(
    result,
) -> Tuple[VerificationReport, Optional[PrivacyCertificate]]:
    """Analyze a :class:`~repro.planner.search.PlanningResult`.

    Returns the report and, when the analysis is clean, the distilled
    :class:`PrivacyCertificate` (None otherwise). Never raises.
    """
    return analyze_logical_plan(result.logical_plan, result.certificate)
