"""Conservative interval arithmetic for value-range inference (§4.4).

Arboretum assigns every variable and expression a value range; the bounds
are used to pick cryptosystem parameters (e.g. the BGV plaintext modulus
must exceed the largest value a sum can take — summing binary values across
a billion users needs ~2^30). Bounds are deliberately conservative — the
lower/upper bounds of ``a*b`` are simply the extremes of the endpoint
products — and the analyst can use ``clip`` to tighten them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] of representable values."""

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------ predicates

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def magnitude(self) -> float:
        """Largest absolute value the interval contains."""
        return max(abs(self.lo), abs(self.hi))

    def is_finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, x: float) -> bool:
        return self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return Interval(min(products), max(products))

    def __truediv__(self, other: "Interval") -> "Interval":
        if other.contains(0.0):
            # Division by an interval spanning zero is unbounded; the
            # analyst must clip the divisor.
            return Interval(-math.inf, math.inf)
        quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval(min(quotients), max(quotients))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def scale(self, k: float) -> "Interval":
        if k >= 0:
            return Interval(self.lo * k, self.hi * k)
        return Interval(self.hi * k, self.lo * k)

    # ------------------------------------------------------- set operations

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def clip(self, lo: float, hi: float) -> "Interval":
        """Range of clip(x, lo, hi): the interval intersected + clamped."""
        return Interval(min(max(self.lo, lo), hi), max(min(self.hi, hi), lo))

    # -------------------------------------------------------------- builtins

    def exp(self) -> "Interval":
        return Interval(math.exp(self.lo) if self.lo > -700 else 0.0, math.exp(min(self.hi, 700)))

    def log(self) -> "Interval":
        if self.lo <= 0:
            return Interval(-math.inf, math.log(self.hi) if self.hi > 0 else math.inf)
        return Interval(math.log(self.lo), math.log(self.hi))

    def sqrt(self) -> "Interval":
        lo = math.sqrt(max(self.lo, 0.0))
        hi = math.sqrt(max(self.hi, 0.0))
        return Interval(lo, hi)

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return Interval(-self.hi, -self.lo)
        return Interval(0.0, self.magnitude)


ZERO = Interval(0.0, 0.0)
UNIT = Interval(0.0, 1.0)
BOOLEAN = Interval(0.0, 1.0)
UNBOUNDED = Interval(-math.inf, math.inf)


def point(x: float) -> Interval:
    """The degenerate interval containing exactly x."""
    return Interval(x, x)


def bits_needed(interval: Interval) -> int:
    """Bits required to represent every integer value in the interval.

    Used to size the plaintext modulus (unsigned intervals) or, with one
    extra sign bit, the MPC value width (signed intervals).
    """
    if not interval.is_finite():
        raise ValueError("cannot size a modulus for an unbounded interval")
    magnitude = int(math.ceil(interval.magnitude))
    bits = max(1, magnitude.bit_length())
    if interval.lo < 0:
        bits += 1
    return bits
