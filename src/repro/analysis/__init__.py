"""Static analysis: basic-type and value-range inference (§4.4)."""

from .ranges import Interval, bits_needed, point
from .types import AnalysisError, QueryEnvironment, TypeChecker, ValueType, infer_types

__all__ = [
    "Interval",
    "point",
    "bits_needed",
    "AnalysisError",
    "QueryEnvironment",
    "TypeChecker",
    "ValueType",
    "infer_types",
]
