"""Basic-type and value-range inference (§4.4).

After operator instantiation, Arboretum assigns each variable and
expression a basic type (``int``, ``fix``, or ``bool``) and a conservative
value range. The ranges drive cryptosystem parameter choices (plaintext
modulus, fixpoint widths); the basic types decide which operations a
cryptosystem must support.

Loops are analyzed with linear widening: the body is abstractly interpreted
once to measure how each interval grows per iteration, the growth is
extrapolated across the trip count, and the body is re-checked from the
widened state. Accumulators (``s = s + x``) are handled exactly; faster-
than-linear growth (``s = s * s``) is rejected with a hint to ``clip``,
matching the paper's escape hatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Program,
    Stmt,
    UnOp,
    Var,
    DB_NAME,
)
from .ranges import BOOLEAN, Interval, UNIT, bits_needed, point

#: How many noise scales we keep of the (unbounded) Laplace/Gumbel tails.
#: Finite-range data types cut the tails, adding a small delta to the
#: guarantee (§6); 64 scales puts that delta below 2^-64.
NOISE_TAIL_SCALES = 64.0

#: Loops at most this long are unrolled abstractly instead of widened.
_UNROLL_LIMIT = 64

_BASIC_ORDER = {"bool": 0, "int": 1, "fix": 2}


class AnalysisError(Exception):
    """Raised when a program cannot be typed (e.g. unbounded ranges)."""


@dataclass(frozen=True)
class ValueType:
    """The static type of a value: basic type, range, and array shape.

    ``shape`` is ``()`` for scalars, ``(k,)`` for vectors, ``(n, k)`` for
    the input matrix ``db``. ``interval`` bounds the (element) values.
    """

    basic: str
    interval: Interval
    shape: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.basic not in _BASIC_ORDER:
            raise ValueError(f"unknown basic type {self.basic!r}")

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()

    @property
    def length(self) -> int:
        if not self.shape:
            raise AnalysisError("scalar values have no length")
        return self.shape[0]

    def element(self) -> "ValueType":
        """The type of one element of an array value."""
        if not self.shape:
            raise AnalysisError("cannot index a scalar")
        return ValueType(self.basic, self.interval, self.shape[1:])

    def join(self, other: "ValueType") -> "ValueType":
        """Least upper bound, used to merge branches of an ``if``.

        Vectors of different lengths join to the longer length — arrays are
        built incrementally by indexed stores, so branches may have seen
        different prefixes of the same array.
        """
        shape = self.shape
        if self.shape != other.shape:
            if len(self.shape) == 1 and len(other.shape) == 1:
                shape = (max(self.shape[0], other.shape[0]),)
            else:
                raise AnalysisError(
                    f"cannot join values of shapes {self.shape} and {other.shape}"
                )
        basic = promote(self.basic, other.basic)
        return ValueType(basic, self.interval.union(other.interval), shape)

    def integer_bits(self) -> int:
        return bits_needed(self.interval)


def promote(a: str, b: str) -> str:
    """Numeric promotion: bool < int < fix."""
    return a if _BASIC_ORDER[a] >= _BASIC_ORDER[b] else b


@dataclass
class QueryEnvironment:
    """Everything inference needs to know about the deployment and query.

    ``num_participants`` and ``row_width`` fix db's shape; ``db_element``
    types its entries (one-hot categorical data is int in [0,1]).
    ``epsilon``/``sensitivity`` are exposed to programs as the predefined
    scalars ``epsilon`` and ``sens`` (the operator instantiations in Fig 4
    reference both).
    """

    num_participants: int
    row_width: int
    db_element: ValueType = None
    epsilon: float = 0.1
    delta: float = 1e-9
    sensitivity: float = 1.0
    #: "one_hot" rows are 0/1 vectors summing to 1 (enforced by the input
    #: ZKPs); "bounded" rows only promise per-element ranges.
    row_encoding: str = "one_hot"
    #: Optional L1 bound on a bounded row (also ZKP-enforceable): e.g. a
    #: count-mean-sketch row sets exactly ``depth`` cells, so its L1 is
    #: ``depth`` even though the row has thousands of cells.
    row_l1: Optional[float] = None
    constants: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.db_element is None:
            self.db_element = ValueType("int", UNIT)
        if not self.db_element.is_scalar:
            raise ValueError("db_element must describe one scalar entry")
        if self.row_encoding not in ("one_hot", "bounded"):
            raise ValueError(f"unknown row encoding {self.row_encoding!r}")

    def db_type(self) -> ValueType:
        return ValueType(
            self.db_element.basic,
            self.db_element.interval,
            (self.num_participants, self.row_width),
        )

    def initial_bindings(self) -> Dict[str, ValueType]:
        bindings = {
            DB_NAME: self.db_type(),
            "epsilon": ValueType("fix", point(self.epsilon)),
            "sens": ValueType("fix", point(self.sensitivity)),
            "N": ValueType("int", point(self.num_participants)),
        }
        for name, value in self.constants.items():
            basic = "int" if float(value).is_integer() else "fix"
            bindings[name] = ValueType(basic, point(value))
        return bindings


class TypeChecker:
    """Abstract interpreter computing per-variable and per-expression types."""

    def __init__(self, env: QueryEnvironment):
        self.env = env
        self.bindings: Dict[str, ValueType] = env.initial_bindings()
        #: Types of every expression node, keyed by id(node); the planner
        #: reads these when assigning cryptosystems.
        self.expr_types: Dict[int, ValueType] = {}
        self.output_types: List[ValueType] = []

    # -------------------------------------------------------------- program

    def check_program(self, program: Program) -> Dict[str, ValueType]:
        self.check_block(program.statements)
        return dict(self.bindings)

    def check_block(self, statements: List[Stmt]) -> None:
        for stmt in statements:
            self.check_statement(stmt)

    def check_statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.bindings[stmt.var] = self.infer(stmt.value)
        elif isinstance(stmt, IndexAssign):
            self._check_index_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self.infer(stmt.expr)
        elif isinstance(stmt, For):
            self._check_for(stmt)
        elif isinstance(stmt, If):
            self._check_if(stmt)
        else:
            raise AnalysisError(f"unknown statement {type(stmt).__name__}")

    def _check_index_assign(self, stmt: IndexAssign) -> None:
        index_type = self.infer(stmt.index)
        if not index_type.is_scalar:
            raise AnalysisError(f"line {stmt.line}: array index must be scalar")
        if not index_type.interval.is_finite():
            raise AnalysisError(f"line {stmt.line}: array index range is unbounded")
        value_type = self.infer(stmt.value)
        if not value_type.is_scalar:
            raise AnalysisError(f"line {stmt.line}: can only store scalars into arrays")
        length = int(index_type.interval.hi) + 1
        existing = self.bindings.get(stmt.var)
        if existing is not None and existing.shape:
            length = max(length, existing.length)
            merged = ValueType(
                promote(existing.basic, value_type.basic),
                existing.interval.union(value_type.interval),
                (length,),
            )
        else:
            merged = ValueType(value_type.basic, value_type.interval, (length,))
        self.bindings[stmt.var] = merged

    def _check_if(self, stmt: If) -> None:
        cond = self.infer(stmt.cond)
        if cond.basic != "bool":
            raise AnalysisError(f"line {stmt.line}: if-condition must be boolean")
        before = dict(self.bindings)
        self.check_block(stmt.then_body)
        after_then = self.bindings
        self.bindings = dict(before)
        self.check_block(stmt.else_body)
        after_else = self.bindings
        merged: Dict[str, ValueType] = {}
        for name in set(after_then) | set(after_else):
            a = after_then.get(name)
            b = after_else.get(name)
            if a is None:
                merged[name] = b
            elif b is None:
                merged[name] = a
            else:
                merged[name] = a.join(b)
        self.bindings = merged

    def _check_for(self, stmt: For) -> None:
        start = self.infer(stmt.start)
        end = self.infer(stmt.end)
        for bound, what in ((start, "start"), (end, "end")):
            if not bound.is_scalar or not bound.interval.is_finite():
                raise AnalysisError(
                    f"line {stmt.line}: loop {what} bound must be a finite scalar"
                )
        lo = int(math.floor(start.interval.lo))
        hi = int(math.ceil(end.interval.hi))
        trip_count = max(0, hi - lo + 1)
        loop_var = ValueType("int", Interval(lo, max(lo, hi)))
        self.bindings[stmt.var] = loop_var
        if trip_count <= _UNROLL_LIMIT:
            for _ in range(trip_count):
                self.check_block(stmt.body)
            return
        self._widen_loop(stmt, trip_count)

    def _widen_loop(self, stmt: For, trip_count: int) -> None:
        """Linear widening for long loops; see the module docstring.

        Widening runs to a fixpoint over a few rounds, because variables
        defined *inside* the loop (or derived from other widened variables)
        only stabilize once their inputs have been widened. If the state
        still escapes after the round budget, the growth is genuinely
        faster than linear and the analyst must ``clip``.
        """
        for _round in range(4):
            before = dict(self.bindings)
            self.check_block(stmt.body)
            widened: Dict[str, ValueType] = {}
            stable = True
            for name, after in self.bindings.items():
                prior = before.get(name)
                if prior is None or prior.shape != after.shape:
                    widened[name] = after
                    stable = False
                    continue
                grow_hi = max(0.0, after.interval.hi - prior.interval.hi)
                grow_lo = max(0.0, prior.interval.lo - after.interval.lo)
                if grow_hi > 1e-9 or grow_lo > 1e-9:
                    stable = False
                widened[name] = ValueType(
                    promote(prior.basic, after.basic),
                    Interval(
                        prior.interval.lo - grow_lo * trip_count,
                        prior.interval.hi + grow_hi * trip_count,
                    ),
                    after.shape,
                )
            self.bindings = widened
            if stable:
                return
            # Verify the widened state is a post-fixpoint: one more body
            # pass must stay within a per-iteration slack proportional to
            # the widened width.
            state = dict(self.bindings)
            self.check_block(stmt.body)
            escaped = None
            for name, after in self.bindings.items():
                prior = state.get(name)
                if prior is None or prior.shape != after.shape:
                    continue
                per_iter_slack = max(
                    after.interval.hi - prior.interval.hi,
                    prior.interval.lo - after.interval.lo,
                    0.0,
                )
                allowed = (prior.interval.width + 1.0) / max(trip_count, 1)
                if per_iter_slack > allowed * 4 + 1e-9:
                    escaped = name
            self.bindings = state
            if escaped is None:
                return
        raise AnalysisError(
            f"line {stmt.line}: variable {escaped!r} grows faster than "
            f"linearly across {trip_count} iterations; add clip() to bound "
            f"its range"
        )

    # ----------------------------------------------------------- expressions

    def infer(self, expr: Expr) -> ValueType:
        result = self._infer(expr)
        self.expr_types[id(expr)] = result
        return result

    def _infer(self, expr: Expr) -> ValueType:
        if isinstance(expr, IntLit):
            return ValueType("int", point(expr.value))
        if isinstance(expr, FloatLit):
            return ValueType("fix", point(expr.value))
        if isinstance(expr, BoolLit):
            return ValueType("bool", point(1.0 if expr.value else 0.0))
        if isinstance(expr, Var):
            if expr.name not in self.bindings:
                raise AnalysisError(f"line {expr.line}: undefined variable {expr.name!r}")
            return self.bindings[expr.name]
        if isinstance(expr, Index):
            base = self.infer(expr.base)
            index = self.infer(expr.index)
            if not index.is_scalar:
                raise AnalysisError(f"line {expr.line}: array index must be scalar")
            return base.element()
        if isinstance(expr, UnOp):
            return self._infer_unop(expr)
        if isinstance(expr, BinOp):
            return self._infer_binop(expr)
        if isinstance(expr, Call):
            return self._infer_call(expr)
        raise AnalysisError(f"unknown expression {type(expr).__name__}")

    def _infer_unop(self, expr: UnOp) -> ValueType:
        operand = self.infer(expr.operand)
        if expr.op == "!":
            if operand.basic != "bool":
                raise AnalysisError(f"line {expr.line}: ! needs a boolean operand")
            return ValueType("bool", BOOLEAN, operand.shape)
        if expr.op == "-":
            return ValueType(
                promote(operand.basic, "int"), -operand.interval, operand.shape
            )
        raise AnalysisError(f"unknown unary operator {expr.op!r}")

    def _infer_binop(self, expr: BinOp) -> ValueType:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        shape = self._broadcast_shape(left, right, expr.line)
        op = expr.op
        if op in ("&&", "||"):
            if left.basic != "bool" or right.basic != "bool":
                raise AnalysisError(f"line {expr.line}: {op} needs boolean operands")
            return ValueType("bool", BOOLEAN, shape)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return ValueType("bool", BOOLEAN, shape)
        basic = promote(promote(left.basic, right.basic), "int")
        if op == "+":
            interval = left.interval + right.interval
        elif op == "-":
            interval = left.interval - right.interval
        elif op == "*":
            interval = left.interval * right.interval
        elif op == "/":
            interval = left.interval / right.interval
            basic = "fix"
            if not interval.is_finite():
                raise AnalysisError(
                    f"line {expr.line}: division range is unbounded "
                    f"(divisor may be zero); clip() the divisor"
                )
        else:
            raise AnalysisError(f"unknown binary operator {op!r}")
        return ValueType(basic, interval, shape)

    def _broadcast_shape(self, left: ValueType, right: ValueType, line: int) -> Tuple[int, ...]:
        if left.shape == right.shape:
            return left.shape
        if left.is_scalar:
            return right.shape
        if right.is_scalar:
            return left.shape
        raise AnalysisError(
            f"line {line}: shape mismatch {left.shape} vs {right.shape}"
        )

    # -------------------------------------------------------------- builtins

    def _infer_call(self, expr: Call) -> ValueType:
        args = [self.infer(a) for a in expr.args]
        handler = getattr(self, f"_builtin_{expr.func}", None)
        if handler is None:
            raise AnalysisError(f"line {expr.line}: unknown function {expr.func!r}")
        return handler(expr, args)

    def _require_args(self, expr: Call, args: List[ValueType], count: int) -> None:
        if len(args) != count:
            raise AnalysisError(
                f"line {expr.line}: {expr.func} expects {count} argument(s), got {len(args)}"
            )

    def _builtin_sum(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        arg = args[0]
        if len(arg.shape) == 2:
            n = arg.shape[0]
            return ValueType(
                promote(arg.basic, "int"), arg.interval.scale(n), (arg.shape[1],)
            )
        if len(arg.shape) == 1:
            return ValueType(
                promote(arg.basic, "int"), arg.interval.scale(arg.length), ()
            )
        raise AnalysisError(f"line {expr.line}: sum needs an array argument")

    def _builtin_max(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        arg = args[0]
        if len(arg.shape) != 1:
            raise AnalysisError(f"line {expr.line}: max needs a vector argument")
        return ValueType(arg.basic, arg.interval, ())

    def _builtin_argmax(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        arg = args[0]
        if len(arg.shape) != 1:
            raise AnalysisError(f"line {expr.line}: argmax needs a vector argument")
        return ValueType("int", Interval(0, arg.length - 1), ())

    def _builtin_em(self, expr: Call, args: List[ValueType]) -> ValueType:
        if len(args) not in (1, 2):
            raise AnalysisError(f"line {expr.line}: em expects 1 or 2 arguments")
        arg = args[0]
        if len(arg.shape) != 1:
            raise AnalysisError(f"line {expr.line}: em needs a vector of scores")
        index = Interval(0, arg.length - 1)
        if len(args) == 2:
            k_type = args[1]
            if k_type.interval.lo != k_type.interval.hi:
                raise AnalysisError(f"line {expr.line}: em's k must be a constant")
            k = int(k_type.interval.hi)
            if k > 1:
                return ValueType("int", index, (k,))
        return ValueType("int", index, ())

    def _builtin_laplace(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 2)
        value, scale = args
        tail = scale.interval.hi * NOISE_TAIL_SCALES
        return ValueType(
            "fix",
            Interval(value.interval.lo - tail, value.interval.hi + tail),
            value.shape,
        )

    def _builtin_gumbel(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        tail = args[0].interval.hi * NOISE_TAIL_SCALES
        return ValueType("fix", Interval(-tail, tail), ())

    def _builtin_sampleUniform(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 2)
        arg = args[0]
        if len(arg.shape) != 2:
            raise AnalysisError(
                f"line {expr.line}: sampleUniform selects rows of the input matrix"
            )
        phi = args[1]
        if not 0.0 < phi.interval.hi <= 1.0:
            raise AnalysisError(
                f"line {expr.line}: sampling probability must be in (0, 1]"
            )
        return arg

    def _builtin_clip(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 3)
        value, lo, hi = args
        return ValueType(
            value.basic, value.interval.clip(lo.interval.lo, hi.interval.hi), value.shape
        )

    def _builtin_exp(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        return ValueType("fix", args[0].interval.exp(), args[0].shape)

    def _builtin_log(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        interval = args[0].interval.log()
        if not interval.is_finite():
            raise AnalysisError(f"line {expr.line}: log range is unbounded; clip the argument")
        return ValueType("fix", interval, args[0].shape)

    def _builtin_sqrt(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        return ValueType("fix", args[0].interval.sqrt(), args[0].shape)

    def _builtin_abs(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        return ValueType(args[0].basic, args[0].interval.abs(), args[0].shape)

    def _builtin_len(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        if not args[0].shape:
            raise AnalysisError(f"line {expr.line}: len needs an array argument")
        return ValueType("int", point(args[0].shape[0]), ())

    def _builtin_random(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        bound = args[0]
        return ValueType(
            promote(bound.basic, "int"), Interval(0.0, max(bound.interval.hi, 0.0)), ()
        )

    def _builtin_output(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        self.output_types.append(args[0])
        return args[0]

    def _builtin_declassify(self, expr: Call, args: List[ValueType]) -> ValueType:
        self._require_args(expr, args, 1)
        return args[0]


def infer_types(program: Program, env: QueryEnvironment) -> TypeChecker:
    """Run inference over a whole program and return the checker with results."""
    checker = TypeChecker(env)
    checker.check_program(program)
    return checker
