"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``plan``     certify + plan a query (from a file or inline) and print the
             chosen plan with its six-metric cost report.
``run``      plan a query and execute it end-to-end on a simulated
             deployment, printing the protocol transcript and the answer.
``queries``  list the built-in Table 2 queries.
``eval``     regenerate an evaluation artifact (table1, table2, fig6..fig11,
             hetero, or all).
``verify-plan``  plan a query and run the static plan verifier on the result,
             printing the invariant report (exit 1 on any violation);
             ``--dataflow`` additionally runs the privacy dataflow
             analyzer and prints the derived privacy certificate.
``certificate``  plan a query, run the dataflow analyzer, and print the
             machine-checkable privacy certificate as JSON.
``verify-sweep``  dataflow-analyze every catalog query at paper scale plus
             the chaos-suite query; exit 1 unless every plan analyzes
             clean and yields a certificate.
``lint``     run the privacy-invariant source lint over the repro sources
             (exit 1 on any finding, warnings included).
``chaos``    replay named fault-injection scenarios against the runtime and
             check every recovery reproduces the fault-free answer
             bit-for-bit (exit 1 on any wrong value or unpaired fault);
             coordinator-crash scenarios run through the execution journal
             and its crash→resume path. ``--json`` emits the verdicts and
             fault logs as canonical JSON; ``--crash-sweep`` kills the
             coordinator at every checkpoint in turn and verifies each
             resumed run is digest-identical to the uninterrupted one.
``resume``   reload a ``--journal`` file from a dead run, rebuild the
             deployment from its manifest, and replay to completion.
``serve``    run the multi-tenant query service over a workload file:
             admission control against per-tenant envelopes, budget
             scheduling, the keyed plan cache, and per-submission
             exactly-once accounting; prints the dispatch ledger, the
             service counter block, and per-tenant accounting.
``submit``   one-shot service submission: admit, schedule, plan (or hit
             the cache), execute one query as a named tenant and print
             the decision, score decomposition, and budget report.
``tenants``  replay a workload (deterministic under its seed) and print
             only the per-tenant accounting table.
``backends`` list the pluggable crypto kernel backends (pure oracle vs
             gmpy2/numba accelerated), which one is active, why it was
             selected, and how to override (``REPRO_CRYPTO_BACKEND``).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis.types import QueryEnvironment
from .planner.costmodel import Constraints, CostVector, Goal
from .planner.search import Planner, PlanningFailed
from .queries.catalog import ALL_QUERIES, BY_NAME


def _read_query(args) -> str:
    if args.query_file == "-":
        return sys.stdin.read()
    if args.query_file in BY_NAME:
        return BY_NAME[args.query_file].source
    try:
        with open(args.query_file) as handle:
            return handle.read()
    except OSError as exc:
        print(
            f"cannot read query {args.query_file!r}: {exc.strerror or exc}; "
            "pass a file, a built-in query name (see 'repro queries'), or '-'",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _environment(args) -> QueryEnvironment:
    spec = BY_NAME.get(args.query_file)
    if spec is not None:
        return spec.environment(
            num_participants=args.participants,
            categories=args.categories,
            epsilon=args.epsilon,
        )
    return QueryEnvironment(
        num_participants=args.participants,
        row_width=args.categories,
        epsilon=args.epsilon,
        sensitivity=args.sensitivity,
    )


def _constraints(args) -> Constraints:
    return Constraints(
        aggregator_core_seconds=(
            args.max_aggregator_core_hours * 3600
            if args.max_aggregator_core_hours
            else None
        ),
        participant_max_seconds=(
            args.max_participant_minutes * 60 if args.max_participant_minutes else None
        ),
        participant_max_bytes=(
            args.max_participant_gb * 1e9 if args.max_participant_gb else None
        ),
    )


def _print_cost(cost: CostVector) -> None:
    print("cost report:")
    print(f"  aggregator compute:     {cost.aggregator_core_seconds / 3600:,.1f} core-hours")
    print(f"  aggregator traffic:     {cost.aggregator_bytes / 1e12:,.1f} TB")
    print(
        f"  participant (expected): {cost.participant_expected_seconds:.1f} s, "
        f"{cost.participant_expected_bytes / 1e6:.2f} MB"
    )
    print(
        f"  participant (maximum):  {cost.participant_max_seconds / 60:.1f} min, "
        f"{cost.participant_max_bytes / 1e9:.2f} GB"
    )


def cmd_plan(args) -> int:
    source = _read_query(args)
    env = _environment(args)
    planner = Planner(
        env,
        constraints=_constraints(args),
        goal=Goal(args.goal),
        workers=args.workers,
    )
    try:
        result = planner.plan_source(source, name=args.query_file)
    except PlanningFailed as failure:
        print(f"planning failed: {failure}", file=sys.stderr)
        return 1
    if args.json:
        import json

        from .planner.serialize import planning_result_to_dict

        print(json.dumps(planning_result_to_dict(result), indent=2))
        return 0
    print(f"certified: ε = {result.certificate.epsilon:g}, "
          f"δ = {result.certificate.delta:.2e}")
    print(result.plan.describe())
    if args.explain:
        print()
        print(result.plan.explain(planner.model, env.num_participants))
    _print_cost(result.plan.cost)
    stats = result.statistics
    print(
        f"planner: {stats.prefixes_considered} prefixes, "
        f"{stats.candidates_scored} candidates, "
        f"{stats.runtime_seconds * 1000:.0f} ms"
    )
    if args.stats:
        print(
            f"  search space: {stats.space_size} candidates; "
            f"{stats.candidates_feasible} feasible, "
            f"{stats.pruned_by_constraint} pruned by constraints, "
            f"{stats.pruned_by_bound} pruned by bound"
        )
        print(
            f"  cost cache: {stats.cost_cache_hits} hits / "
            f"{stats.cost_cache_misses} misses; "
            f"expansion cache: {stats.expansion_cache_hits} hits / "
            f"{stats.expansion_cache_misses} misses"
        )
        print(
            f"  ordering: {stats.nodes_reordered} nodes reordered; "
            f"workers: {stats.workers}"
        )
    return 0


def _executor_from_manifest(manifest: dict, journal=None):
    """Rebuild a :class:`QueryExecutor` from a journal manifest.

    The manifest is the ``open`` record of an execution journal: every
    parameter that shaped the original deployment. Rebuilding from it must
    reproduce the original construction order exactly (network before
    data load before executor), because the shared RNGs are consumed in
    that order and resume correctness rests on replaying the same draws.
    """
    from .faults import FaultInjector, FaultPlan
    from .runtime.executor import QueryExecutor
    from .runtime.network import FederatedNetwork

    env = QueryEnvironment(
        num_participants=manifest["devices"],
        row_width=manifest["categories"],
        epsilon=manifest["epsilon"],
        sensitivity=manifest["sensitivity"],
    )
    planning = Planner(env).plan_source(
        manifest["source"], name=manifest["query_name"]
    )
    # Sharded-plane knobs: manifest.get so journals written before the
    # sharded plane existed still rebuild (they ran a flat plane).
    shard_kwargs = {
        "shard_size": manifest.get("shard_size", 1024),
        "shard_workers": manifest.get("shard_workers", 0),
        "tree_fanout": manifest.get("tree_fanout", 16),
    }
    if manifest["recipe"] == "chaos":
        network = FederatedNetwork(
            manifest["devices"], rng=random.Random(manifest["seed"])
        )
        network.load_categorical_data(manifest["categories"])
        return QueryExecutor(
            network,
            planning,
            committee_size=manifest["committee_size"],
            key_prime_bits=manifest["key_prime_bits"],
            rng=random.Random(manifest["seed"] + 1),
            faults=FaultInjector(
                FaultPlan.from_dict(manifest["scenario"]),
                seed=manifest["fault_seed"],
            ),
            data_plane=manifest.get("data_plane", "vectorized"),
            journal=journal,
            **shard_kwargs,
        )
    # recipe == "run": one rng shared by sortition and executor.
    rng = random.Random(manifest["seed"])
    network = FederatedNetwork(
        manifest["devices"], rng=rng, malicious_fraction=manifest["malicious"]
    )
    network.load_categorical_data(manifest["categories"])
    return QueryExecutor(
        network,
        planning,
        committee_size=manifest["committee_size"],
        rng=rng,
        data_plane=manifest["data_plane"],
        journal=journal,
        **shard_kwargs,
    )


def cmd_run(args) -> int:
    from .runtime.journal import ExecutionJournal

    source = _read_query(args)
    manifest = {
        "recipe": "run",
        "query_name": args.query_file,
        "source": source,
        "devices": args.devices,
        "categories": args.categories,
        "epsilon": args.epsilon,
        "sensitivity": args.sensitivity,
        "committee_size": args.committee_size,
        "malicious": args.malicious,
        "seed": args.seed,
        "data_plane": args.data_plane,
        "shard_size": args.shard_size,
        "shard_workers": args.shard_workers,
        "tree_fanout": args.tree_fanout,
    }
    journal = (
        ExecutionJournal.create(args.journal, manifest) if args.journal else None
    )
    executor = _executor_from_manifest(manifest, journal)
    outcome = executor.run()
    for event in outcome.events:
        print(" ", event)
    print(f"rejected: {outcome.rejected_devices}")
    print(f"output(s): {outcome.outputs}")
    if journal is not None:
        print(
            f"journal: {journal.record_count} record(s) at {args.journal} "
            f"(tail digest {journal.tail_digest()[:16]}…)"
        )
    if args.stats and outcome.statistics is not None:
        print("runtime statistics:")
        for key, value in outcome.statistics.as_dict().items():
            if isinstance(value, float):
                print(f"  {key}: {value:.6f}")
            else:
                print(f"  {key}: {value}")
    return 0


def cmd_resume(args) -> int:
    from .faults import CoordinatorCrash, UnrecoverableFault
    from .runtime.journal import ExecutionJournal, JournalError

    try:
        journal = ExecutionJournal.load(args.journal)
    except JournalError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 1
    manifest = journal.manifest
    if not manifest or "recipe" not in manifest:
        print(
            "cannot resume: the journal carries no run manifest, so the "
            "deployment cannot be rebuilt",
            file=sys.stderr,
        )
        return 1
    if journal.completed:
        stored = journal.result
        print("journal is already complete; stored result:")
        for event in stored.get("events", []):
            print(" ", event)
        print(f"output(s): {stored['outputs_repr']}")
        print(f"ε charged: {stored['epsilon_charged']}")
        return 0
    print(
        f"resuming {manifest['recipe']} run of {manifest['query_name']!r} "
        f"from {journal.record_count} journaled record(s) "
        f"({journal.crash_count} recorded crash(es))"
    )
    resumes = 1
    while True:
        executor = _executor_from_manifest(manifest, journal)
        try:
            outcome = executor.run()
            break
        except UnrecoverableFault as exc:
            print(exc.log.format())
            print(f"aborted: {exc.reason}", file=sys.stderr)
            return 1
        except CoordinatorCrash as crash:
            resumes += 1
            if resumes > 8:
                print("giving up: the coordinator keeps dying", file=sys.stderr)
                return 1
            print(
                f"coordinator died again at checkpoint "
                f"{crash.checkpoint_seq} ({crash.checkpoint}); resuming"
            )
            journal = ExecutionJournal.load(args.journal)
    for event in outcome.events:
        print(" ", event)
    print(f"output(s): {outcome.outputs}")
    stats = outcome.statistics
    print(
        f"resumed across {resumes} incarnation(s): "
        f"{stats.journal_replayed} checkpoint(s) replay-verified, "
        f"{stats.resume_events} crash(es) stepped over, "
        f"{stats.journal_records} record(s) now journaled"
    )
    return 0


def cmd_verify_plan(args) -> int:
    from .verify import verify_planning_result

    source = _read_query(args)
    env = _environment(args)
    planner = Planner(env, constraints=_constraints(args), goal=Goal(args.goal))
    try:
        result = planner.plan_source(source, name=args.query_file)
    except PlanningFailed as failure:
        print(f"planning failed: {failure}", file=sys.stderr)
        return 1
    report = verify_planning_result(result)
    print(report.format())
    ok = report.ok
    if args.dataflow:
        from .verify import analyze_planning_result

        df_report, certificate = analyze_planning_result(result)
        print()
        print(df_report.format())
        if certificate is not None:
            print()
            print(certificate.format())
        ok = ok and df_report.ok and certificate is not None
    return 0 if ok else 1


def cmd_certificate(args) -> int:
    import json

    from .verify import analyze_planning_result

    source = _read_query(args)
    env = _environment(args)
    planner = Planner(env, constraints=_constraints(args), goal=Goal(args.goal))
    try:
        result = planner.plan_source(source, name=args.query_file)
    except PlanningFailed as failure:
        print(f"planning failed: {failure}", file=sys.stderr)
        return 1
    report, certificate = analyze_planning_result(result)
    if certificate is None:
        print(report.format(), file=sys.stderr)
        return 1
    print(json.dumps(certificate.to_dict(), indent=2))
    print(f"digest: sha256:{certificate.digest()}", file=sys.stderr)
    return 0


def cmd_verify_sweep(args) -> int:
    from .verify import analyze_planning_result

    failures = 0
    targets = [
        (spec.name, spec.source, spec.environment())
        for spec in ALL_QUERIES
    ]
    # The chaos suite executes one query under every fault scenario; its
    # plan must carry a certificate too, or `repro chaos` runs unproven.
    targets.append(
        (
            "chaos",
            "aggr = sum(db); output(em(aggr));",
            QueryEnvironment(
                num_participants=32,
                row_width=8,
                epsilon=4.0,
                sensitivity=1.0,
            ),
        )
    )
    for name, source, env in targets:
        try:
            result = Planner(env).plan_source(source, name=name)
        except PlanningFailed as failure:
            print(f"{name:12s} FAILED: planning failed: {failure}")
            failures += 1
            continue
        report, certificate = analyze_planning_result(result)
        if report.ok and certificate is not None:
            print(
                f"{name:12s} ok: {len(certificate.nodes)} mechanism use(s), "
                f"ε ≤ {certificate.total_epsilon.hi:g}, "
                f"δ ≤ {certificate.total_delta.hi:.3g}, "
                f"digest sha256:{certificate.digest()[:16]}…"
            )
        else:
            failures += 1
            print(f"{name:12s} FAILED:")
            for line in report.format().splitlines():
                print(f"  {line}")
    total = len(targets)
    print(f"\n{total - failures}/{total} plan(s) analyze clean")
    if failures:
        return 1
    print(
        "(covers the 10 catalog queries at paper scale and the query "
        "every chaos scenario replays)"
    )
    return 0


def cmd_lint(args) -> int:
    import pathlib

    from .verify import lint_paths

    paths = args.paths or [str(pathlib.Path(__file__).resolve().parent)]
    report = lint_paths(paths)
    print(report.format())
    # Warnings are findings too: a lint that only fails on errors rots
    # into an advisory nobody reads. Any finding fails the build.
    return 0 if not report.violations else 1


_CHAOS_QUERY = "aggr = sum(db); output(em(aggr));"


def _chaos_manifest(args, plan) -> dict:
    return {
        "recipe": "chaos",
        "query_name": "chaos",
        "source": _CHAOS_QUERY,
        "devices": args.devices,
        "categories": args.categories,
        "epsilon": args.epsilon,
        "sensitivity": 1.0,
        "committee_size": args.committee_size,
        "key_prime_bits": 96,
        "seed": args.seed,
        "fault_seed": args.seed,
        "scenario": plan.as_dict(),
        "data_plane": args.data_plane,
        "shard_size": args.shard_size,
        "shard_workers": args.shard_workers,
        "tree_fanout": args.tree_fanout,
    }


def _chaos_execute(args, plan, journal_path=None):
    """One chaos run; coordinator-crash plans go through crash→resume.

    Returns ``(outcome, resumes)``. A plan that kills the coordinator is
    executed under a journal (at ``journal_path`` or a temporary file)
    and driven to completion across incarnations.
    """
    import os
    import tempfile

    from .runtime.journal import run_to_completion

    manifest = _chaos_manifest(args, plan)
    if not plan.crashes_coordinator and journal_path is None:
        return _executor_from_manifest(manifest).run(), 0
    if journal_path is not None:
        return run_to_completion(
            lambda j: _executor_from_manifest(manifest, j), journal_path, manifest
        )
    with tempfile.TemporaryDirectory() as tmp:
        return run_to_completion(
            lambda j: _executor_from_manifest(manifest, j),
            os.path.join(tmp, f"{plan.name}.journal"),
            manifest,
        )


def _chaos_crash_sweep(args) -> int:
    """Kill the coordinator at every checkpoint; verify resumes converge.

    An uninterrupted baseline run (under a journal) enumerates the
    checkpoints. Then, for each checkpoint, a fresh run is killed exactly
    there and resumed; the resumed run must yield the same QueryResult
    and the same per-checkpoint payload digests as the baseline.
    """
    import os
    import tempfile

    from .faults import COORDINATOR_CRASH, FaultEvent, FaultPlan, get_scenario
    from .runtime.journal import ExecutionJournal, run_to_completion

    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.journal")
        baseline, _ = _chaos_execute(args, get_scenario("none"), base_path)
        base_digests = ExecutionJournal.load(base_path).checkpoint_digests()
        payloads = ExecutionJournal.load(base_path).checkpoint_payloads()
        print(
            f"baseline: value {baseline.value!r}, "
            f"{len(payloads)} checkpoint(s) journaled"
        )
        failures = 0
        for payload in payloads:
            seq, label = payload["seq"], payload["label"]
            plan = FaultPlan(
                f"crash-at-{seq}",
                f"coordinator dies at checkpoint {seq} ({label})",
                events=(
                    FaultEvent(COORDINATOR_CRASH, payload["phase"], target=seq),
                ),
            )
            manifest = _chaos_manifest(args, plan)
            path = os.path.join(tmp, f"crash-at-{seq}.journal")
            outcome, resumes = run_to_completion(
                lambda j: _executor_from_manifest(manifest, j), path, manifest
            )
            digests = ExecutionJournal.load(path).checkpoint_digests()
            same_result = outcome == baseline
            same_digests = digests == base_digests
            if same_result and same_digests:
                print(
                    f"  crash at checkpoint {seq:2d} ({label}): ok — "
                    f"{resumes} resume(s), digests identical"
                )
            else:
                failures += 1
                print(
                    f"  crash at checkpoint {seq:2d} ({label}): FAILED — "
                    f"result identical: {same_result}, "
                    f"digests identical: {same_digests}"
                )
    total = len(payloads)
    print(f"{total - failures}/{total} checkpoint crash(es) resume bit-identically")
    return 1 if failures else 0


def cmd_chaos(args) -> int:
    from .faults import (
        COORDINATOR_CRASH,
        UnrecoverableFault,
        get_scenario,
        list_scenarios,
    )

    if args.list:
        print(f"{'scenario':24s} {'events':>6s}  description")
        for plan in list_scenarios():
            print(f"{plan.name:24s} {len(plan.events):>6d}  {plan.description}")
        return 0
    if args.crash_sweep:
        return _chaos_crash_sweep(args)

    if args.scenario == "all":
        names = [plan.name for plan in list_scenarios()]
    else:
        try:
            names = [get_scenario(args.scenario).name]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    quiet = args.json
    baseline, _ = _chaos_execute(args, get_scenario("none"))
    if not quiet:
        print(f"fault-free baseline value: {baseline.value!r}")
    failures = 0
    reports = []
    for name in names:
        plan = get_scenario(name)
        if not quiet:
            print(f"\n== {name}: {plan.description}")
        report = {
            "scenario": name,
            "description": plan.description,
            "resumes": 0,
            "value": None,
            "fault_log": None,
        }
        reports.append(report)
        try:
            outcome, resumes = _chaos_execute(args, plan)
        except UnrecoverableFault as exc:
            report["fault_log"] = exc.log.as_dict()
            if not quiet:
                print(exc.log.format())
            if plan.expect_unrecoverable:
                verdict = f"ok — aborted as expected ({exc.reason})"
            else:
                verdict = f"FAILED — unexpected abort: {exc.reason}"
                failures += 1
            report["verdict"] = verdict
            if not quiet:
                print(f"verdict: {verdict}")
            continue
        report["resumes"] = resumes
        report["value"] = outcome.value
        report["fault_log"] = outcome.fault_log.as_dict()
        if not quiet:
            print(outcome.fault_log.format())
        resumed = f", {resumes} coordinator resume(s)" if resumes else ""
        if plan.expect_unrecoverable:
            verdict = "FAILED — run completed but was expected to abort"
            failures += 1
        elif plan.mutates_inputs:
            verdict = (
                f"ok — value {outcome.value!r} (inputs mutated; "
                "baseline comparison not applicable)"
            )
        elif outcome.value != baseline.value:
            verdict = (
                f"FAILED — value {outcome.value!r} differs from "
                f"fault-free {baseline.value!r}"
            )
            failures += 1
        elif (
            plan.crashes_coordinator
            and all(e.kind == COORDINATOR_CRASH for e in plan.events)
            and outcome != baseline
        ):
            # A pure coordinator-crash schedule injects no member faults,
            # so the resumed QueryResult must equal the baseline entirely
            # (fault log included), not just in its released value.
            verdict = "FAILED — resumed QueryResult differs from baseline"
            failures += 1
        elif not outcome.fault_log.all_recovered:
            verdict = "FAILED — fault record(s) left unresolved"
            failures += 1
        else:
            verdict = (
                f"ok — bit-identical value {outcome.value!r}, "
                f"{outcome.fault_log.recovered} fault(s) recovered/tolerated"
                f"{resumed}"
            )
        report["verdict"] = verdict
        if not quiet:
            print(f"verdict: {verdict}")
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "baseline_value": baseline.value,
                    "scenarios": reports,
                    "failures": failures,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"\n{len(names) - failures}/{len(names)} scenario(s) ok")
    return 1 if failures else 0


# ------------------------------------------------------------ service verbs


def _load_workload(path: str) -> dict:
    import json

    if path == "-":
        return json.load(sys.stdin)
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read workload {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _query_source(query: str) -> str:
    """A workload query is a catalog name or inline source text."""
    spec = BY_NAME.get(query)
    return spec.source if spec is not None else query


def _service_from_workload(workload: dict, args):
    import random as random_module

    from .runtime.network import FederatedNetwork
    from .service import QueryService, ServiceConfig, TenantPolicy
    from .session import AnalyticsSession

    devices = args.devices or workload.get("devices", 24)
    seed = args.seed if args.seed is not None else workload.get("seed", 7)
    categories = workload.get("categories", 8)
    network = FederatedNetwork(devices, rng=random_module.Random(seed))
    network.load_categorical_data(
        categories, distribution=workload.get("distribution")
    )
    session = AnalyticsSession(
        network,
        epsilon_budget=workload.get("epsilon_budget", 10.0),
        delta_budget=workload.get("delta_budget", 1e-6),
        rng=random_module.Random(seed + 1),
    )
    tenants = [
        TenantPolicy(
            entry["name"],
            entry["epsilon_budget"],
            entry.get("delta_budget", workload.get("delta_budget", 1e-6)),
            entry.get("weight", 1.0),
        )
        for entry in workload.get("tenants", [])
    ]
    if not tenants:
        print("workload declares no tenants", file=sys.stderr)
        raise SystemExit(2)
    return QueryService(session, tenants, ServiceConfig()), categories


def _replay_workload(service, workload: dict, categories: int, workers: int):
    """Submit every workload query (rejections tallied), then drain."""
    from .runtime.executor import QueryRejected

    rejections = []
    requests = []
    for entry in workload.get("queries", []):
        requests.append(
            dict(
                tenant=entry["tenant"],
                source=_query_source(entry["query"]),
                categories=entry.get("categories", categories),
                epsilon=entry.get("epsilon"),
                utility=entry.get("utility"),
                deadline=entry.get("deadline"),
            )
        )
    outcomes = service.submit_many(requests, workers=workers)
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, QueryRejected):
            rejections.append((requests[index]["tenant"], str(outcome)))
    service.drain()
    return rejections


def _print_tenant_table(rows) -> None:
    print(
        f"{'tenant':12s} {'ε budget':>9s} {'ε spent':>9s} {'ε left':>9s} "
        f"{'sub':>4s} {'run':>4s} {'rej':>4s}"
    )
    for row in rows:
        print(
            f"{row['tenant']:12s} {row['epsilon_budget']:>9.3g} "
            f"{row['spent_epsilon']:>9.3g} {row['remaining_epsilon']:>9.3g} "
            f"{row['submitted']:>4d} {row['executed']:>4d} {row['rejected']:>4d}"
        )


def _service_report(service, rejections) -> dict:
    from .crypto.backend import active_backend_name

    return {
        "crypto_backend": active_backend_name(),
        "records": [record.as_dict() for record in service.records],
        "statistics": service.statistics.as_dict(),
        "tenants": service.tenant_report(),
        "budget": service.budget_report().as_dict(),
        "admission_rejections": [
            {"tenant": tenant, "error": error} for tenant, error in rejections
        ],
    }


def cmd_serve(args) -> int:
    import json

    workload = _load_workload(args.workload)
    service, categories = _service_from_workload(workload, args)
    rejections = _replay_workload(service, workload, categories, args.workers)
    if args.json:
        print(json.dumps(_service_report(service, rejections), indent=2))
        return 0
    print(
        f"{'seq':>4s} {'tenant':12s} {'outcome':9s} {'cache':5s} "
        f"{'ε':>6s} {'plan ms':>8s} {'exec ms':>8s}  value"
    )
    for r in service.records:
        print(
            f"{r.seq:>4d} {r.tenant:12s} {r.outcome:9s} "
            f"{'hit' if r.cache_hit else 'miss':5s} {r.epsilon_charged:>6.2f} "
            f"{r.plan_seconds * 1000:>8.2f} {r.execute_seconds * 1000:>8.2f}  "
            f"{r.value if r.outcome == 'executed' else (r.error or '')}"
        )
    for tenant, error in rejections:
        print(f"   - {tenant:12s} rejected at admission: {error}")
    stats = service.statistics
    print(
        f"\nservice: {stats.submitted} submitted, {stats.admitted} admitted, "
        f"{stats.executed} executed, "
        f"{stats.rejected_budget} budget-rejected, "
        f"{stats.rejected_policy} policy-rejected, "
        f"{stats.expired_deadlines} expired"
    )
    print(
        f"plan cache: {stats.cache_hits} hit(s), {stats.cache_misses} miss(es), "
        f"{stats.cache_stale_evictions} stale eviction(s); "
        f"{stats.planner_invocations} planner search(es)"
    )
    from .crypto.backend import active_backend_name, selection_reason

    print(f"ε charged: {stats.epsilon_charged:g}")
    print(f"crypto backend: {active_backend_name()} ({selection_reason()})\n")
    _print_tenant_table(service.tenant_report())
    return 0


def cmd_submit(args) -> int:
    import json

    from .runtime.executor import QueryRejected

    workload = {
        "devices": args.devices or 24,
        "seed": args.seed if args.seed is not None else 7,
        "epsilon_budget": args.epsilon_budget,
        "delta_budget": 1e-6,
        "tenants": [
            {
                "name": args.tenant,
                "epsilon_budget": args.tenant_budget or args.epsilon_budget,
            }
        ],
    }
    service, categories = _service_from_workload(workload, args)
    source = _read_query(args)
    try:
        ticket = service.submit(
            args.tenant,
            source,
            categories=args.categories or categories,
            epsilon=args.epsilon,
            utility=args.utility,
            deadline=args.deadline,
        )
    except QueryRejected as exc:
        print(f"rejected at admission ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 1
    score = ticket.score
    print(
        f"admitted {ticket.submission.name!r}: priority {score.priority:.3f} "
        f"(utility {score.utility:.2f}, frugality {score.frugality:.2f}, "
        f"headroom {score.headroom:.2f})"
    )
    service.drain()
    record = ticket.record(timeout=0)
    print(
        f"outcome: {record.outcome} "
        f"({'cache hit' if record.cache_hit else 'planned'}, "
        f"plan {record.plan_seconds * 1000:.1f} ms, "
        f"execute {record.execute_seconds * 1000:.1f} ms)"
    )
    if record.outcome == "executed":
        print(f"value: {record.value!r}")
        print(f"ε charged: {record.epsilon_charged:g}")
    elif record.error:
        print(f"error: {record.error}", file=sys.stderr)
    if args.json:
        print(json.dumps(service.budget_report().as_dict(), indent=2))
    else:
        report = service.budget_report()
        print(
            f"budget: ε {report.spent_epsilon:g} spent / "
            f"{report.remaining_epsilon:g} remaining"
        )
    return 0 if record.outcome == "executed" else 1


def cmd_tenants(args) -> int:
    import json

    workload = _load_workload(args.workload)
    service, categories = _service_from_workload(workload, args)
    rejections = _replay_workload(service, workload, categories, args.workers)
    if args.json:
        print(
            json.dumps(
                {
                    "tenants": service.tenant_report(),
                    "budget": service.budget_report().as_dict(),
                },
                indent=2,
            )
        )
        return 0
    _print_tenant_table(service.tenant_report())
    report = service.budget_report()
    print(
        f"\nglobal: ε {report.spent_epsilon:g} spent of "
        f"{report.epsilon_budget:g} "
        f"({len(rejections)} admission rejection(s))"
    )
    return 0


def cmd_backends(args) -> int:
    import json

    from .crypto import backend as crypto_backend

    rows = crypto_backend.describe_backends()
    if args.json:
        print(json.dumps({"backends": rows, "env_var": crypto_backend.BACKEND_ENV_VAR}, indent=2))
        return 0
    print(f"{'backend':8s} {'available':9s} {'active':6s}  detail")
    for row in rows:
        print(
            f"{row['backend']:8s} {'yes' if row['available'] else 'no':9s} "
            f"{'*' if row['selected'] else '':6s}  {row['detail']}"
        )
        if row["selected"]:
            print(f"{'':26s} selected: {row['selection_reason']}")
        elif row["unavailable_reason"]:
            print(f"{'':26s} unavailable: {row['unavailable_reason']}")
    print(
        f"\noverride with {crypto_backend.BACKEND_ENV_VAR}="
        f"{{pure,accel}} (accel is bit-identical to the pure oracle; "
        "see tests/test_backend_equivalence.py)"
    )
    return 0


def cmd_queries(_args) -> int:
    print(f"{'name':12s} {'action':28s} {'from':8s} {'lines':>5s}")
    for spec in ALL_QUERIES:
        print(f"{spec.name:12s} {spec.action:28s} {spec.source_paper:8s} {spec.lines:>5d}")
    return 0


def cmd_eval(args) -> int:
    from .eval import experiments, hetero, power

    if args.export:
        from .eval.export import export_all

        for path in export_all(args.export):
            print(f"wrote {path}")
        return 0

    from .eval import report as report_module

    targets = {
        "report": lambda: report_module.main("REPORT.md"),
        "table1": experiments.print_table1,
        "table2": experiments.print_table2,
        "fig6": experiments.print_fig6,
        "fig7": experiments.print_fig7,
        "fig8": experiments.print_fig8,
        "fig9": experiments.print_fig9,
        "fig10": experiments.print_fig10,
        "fig11": power.print_fig11,
        "hetero": hetero.print_hetero,
        "chaos": experiments.print_chaos,
    }
    if args.artifact == "all":
        for name, fn in targets.items():
            fn()
            print()
        return 0
    if args.artifact not in targets:
        print(f"unknown artifact {args.artifact!r}; known: "
              f"{', '.join([*targets, 'all'])}", file=sys.stderr)
        return 1
    targets[args.artifact]()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arboretum: plan and run federated analytics queries with DP",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="certify and plan a query")
    plan.add_argument("query_file", help="query file, built-in query name, or '-' for stdin")
    plan.add_argument("--participants", type=int, default=10**9)
    plan.add_argument("--categories", type=int, default=2**15)
    plan.add_argument("--epsilon", type=float, default=0.1)
    plan.add_argument("--sensitivity", type=float, default=1.0)
    plan.add_argument(
        "--goal", default="participant_expected_seconds", choices=CostVector.METRICS
    )
    plan.add_argument("--max-aggregator-core-hours", type=float, default=None)
    plan.add_argument("--max-participant-minutes", type=float, default=None)
    plan.add_argument("--max-participant-gb", type=float, default=None)
    plan.add_argument("--json", action="store_true", help="emit the plan as JSON")
    plan.add_argument(
        "--explain", action="store_true",
        help="print a per-vignette cost table for the chosen plan",
    )
    plan.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the branch-and-bound root split",
    )
    plan.add_argument(
        "--stats", action="store_true",
        help="print search-effort, cache, and ordering counters",
    )
    plan.set_defaults(func=cmd_plan)

    run = sub.add_parser("run", help="plan and execute on a simulated deployment")
    run.add_argument("query_file")
    run.add_argument("--devices", type=int, default=48)
    run.add_argument("--categories", type=int, default=8)
    run.add_argument("--epsilon", type=float, default=4.0)
    run.add_argument("--sensitivity", type=float, default=1.0)
    run.add_argument("--committee-size", type=int, default=4)
    run.add_argument("--malicious", type=float, default=0.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--data-plane",
        choices=("vectorized", "legacy", "sharded"),
        default="vectorized",
        help="execution data plane: packed/batched kernels, the seed "
        "one-ciphertext-per-slot path (byte-identical to vectorized), or "
        "the sharded event-driven runtime (own RNG schedule; serial and "
        "parallel sharded runs are byte-identical to each other)",
    )
    run.add_argument(
        "--shard-size", type=int, default=1024,
        help="devices per shard on the sharded plane",
    )
    run.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker threads for parallel-safe shard events "
        "(0/1 = the serial oracle; any count is byte-identical)",
    )
    run.add_argument(
        "--tree-fanout", type=int, default=16,
        help="children per internal aggregation-tree node",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print runtime data-plane counters (uploads/sec, wall times)",
    )
    run.add_argument(
        "--journal", metavar="PATH", default=None,
        help="record a durable execution journal at PATH (digest-chained "
        "write-ahead log; 'repro resume PATH' replays it after a crash)",
    )
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser(
        "resume",
        help="resume a crashed run from its execution journal",
    )
    resume.add_argument(
        "journal", help="journal file written by 'repro run --journal'"
    )
    resume.set_defaults(func=cmd_resume)

    queries = sub.add_parser("queries", help="list the built-in queries")
    queries.set_defaults(func=cmd_queries)

    verify = sub.add_parser(
        "verify-plan", help="plan a query and statically verify the result"
    )
    verify.add_argument("query_file", help="query file, built-in query name, or '-' for stdin")
    verify.add_argument("--participants", type=int, default=10**9)
    verify.add_argument("--categories", type=int, default=2**15)
    verify.add_argument("--epsilon", type=float, default=0.1)
    verify.add_argument("--sensitivity", type=float, default=1.0)
    verify.add_argument(
        "--goal", default="participant_expected_seconds", choices=CostVector.METRICS
    )
    verify.add_argument("--max-aggregator-core-hours", type=float, default=None)
    verify.add_argument("--max-participant-minutes", type=float, default=None)
    verify.add_argument("--max-participant-gb", type=float, default=None)
    verify.add_argument(
        "--dataflow", action="store_true",
        help="also run the privacy dataflow analyzer (taint, sensitivity "
        "intervals, budget intervals) and print the derived certificate",
    )
    verify.set_defaults(func=cmd_verify_plan)

    certificate = sub.add_parser(
        "certificate",
        help="plan a query and print its machine-checkable privacy "
        "certificate as JSON",
    )
    certificate.add_argument(
        "query_file", help="query file, built-in query name, or '-' for stdin"
    )
    certificate.add_argument("--participants", type=int, default=10**9)
    certificate.add_argument("--categories", type=int, default=2**15)
    certificate.add_argument("--epsilon", type=float, default=0.1)
    certificate.add_argument("--sensitivity", type=float, default=1.0)
    certificate.add_argument(
        "--goal", default="participant_expected_seconds", choices=CostVector.METRICS
    )
    certificate.add_argument("--max-aggregator-core-hours", type=float, default=None)
    certificate.add_argument("--max-participant-minutes", type=float, default=None)
    certificate.add_argument("--max-participant-gb", type=float, default=None)
    certificate.set_defaults(func=cmd_certificate)

    sweep = sub.add_parser(
        "verify-sweep",
        help="dataflow-analyze every catalog query plus the chaos query",
    )
    sweep.set_defaults(func=cmd_verify_sweep)

    lint = sub.add_parser(
        "lint", help="run the privacy-invariant source lint"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.set_defaults(func=cmd_lint)

    chaos = sub.add_parser(
        "chaos", help="run fault-injection scenarios against the runtime"
    )
    chaos.add_argument(
        "--list", action="store_true", help="enumerate the named scenarios"
    )
    chaos.add_argument(
        "--scenario", default="all", help="scenario name, or 'all' (default)"
    )
    chaos.add_argument("--devices", type=int, default=32)
    chaos.add_argument("--categories", type=int, default=8)
    chaos.add_argument("--epsilon", type=float, default=4.0)
    chaos.add_argument("--committee-size", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--data-plane",
        choices=("vectorized", "legacy", "sharded"),
        default="sharded",
        help="data plane under fault injection (default: sharded, so "
        "crash sweeps exercise the shard-scoped checkpoints)",
    )
    chaos.add_argument(
        "--shard-size", type=int, default=8,
        help="devices per shard (small default so the smoke deployment "
        "spans several shards and tree levels)",
    )
    chaos.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker threads for parallel-safe shard events",
    )
    chaos.add_argument(
        "--tree-fanout", type=int, default=2,
        help="children per internal aggregation-tree node",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit the verdicts and canonical fault logs as JSON",
    )
    chaos.add_argument(
        "--crash-sweep", action="store_true",
        help="kill the coordinator at every checkpoint in turn and verify "
        "each resumed run is digest-identical to the uninterrupted one",
    )
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant query service over a workload file",
    )
    serve.add_argument(
        "workload",
        help="workload JSON (tenants + queries; see docs/ARCHITECTURE.md "
        "§16) or '-' for stdin",
    )
    serve.add_argument(
        "--devices", type=int, default=None,
        help="override the workload's simulated device count",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="override the workload's deployment seed (replay is "
        "deterministic per seed)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="front-end submission threads (admission is thread-safe; "
        "1 keeps the admission order deterministic too)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit the dispatch ledger, counters, and per-tenant "
        "accounting as JSON",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one query to a fresh single-tenant service",
    )
    submit.add_argument(
        "query_file", help="query file, built-in query name, or '-' for stdin"
    )
    submit.add_argument("--tenant", default="analyst")
    submit.add_argument("--devices", type=int, default=24)
    submit.add_argument("--categories", type=int, default=8)
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument(
        "--epsilon", type=float, default=None,
        help="requested ε for this query (default: the session's "
        "per-query ε)",
    )
    submit.add_argument("--epsilon-budget", type=float, default=10.0)
    submit.add_argument(
        "--tenant-budget", type=float, default=None,
        help="tenant envelope ε (default: the global budget)",
    )
    submit.add_argument(
        "--utility", type=float, default=None,
        help="analyst utility hint in [0, 1]",
    )
    submit.add_argument(
        "--deadline", type=int, default=None,
        help="logical-clock deadline tick",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="also print the budget report as JSON",
    )
    submit.set_defaults(func=cmd_submit)

    tenants = sub.add_parser(
        "tenants",
        help="replay a workload and print per-tenant budget accounting",
    )
    tenants.add_argument("workload", help="workload JSON or '-' for stdin")
    tenants.add_argument("--devices", type=int, default=None)
    tenants.add_argument("--seed", type=int, default=None)
    tenants.add_argument("--workers", type=int, default=1)
    tenants.add_argument("--json", action="store_true")
    tenants.set_defaults(func=cmd_tenants)

    backends = sub.add_parser(
        "backends",
        help="list crypto kernel backends, availability, and selection",
    )
    backends.add_argument(
        "--json", action="store_true",
        help="emit the availability/selection table as JSON",
    )
    backends.set_defaults(func=cmd_backends)

    evaluate = sub.add_parser("eval", help="regenerate an evaluation artifact")
    evaluate.add_argument(
        "artifact", nargs="?", default="all",
        help="table1|table2|fig6..fig11|hetero|chaos|report|all",
    )
    evaluate.add_argument(
        "--export", metavar="DIR", default=None,
        help="write every artifact as CSV into DIR instead of printing",
    )
    evaluate.set_defaults(func=cmd_eval)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
