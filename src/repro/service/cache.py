"""Keyed plan cache: repeated query shapes skip the planner search.

Production traffic repeats itself — the same dashboard query arrives
from the same tenant every few minutes — and the planner's
branch-and-bound search is the most expensive CPU stage of a submission.
The cache keys each planned query by
:func:`repro.planner.serialize.query_fingerprint`: a SHA-256 over the
**normalized** query IR (simplified AST, line numbers stripped) plus
every environment field that can steer planning (device count, ε/δ,
sensitivity, encoding, element range, budget class, scheme
availability). Collisions are exact-shape by construction: anything that
could change the chosen plan changes the key.

Safety gate — a stale plan can never bypass the verifier
--------------------------------------------------------

A cache is a second way for a plan to reach the executor, so it gets the
same fail-closed treatment as plan transport (PR 6): every entry records
the :class:`PrivacyCertificate` digest observed at insertion, and every
**hit re-derives the certificate** from the cached planning result and
compares digests. Any mismatch — a tampered cached plan, a certificate
that no longer describes its plan, an analyzer upgrade that changed the
proof semantics — **evicts the entry and reports a miss**, forcing a
fresh plan; the stale plan is never returned, let alone executed. (The
executor's own pre-execution gate still runs afterwards; the cache check
just guarantees the planner search is only skipped for plans whose proof
still re-derives bit-identically.) Re-derivation is the dataflow
analysis, ~0.1 ms/plan — two orders of magnitude cheaper than the search
it skips.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.types import QueryEnvironment
from ..planner.search import PlanningResult
from ..planner.serialize import query_fingerprint


@dataclass
class CacheStatistics:
    """Counters for the keyed plan cache (part of ServiceStatistics)."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    stale_evictions: int = 0
    capacity_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CacheEntry:
    planning: PlanningResult
    #: PrivacyCertificate digest recorded when the entry was stored;
    #: every hit must re-derive a certificate with this exact digest.
    certificate_digest: str
    hits: int = field(default=0)


class PlanCache:
    """LRU cache of planning results, keyed by query fingerprint."""

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprint(self, source: str, env: QueryEnvironment) -> str:
        return query_fingerprint(source, env)

    # -------------------------------------------------------------- lookup

    def lookup(self, key: str) -> Optional[PlanningResult]:
        """Return the cached planning result for ``key``, re-validated.

        A hit re-derives the privacy certificate from the cached planning
        result and compares its digest against the one recorded at
        insertion; on mismatch the entry is evicted and the lookup is a
        miss (``stale_evictions`` counts it). The caller re-plans.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            if not self._validate(entry):
                del self._entries[key]
                self.statistics.stale_evictions += 1
                self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.statistics.hits += 1
            return entry.planning

    def _validate(self, entry: CacheEntry) -> bool:
        # Same re-derivation the executor gate performs: analyze the plan
        # fresh and require the proof to come back bit-identical. Import
        # is local to keep service importable without the verify stack
        # at module-import time (mirrors planner.search).
        from ..verify.dataflow import analyze_planning_result

        report, derived = analyze_planning_result(entry.planning)
        if not report.ok or derived is None:
            return False
        if derived.digest() != entry.certificate_digest:
            return False
        attached = getattr(entry.planning, "privacy_certificate", None)
        # The planning result's own attached certificate must agree too —
        # a mutated attachment would otherwise ride through the cache and
        # only fail at the executor gate.
        return attached is not None and attached.digest() == entry.certificate_digest

    # -------------------------------------------------------------- insert

    def store(self, key: str, planning: PlanningResult) -> bool:
        """Cache ``planning`` under ``key``; returns False if uncacheable.

        Only results carrying a derived privacy certificate are cached —
        without one there is nothing to re-validate hits against, so the
        plan must take the full planner + verifier path every time.
        """
        certificate = getattr(planning, "privacy_certificate", None)
        if certificate is None:
            return False
        with self._lock:
            self._entries[key] = CacheEntry(planning, certificate.digest())
            self._entries.move_to_end(key)
            self.statistics.inserts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.capacity_evictions += 1
            return True

    def evict(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
