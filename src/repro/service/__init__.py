"""Multi-tenant query service: admission, scheduling, plan caching.

The serving layer over one deployment — many analysts, one device
population, one global ε. See ``service.py`` for the submission
lifecycle (admit → schedule → cache → execute) and ARCHITECTURE.md §16
for the design, including the scheduler's starvation-freedom argument.
"""

from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    AdmissionScore,
    Submission,
)
from .cache import CacheStatistics, PlanCache
from .scheduler import BudgetScheduler, SchedulerPolicy
from .service import (
    QueryService,
    ServiceConfig,
    ServiceRecord,
    ServiceStatistics,
    SubmissionTicket,
)
from .tenants import TenantAccount, TenantPolicy, TenantRegistry, UnknownTenant

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "AdmissionScore",
    "BudgetScheduler",
    "CacheStatistics",
    "PlanCache",
    "QueryService",
    "SchedulerPolicy",
    "ServiceConfig",
    "ServiceRecord",
    "ServiceStatistics",
    "Submission",
    "SubmissionTicket",
    "TenantAccount",
    "TenantPolicy",
    "TenantRegistry",
    "UnknownTenant",
]
