"""Budget scheduler: cost–utility ordering with deadline aging.

The scheduler owns the admitted queue and decides which submission runs
next. Ordering is Shrinkwrap-style — cheap, high-utility queries first,
so one global ε serves as many analysts as possible — but pure greed
starves: an expensive low-utility query could wait forever behind a
stream of cheap arrivals. Two mechanisms bound the wait:

**Aging.** The dynamic priority adds an aging term that grows linearly
with queue ticks waited, up to 1.0 at ``aging_horizon``; a deadline adds
an urgency term that ramps as the deadline approaches. Static priority
lives in [0, 1], so once a submission has waited long enough its dynamic
terms dominate any newcomer's static advantage.

**The starvation fence.** Any submission that has waited at least
``aging_horizon`` ticks is promoted into a FIFO express tier that
*always* outranks the scored tier. Hence starvation-freedom is
unconditional, not just likely: every dispatch advances the clock, so a
waiting submission reaches the fence after at most ``aging_horizon``
ticks and then at most (queue length at promotion) older promotions run
before it — a finite bound independent of future arrivals.

Determinism: priorities read only submission fields and the service's
logical clock (no wall time, no RNG), and every tie breaks on the
submission sequence number, so a seeded replay dispatches in an
identical order every run.

Deadlines: a submission whose deadline tick has passed is never
dispatched — ``pick`` expires it (the service releases its budget hold
and fails its ticket with a typed error), so a dead query cannot charge
the accountant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .admission import Submission


@dataclass(frozen=True)
class SchedulerPolicy:
    """Weights for the dynamic (queue-time) priority terms."""

    #: Ticks until the aging term saturates and the starvation fence
    #: promotes the submission to the express tier.
    aging_horizon: int = 64
    weight_aging: float = 0.6
    weight_urgency: float = 0.8

    def __post_init__(self):
        if self.aging_horizon < 1:
            raise ValueError("aging_horizon must be >= 1")


class BudgetScheduler:
    """Priority queue over admitted submissions (logical-clock driven)."""

    def __init__(self, policy: Optional[SchedulerPolicy] = None):
        self.policy = policy or SchedulerPolicy()
        self._lock = threading.RLock()
        self._queue: Dict[int, Submission] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def enqueue(self, submission: Submission) -> None:
        with self._lock:
            self._queue[submission.seq] = submission

    def pending(self) -> List[Submission]:
        """Queue snapshot in submission order (for inspection/CLI)."""
        with self._lock:
            return [self._queue[seq] for seq in sorted(self._queue)]

    # ------------------------------------------------------------- priority

    def dynamic_priority(self, submission: Submission, now_tick: int) -> float:
        """Static admission priority plus aging and deadline urgency."""
        policy = self.policy
        waited = max(0, now_tick - submission.submit_tick)
        aging = min(1.0, waited / policy.aging_horizon)
        urgency = 0.0
        if submission.deadline is not None:
            window = max(1, submission.deadline - submission.submit_tick)
            urgency = min(1.0, waited / window)
        static = submission.score.priority if submission.score else 0.0
        return (
            static
            + policy.weight_aging * aging
            + policy.weight_urgency * urgency
        )

    # ----------------------------------------------------------- dispatch

    def pick(
        self, now_tick: int
    ) -> Tuple[Optional[Submission], List[Submission]]:
        """Remove and return (next submission, expired submissions).

        The next submission is the express-tier head (FIFO among
        fence-promoted entries) or, failing that, the best dynamic
        priority with ties broken by lowest sequence number. Expired
        submissions (deadline tick < now) are removed, never dispatched;
        the caller settles their budget holds.
        """
        with self._lock:
            expired = [
                s
                for s in self._queue.values()
                if s.deadline is not None and s.deadline < now_tick
            ]
            for submission in expired:
                del self._queue[submission.seq]
            if not self._queue:
                return None, expired
            fence = self.policy.aging_horizon
            express = sorted(
                seq
                for seq, s in self._queue.items()
                if now_tick - s.submit_tick >= fence
            )
            if express:
                return self._queue.pop(express[0]), expired
            best_seq = min(
                self._queue,
                key=lambda seq: (
                    -self.dynamic_priority(self._queue[seq], now_tick),
                    seq,
                ),
            )
            return self._queue.pop(best_seq), expired
