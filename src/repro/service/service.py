"""The multi-tenant query service: admit → schedule → cache → execute.

:class:`QueryService` is the long-running serving layer over one
deployment (:class:`~repro.session.AnalyticsSession`): many analysts
(tenants), one device population, one global ε. A submission's life:

1. **Admit** (`submit`, any thread): the admission controller checks the
   tenant envelope and the global pool — *before any planner work* — and
   reserves the requested budget, or raises a typed
   ``BudgetExhausted`` / ``AdmissionRejected``. Admitted submissions get
   a decomposable cost–utility score and enter the queue.
2. **Schedule** (`process_next`, dispatcher): the budget scheduler picks
   cheap/high-utility work first with deadline aging and a starvation
   fence (see ``scheduler.py``); expired deadlines settle without
   charging.
3. **Cache** — the submission's normalized-IR + environment fingerprint
   probes the keyed plan cache; a validated hit skips the planner search
   entirely, a miss plans and populates. Every hit re-derives the
   privacy certificate and digest-compares before the plan may run.
4. **Execute** — the plan runs through the session's executor, which
   debits the global accountant exactly once under the submission's
   unique charge label (the journal-backed ``charge_once`` path);
   settlement converts the reservation into tenant spend.

Execution is serialized by the dispatcher — the protocol itself is
sequential per deployment (sortition chains query to query, §5.1) —
while admission, scoring, and queueing are fully thread-safe, so a
thread-pool front end can accept traffic concurrently
(:meth:`QueryService.submit_many`). Scheduling reads only the service's
logical clock, so a seeded replay is deterministic.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..privacy.accountant import PrivacyCost
from ..runtime.executor import BudgetExhausted, QueryRejected
from ..session import AnalyticsSession, BudgetReport, budget_report_for
from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    AdmissionScore,
    Submission,
)
from .cache import PlanCache
from .scheduler import BudgetScheduler, SchedulerPolicy
from .tenants import TenantPolicy, TenantRegistry


@dataclass(frozen=True)
class ServiceConfig:
    """Policy knobs for one service instance."""

    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    scheduling: SchedulerPolicy = field(default_factory=SchedulerPolicy)
    cache_entries: int = 128
    default_utility: float = 0.5


@dataclass
class ServiceStatistics:
    """Counter block for one service instance (``repro serve`` prints it).

    Cache counters are mirrored from :class:`PlanCache.statistics` when
    the block is rendered; latency percentiles are the benchmark's job —
    statistics here never influence scheduling or accounting.
    """

    submitted: int = 0
    admitted: int = 0
    rejected_budget: int = 0
    rejected_policy: int = 0
    expired_deadlines: int = 0
    executed: int = 0
    failed: int = 0
    repriced_rejections: int = 0
    planner_invocations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale_evictions: int = 0
    epsilon_charged: float = 0.0
    dispatch_ticks: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


@dataclass
class ServiceRecord:
    """One settled submission, in dispatch order (the service's ledger)."""

    seq: int
    tenant: str
    name: str
    outcome: str  # "executed" | "rejected" | "expired" | "failed"
    cache_hit: bool = False
    epsilon_charged: float = 0.0
    value: Optional[object] = None
    error: Optional[str] = None
    submit_tick: int = 0
    dispatch_tick: int = 0
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


class SubmissionTicket:
    """Future-like handle returned by :meth:`QueryService.submit`."""

    def __init__(self, submission: Submission, score: AdmissionScore):
        self.submission = submission
        self.score = score
        self._done = threading.Event()
        self._record: Optional[ServiceRecord] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def settle(self, record: ServiceRecord) -> None:
        """Resolve the ticket; called once by the service dispatcher."""
        self._record = record
        self._done.set()

    def record(self, timeout: Optional[float] = None) -> ServiceRecord:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"submission {self.submission.name!r} is still queued"
            )
        return self._record

    def result(self, timeout: Optional[float] = None) -> object:
        """The released query value; raises the typed error on failure."""
        record = self.record(timeout)
        if record.outcome == "executed":
            return record.value
        if record.outcome == "expired":
            raise AdmissionRejected(record.error or "deadline expired")
        raise QueryRejected(record.error or f"submission {record.name!r} failed")


class QueryService:
    """Long-running multi-tenant front end over one analytics session."""

    def __init__(
        self,
        session: AnalyticsSession,
        tenants: Sequence[TenantPolicy],
        config: Optional[ServiceConfig] = None,
    ):
        self.session = session
        self.config = config or ServiceConfig()
        self.tenants = TenantRegistry(list(tenants))
        self.admission = AdmissionController(
            session.accountant, self.tenants, self.config.admission
        )
        self.scheduler = BudgetScheduler(self.config.scheduling)
        self.cache = PlanCache(self.config.cache_entries)
        self.statistics = ServiceStatistics()
        self.records: List[ServiceRecord] = []
        self._clock_lock = threading.RLock()
        #: The dispatcher serializes plan+execute; the protocol is
        #: sequential per deployment (one sortition chain).
        self._dispatch_lock = threading.RLock()
        self._tick = 0
        self._seq = 0
        self._tickets: Dict[int, SubmissionTicket] = {}

    # --------------------------------------------------------------- clock

    @property
    def tick(self) -> int:
        with self._clock_lock:
            return self._tick

    def _advance(self) -> int:
        with self._clock_lock:
            self._tick += 1
            return self._tick

    # -------------------------------------------------------------- intake

    def submit(
        self,
        tenant: str,
        source: str,
        categories: int,
        epsilon: Optional[float] = None,
        utility: Optional[float] = None,
        deadline: Optional[int] = None,
        sensitivity: Optional[float] = None,
        row_encoding: str = "one_hot",
        value_range: Optional[Tuple[float, float]] = None,
    ) -> SubmissionTicket:
        """Admit one query; thread-safe; raises typed errors on refusal.

        ``deadline`` is a logical-clock tick (see ``scheduler.py``);
        ``utility`` defaults to the service's configured hint. The
        returned ticket settles when the dispatcher executes, expires, or
        rejects the submission.
        """
        with self._clock_lock:
            self._seq += 1
            seq = self._seq
            submit_tick = self._advance()
        requested = epsilon if epsilon is not None else self.session.epsilon_per_query
        submission = Submission(
            seq=seq,
            tenant=tenant,
            source=source,
            categories=categories,
            epsilon=requested,
            name=f"{tenant}/{seq:04d}",
            sensitivity=sensitivity,
            row_encoding=row_encoding,
            value_range=value_range,
            utility=utility if utility is not None else self.config.default_utility,
            deadline=deadline,
            submit_tick=submit_tick,
            cost=PrivacyCost(requested, 0.0),
        )
        self.statistics.submitted += 1
        try:
            score = self.admission.admit(submission)
        except BudgetExhausted:
            self.statistics.rejected_budget += 1
            raise
        except AdmissionRejected:
            self.statistics.rejected_policy += 1
            raise
        ticket = SubmissionTicket(submission, score)
        with self._clock_lock:
            self._tickets[seq] = ticket
        self.scheduler.enqueue(submission)
        self.statistics.admitted += 1
        return ticket

    def submit_many(
        self, requests: Sequence[Dict[str, object]], workers: int = 4
    ) -> List[object]:
        """Thread-pool intake: admit ``requests`` concurrently.

        Each request is keyword arguments for :meth:`submit`. Returns one
        entry per request, *in request order*: the ticket, or the typed
        rejection the submission raised. Used by the traffic-replay
        benchmark's concurrent phase and the CLI front end.
        """

        def one(kwargs: Dict[str, object]) -> object:
            try:
                return self.submit(**kwargs)
            except QueryRejected as exc:
                return exc

        if workers <= 1:
            return [one(dict(kwargs)) for kwargs in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(one, [dict(kwargs) for kwargs in requests]))

    # ------------------------------------------------------------ dispatch

    def _expire(self, submission: Submission, now_tick: int) -> ServiceRecord:
        self.admission.settle_rejected(submission)
        self.statistics.expired_deadlines += 1
        record = ServiceRecord(
            seq=submission.seq,
            tenant=submission.tenant,
            name=submission.name,
            outcome="expired",
            error=(
                f"deadline tick {submission.deadline} passed before "
                f"dispatch (now {now_tick})"
            ),
            submit_tick=submission.submit_tick,
            dispatch_tick=now_tick,
        )
        self._settle(record)
        return record

    def _settle(self, record: ServiceRecord) -> None:
        self.records.append(record)
        with self._clock_lock:
            ticket = self._tickets.pop(record.seq, None)
        if ticket is not None:
            ticket.settle(record)

    def _plan(self, submission: Submission):
        """Cache-or-plan; returns (planning, cache_hit, seconds)."""
        env = self.session.environment(
            submission.categories,
            submission.epsilon,
            submission.sensitivity,
            submission.row_encoding,
            submission.value_range,
        )
        started = time.perf_counter()
        key = self.cache.fingerprint(submission.source, env)
        planning = self.cache.lookup(key)
        hit = planning is not None
        if planning is None:
            self.statistics.planner_invocations += 1
            planning = self.session.planner(env).plan_source(
                submission.source, name=f"shape:{key[:12]}"
            )
            self.cache.store(key, planning)
        return planning, hit, time.perf_counter() - started

    def process_next(self) -> Optional[ServiceRecord]:
        """Dispatch one submission (or expire dead ones); None when idle."""
        with self._dispatch_lock:
            now = self._advance()
            submission, expired = self.scheduler.pick(now)
            for dead in expired:
                self._expire(dead, now)
            if submission is None:
                return None
            self.statistics.dispatch_ticks += 1
            record = ServiceRecord(
                seq=submission.seq,
                tenant=submission.tenant,
                name=submission.name,
                outcome="failed",
                submit_tick=submission.submit_tick,
                dispatch_tick=now,
            )
            try:
                planning, record.cache_hit, record.plan_seconds = self._plan(
                    submission
                )
                self.statistics.cache_hits = self.cache.statistics.hits
                self.statistics.cache_misses = self.cache.statistics.misses
                self.statistics.cache_stale_evictions = (
                    self.cache.statistics.stale_evictions
                )
            except QueryRejected as exc:  # planning-stage policy refusal
                self.admission.settle_rejected(submission)
                record.outcome, record.error = "rejected", str(exc)
                self._settle(record)
                return record
            except Exception as exc:  # planner failure: release the hold
                self.admission.settle_rejected(submission)
                self.statistics.failed += 1
                record.error = f"{type(exc).__name__}: {exc}"
                self._settle(record)
                return record
            try:
                # Re-base the reservation on the certified cost before the
                # executor charges it (admission reserved the request).
                self.admission.reprice(
                    submission,
                    PrivacyCost(
                        planning.certificate.epsilon, planning.certificate.delta
                    ),
                )
            except BudgetExhausted as exc:
                # reprice released the hold and counted the rejection.
                self.statistics.repriced_rejections += 1
                record.outcome, record.error = "rejected", str(exc)
                self._settle(record)
                return record
            started = time.perf_counter()
            try:
                result = self.session.execute_planning(
                    planning, name=submission.name, charge_label=submission.name
                )
            except QueryRejected as exc:
                self.admission.settle_rejected(submission)
                record.outcome, record.error = "rejected", str(exc)
                self._settle(record)
                return record
            except Exception as exc:
                # A failure after keygen may have legitimately charged the
                # budget (the certificate was signed); mirror whatever the
                # accountant actually recorded into the tenant account.
                if self.session.accountant.charged(submission.name):
                    self.admission.settle_executed(submission)
                    record.epsilon_charged = submission.cost.epsilon
                    self.statistics.epsilon_charged += submission.cost.epsilon
                else:
                    self.admission.settle_rejected(submission)
                self.statistics.failed += 1
                record.error = f"{type(exc).__name__}: {exc}"
                self._settle(record)
                return record
            record.execute_seconds = time.perf_counter() - started
            self.admission.settle_executed(submission)
            self.statistics.executed += 1
            self.statistics.epsilon_charged += submission.cost.epsilon
            record.outcome = "executed"
            record.epsilon_charged = submission.cost.epsilon
            record.value = result.value
            self._settle(record)
            return record

    def drain(self) -> List[ServiceRecord]:
        """Dispatch until the queue is empty; returns this drain's records.

        Includes deadline expirations settled along the way — every
        queued submission ends up in exactly one record.
        """
        start = len(self.records)
        while len(self.scheduler) > 0:
            self.process_next()
        return self.records[start:]

    # ------------------------------------------------------------ reporting

    def tenant_report(self) -> List[Dict[str, object]]:
        return self.tenants.report()

    def budget_report(self) -> BudgetReport:
        """The global accountant's per-label ledger (session view)."""
        return budget_report_for(self.session.accountant)
