"""Admission control: budget-checked intake for the query service.

Every submission passes through :class:`AdmissionController.admit`
*before any planner work* (the planner search is the expensive stage the
keyed plan cache exists to skip — admission must not depend on it). The
controller consults the global :class:`PrivacyAccountant` and the
tenant's envelope, holding a **reservation** for every admitted
submission so concurrent intake stays sound: budget is treated as spoken
for from admission until settlement (execution, rejection, or deadline
expiry), and two submissions that each fit alone but not together can
never both pass.

Rejections are typed:

:class:`~repro.runtime.executor.BudgetExhausted`
    the submission's (ε, δ) does not fit the tenant envelope or the
    global pool, counting live reservations. ε only ever accrues, so a
    submission refused for global-budget reasons can succeed later only
    if an in-flight reservation is released (deadline expiry, failure) —
    the service queues nothing it cannot currently pay for.
:class:`AdmissionRejected`
    a policy refusal: unknown tenant, an already-expired deadline, a
    malformed utility hint, or a per-query ε above the service cap.

Admitted submissions carry an :class:`AdmissionScore` — the
Shrinkwrap-style cost–utility figure the budget scheduler orders the
queue by, decomposed LPS-style (SNIPPETS.md §2) into named, auditable
sub-scores, each in [0, 1]:

``utility``
    the analyst's hint, scaled by the tenant's scheduling weight;
``frugality``
    1 − (ε cost / per-query cap): cheap queries score high — spending
    the shared budget slowly serves more analysts (Shrinkwrap's
    budget–utility tradeoff);
``headroom``
    the fraction of the tenant's envelope left after this query: tenants
    near exhaustion stop outbidding fresh tenants.

The static priority is a policy-weighted sum; the scheduler adds the
*dynamic* deadline-aging terms at pick time (see ``scheduler.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..privacy.accountant import PrivacyAccountant, PrivacyCost
from ..runtime.executor import BudgetExhausted, QueryRejected
from .tenants import TenantRegistry, UnknownTenant


class AdmissionRejected(QueryRejected):
    """A submission was refused for policy (non-budget) reasons."""


@dataclass(frozen=True)
class AdmissionScore:
    """Decomposable cost–utility score (auditable sub-scores in [0, 1])."""

    utility: float
    frugality: float
    headroom: float
    priority: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "utility": self.utility,
            "frugality": self.frugality,
            "headroom": self.headroom,
            "priority": self.priority,
        }


@dataclass
class Submission:
    """One tenant query moving through admit → schedule → plan → execute."""

    seq: int
    tenant: str
    source: str
    categories: int
    epsilon: float
    name: str  # unique charge label, e.g. "alice/0003"
    sensitivity: Optional[float] = None
    row_encoding: str = "one_hot"
    value_range: Optional[Tuple[float, float]] = None
    utility: float = 0.5
    #: Logical-clock deadline (ticks); None = no deadline. The service's
    #: clock advances on every submit and dispatch, so deadlines are
    #: deterministic under replay — no wall-clock reads in scheduling.
    deadline: Optional[int] = None
    submit_tick: int = 0
    cost: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    score: Optional[AdmissionScore] = None


@dataclass(frozen=True)
class AdmissionPolicy:
    """Weights and caps for the admission scorer (policy-controlled)."""

    weight_utility: float = 0.45
    weight_frugality: float = 0.35
    weight_headroom: float = 0.20
    #: Largest ε one submission may request (policy rejection above).
    per_query_epsilon_cap: float = 16.0


class AdmissionController:
    """Reserves budget at intake; settles it at execution or rejection."""

    def __init__(
        self,
        accountant: PrivacyAccountant,
        tenants: TenantRegistry,
        policy: Optional[AdmissionPolicy] = None,
    ):
        self.accountant = accountant
        self.tenants = tenants
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.RLock()
        #: Global budget held for admitted-but-unsettled submissions.
        self._reserved = PrivacyCost(0.0, 0.0)

    # ------------------------------------------------------------ reporting

    @property
    def reserved(self) -> PrivacyCost:
        with self._lock:
            return self._reserved

    def global_fits(self, cost: PrivacyCost) -> bool:
        """Does ``cost`` fit the global pool net of live reservations?"""
        with self._lock:
            return self.accountant.can_afford(self._reserved + cost)

    # ------------------------------------------------------------ admission

    def admit(self, submission: Submission) -> AdmissionScore:
        """Admit (reserve + score) or raise a typed rejection.

        Runs entirely under the admission lock so the tenant-envelope
        check, the global-pool check, and both reservations are one
        atomic step even when many front-end threads submit at once.
        """
        policy = self.policy
        if not 0.0 <= submission.utility <= 1.0:
            raise AdmissionRejected(
                f"submission {submission.name!r}: utility hint "
                f"{submission.utility!r} is outside [0, 1]"
            )
        if submission.deadline is not None and (
            submission.deadline <= submission.submit_tick
        ):
            raise AdmissionRejected(
                f"submission {submission.name!r}: deadline tick "
                f"{submission.deadline} is not after submit tick "
                f"{submission.submit_tick}"
            )
        cost = submission.cost
        if cost.epsilon > policy.per_query_epsilon_cap:
            raise AdmissionRejected(
                f"submission {submission.name!r}: ε={cost.epsilon:g} exceeds "
                f"the per-query cap ε={policy.per_query_epsilon_cap:g}"
            )
        with self._lock:
            try:
                account = self.tenants.account(submission.tenant)
            except UnknownTenant as exc:
                raise AdmissionRejected(str(exc.args[0])) from None
            account.submitted += 1
            if not account.fits(cost):
                account.rejected += 1
                headroom = account.headroom()
                raise BudgetExhausted(
                    f"tenant {submission.tenant!r} cannot afford "
                    f"ε={cost.epsilon:g} for {submission.name!r}: envelope "
                    f"headroom is ε={headroom.epsilon:g} "
                    f"(reserved ε={account.reserved.epsilon:g})"
                )
            if not self.accountant.can_afford(self._reserved + cost):
                account.rejected += 1
                remaining = self.accountant.remaining()
                raise BudgetExhausted(
                    f"global budget cannot afford ε={cost.epsilon:g} for "
                    f"{submission.name!r}: ε={remaining.epsilon:g} remains "
                    f"with ε={self._reserved.epsilon:g} already reserved"
                )
            # Both checks passed — hold the budget until settlement.
            account.reserved = account.reserved + cost
            self._reserved = self._reserved + cost
            score = self._score(submission, account)
            submission.score = score
            return score

    def _score(self, submission: Submission, account) -> AdmissionScore:
        policy = self.policy
        utility = min(1.0, submission.utility * account.policy.weight)
        frugality = 1.0 - min(
            1.0, submission.cost.epsilon / policy.per_query_epsilon_cap
        )
        envelope = account.policy.epsilon_budget
        headroom = (
            account.headroom().epsilon / envelope if envelope > 0 else 0.0
        )
        priority = (
            policy.weight_utility * utility
            + policy.weight_frugality * frugality
            + policy.weight_headroom * headroom
        )
        return AdmissionScore(utility, frugality, headroom, priority)

    # ----------------------------------------------------------- settlement

    def _release(self, submission: Submission) -> None:
        account = self.tenants.account(submission.tenant)
        cost = submission.cost
        account.reserved = PrivacyCost(
            max(0.0, account.reserved.epsilon - cost.epsilon),
            max(0.0, account.reserved.delta - cost.delta),
        )
        self._reserved = PrivacyCost(
            max(0.0, self._reserved.epsilon - cost.epsilon),
            max(0.0, self._reserved.delta - cost.delta),
        )

    def reprice(self, submission: Submission, actual: PrivacyCost) -> None:
        """Adjust a reservation to the planner's certified cost.

        Admission reserved the *requested* ε (it runs before any planner
        work); once the plan's certificate prices the query exactly, the
        hold is re-based. A certified cost above the reservation must
        re-pass both budget checks or the submission dies with
        ``BudgetExhausted`` (its hold fully released).
        """
        with self._lock:
            if actual.epsilon == submission.cost.epsilon and (
                actual.delta == submission.cost.delta
            ):
                return
            account = self.tenants.account(submission.tenant)
            self._release(submission)
            old, submission.cost = submission.cost, actual
            if not (
                account.fits(actual)
                and self.accountant.can_afford(self._reserved + actual)
            ):
                account.rejected += 1
                raise BudgetExhausted(
                    f"submission {submission.name!r}: certified cost "
                    f"ε={actual.epsilon:g} exceeds the admitted reservation "
                    f"ε={old.epsilon:g} and no longer fits the budget"
                )
            account.reserved = account.reserved + actual
            self._reserved = self._reserved + actual

    def settle_executed(self, submission: Submission) -> None:
        """Release the hold and book the spend against the tenant.

        The *global* debit already happened inside the executor via the
        journal-backed ``charge_once`` path (keyed by the submission's
        unique charge label); this settles the tenant-side mirror.
        """
        with self._lock:
            account = self.tenants.account(submission.tenant)
            self._release(submission)
            account.spent = account.spent + submission.cost
            account.executed += 1

    def settle_rejected(self, submission: Submission) -> None:
        """Release the hold for a submission that will never execute."""
        with self._lock:
            account = self.tenants.account(submission.tenant)
            self._release(submission)
            account.rejected += 1
