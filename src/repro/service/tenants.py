"""Per-tenant privacy-budget accounts for the multi-tenant query service.

One device population has one global (ε, δ) budget — the paper's
:class:`~repro.privacy.accountant.PrivacyAccountant` — but production
traffic comes from many analysts. The registry sub-allocates the global
budget into per-tenant envelopes: admission checks a submission against
*both* its tenant's envelope and the global balance, and a tenant can
never spend past its allocation even when the global pool still has room
(budget isolation — one greedy analyst cannot drain their neighbours).

Accounts track three numbers per tenant, all under the registry lock:

``spent``
    ε/δ actually debited from the global accountant by this tenant's
    executed queries (settled exactly-once via ``charge_once``).
``reserved``
    ε/δ held for admitted-but-not-yet-executed submissions. Admission
    reserves; settlement (execute, reject, or deadline expiry) releases.
    Reservations are what make concurrent admission sound: two
    submissions that each fit alone but not together cannot both pass.
``submitted / executed / rejected``
    Traffic counters surfaced by ``repro tenants``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..privacy.accountant import PrivacyCost


class UnknownTenant(KeyError):
    """A submission named a tenant the registry has no account for."""


@dataclass(frozen=True)
class TenantPolicy:
    """A tenant's standing allocation out of the global budget."""

    name: str
    epsilon_budget: float
    delta_budget: float = 0.0
    #: Relative scheduling weight (multiplies the utility sub-score).
    weight: float = 1.0

    def __post_init__(self):
        if self.epsilon_budget < 0 or self.delta_budget < 0:
            raise ValueError("tenant budgets cannot be negative")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


@dataclass
class TenantAccount:
    """Mutable budget/traffic state for one tenant (registry-locked)."""

    policy: TenantPolicy
    spent: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    reserved: PrivacyCost = field(default_factory=lambda: PrivacyCost(0.0, 0.0))
    submitted: int = 0
    executed: int = 0
    rejected: int = 0

    def committed(self) -> PrivacyCost:
        """Budget that is spoken for: settled spends plus live holds."""
        return self.spent + self.reserved

    def headroom(self) -> PrivacyCost:
        committed = self.committed()
        return PrivacyCost(
            max(0.0, self.policy.epsilon_budget - committed.epsilon),
            max(0.0, self.policy.delta_budget - committed.delta),
        )

    def fits(self, cost: PrivacyCost) -> bool:
        committed = self.committed() + cost
        return (
            committed.epsilon <= self.policy.epsilon_budget + 1e-12
            and committed.delta <= self.policy.delta_budget + 1e-15
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.policy.name,
            "epsilon_budget": self.policy.epsilon_budget,
            "delta_budget": self.policy.delta_budget,
            "weight": self.policy.weight,
            "spent_epsilon": self.spent.epsilon,
            "spent_delta": self.spent.delta,
            "reserved_epsilon": self.reserved.epsilon,
            "reserved_delta": self.reserved.delta,
            "remaining_epsilon": self.headroom().epsilon,
            "submitted": self.submitted,
            "executed": self.executed,
            "rejected": self.rejected,
        }


class TenantRegistry:
    """Thread-safe map of tenant name → account.

    The registry owns the reserve/settle bookkeeping; the admission
    controller calls it while also holding its own reservation ledger
    against the global accountant, so the pair of checks (tenant envelope,
    global pool) happens under one admission lock — see
    :mod:`repro.service.admission`.
    """

    def __init__(self, policies: Optional[List[TenantPolicy]] = None):
        self._lock = threading.RLock()
        self._accounts: Dict[str, TenantAccount] = {}
        for policy in policies or []:
            self.register(policy)

    def register(self, policy: TenantPolicy) -> TenantAccount:
        with self._lock:
            if policy.name in self._accounts:
                raise ValueError(f"tenant {policy.name!r} is already registered")
            account = TenantAccount(policy)
            self._accounts[policy.name] = account
            return account

    def account(self, name: str) -> TenantAccount:
        with self._lock:
            try:
                return self._accounts[name]
            except KeyError:
                raise UnknownTenant(
                    f"tenant {name!r} is not registered with this service"
                ) from None

    def names(self) -> List[str]:
        with self._lock:
            return list(self._accounts)

    def accounts(self) -> List[TenantAccount]:
        with self._lock:
            return list(self._accounts.values())

    def report(self) -> List[Dict[str, object]]:
        """Per-tenant accounting rows, in registration order."""
        with self._lock:
            return [account.as_dict() for account in self._accounts.values()]
