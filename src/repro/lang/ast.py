"""Abstract syntax tree for Arboretum's query language (§4.1, Fig 2).

Analysts write queries as if the whole database existed on one machine:
statements, loops, conditionals, arrays, and the standard arithmetic and
logical operators, plus built-in high-level operators (``sum``, ``max``,
``em``, ``laplace``, ``sampleUniform``, ...) that the planner later expands
into concrete implementations. The participants' input data is the
predefined two-dimensional array ``db``; outputs are produced by calling
``output``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Name of the predefined input array: db[i][j] is participant i's j-th input.
DB_NAME = "db"

#: Built-in functions the language exposes (§4.1). ``gumbel``/``random`` are
#: used inside operator *instantiations* (Fig 4) but are also accepted at the
#: surface for completeness.
BUILTIN_FUNCTIONS = frozenset(
    {
        "sum",
        "max",
        "argmax",
        "em",
        "laplace",
        "gumbel",
        "sampleUniform",
        "clip",
        "exp",
        "log",
        "abs",
        "len",
        "sqrt",
        "random",
        "output",
        "declassify",
    }
)

BINARY_OPERATORS = ("+", "-", "*", "/", "&&", "||", "<", "<=", ">", ">=", "==", "!=")
UNARY_OPERATORS = ("!", "-")


class Node:
    """Base class for AST nodes; carries the source line for diagnostics."""

    line: int = 0


# --------------------------------------------------------------- expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass
class BoolLit(Expr):
    value: bool
    line: int = 0


@dataclass
class Var(Expr):
    name: str
    line: int = 0


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``; db[i][j] nests two of these."""

    base: Expr
    index: Expr
    line: int = 0


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0

    def __post_init__(self):
        if self.op not in BINARY_OPERATORS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass
class UnOp(Expr):
    op: str
    operand: Expr
    line: int = 0

    def __post_init__(self):
        if self.op not in UNARY_OPERATORS:
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass
class Call(Expr):
    func: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------- statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class Assign(Stmt):
    var: str
    value: Expr
    line: int = 0


@dataclass
class IndexAssign(Stmt):
    """``var[index] = value``."""

    var: str
    index: Expr
    value: Expr
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """A bare expression statement, e.g. ``output(result)``."""

    expr: Expr
    line: int = 0


@dataclass
class For(Stmt):
    """``for var = start to end do body endfor`` (inclusive bounds)."""

    var: str
    start: Expr
    end: Expr
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Program(Node):
    statements: List[Stmt] = field(default_factory=list)


# ------------------------------------------------------------------ visitors


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, Index):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_statements(statements: List[Stmt]):
    """Yield every statement in a block, depth-first, including nested ones."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, For):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)


def expressions_of(stmt: Stmt):
    """Yield the top-level expressions a statement contains (not nested stmts)."""
    if isinstance(stmt, Assign):
        yield stmt.value
    elif isinstance(stmt, IndexAssign):
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, For):
        yield stmt.start
        yield stmt.end
    elif isinstance(stmt, If):
        yield stmt.cond


def calls_in(statements: List[Stmt]):
    """Yield every Call node anywhere in a block."""
    for stmt in walk_statements(statements):
        for expr in expressions_of(stmt):
            for sub in walk_expr(expr):
                if isinstance(sub, Call):
                    yield sub


# ------------------------------------------------------------ pretty printer


def format_expr(expr: Expr) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return repr(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Index):
        return f"{format_expr(expr.base)}[{format_expr(expr.index)}]"
    if isinstance(expr, BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, UnOp):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def format_statements(statements: List[Stmt], indent: int = 0) -> str:
    pad = "  " * indent
    lines: List[str] = []
    for stmt in statements:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.var} = {format_expr(stmt.value)};")
        elif isinstance(stmt, IndexAssign):
            lines.append(
                f"{pad}{stmt.var}[{format_expr(stmt.index)}] = {format_expr(stmt.value)};"
            )
        elif isinstance(stmt, ExprStmt):
            lines.append(f"{pad}{format_expr(stmt.expr)};")
        elif isinstance(stmt, For):
            lines.append(
                f"{pad}for {stmt.var} = {format_expr(stmt.start)} "
                f"to {format_expr(stmt.end)} do"
            )
            lines.append(format_statements(stmt.body, indent + 1))
            lines.append(f"{pad}endfor")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if {format_expr(stmt.cond)} then")
            lines.append(format_statements(stmt.then_body, indent + 1))
            if stmt.else_body:
                lines.append(f"{pad}else")
                lines.append(format_statements(stmt.else_body, indent + 1))
            lines.append(f"{pad}endif")
        else:
            raise TypeError(f"unknown statement node {type(stmt).__name__}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    return format_statements(program.statements)
