"""Arboretum's query language: AST, lexer, parser, simplifier, pretty
printer, and the cleartext reference interpreter (§4.1)."""

from .ast import Program, format_program
from .interp import ReferenceInterpreter, one_hot_database, run_reference
from .parser import ParseError, parse, parse_expression
from .simplify import simplify

__all__ = [
    "Program",
    "format_program",
    "parse",
    "parse_expression",
    "ParseError",
    "simplify",
    "ReferenceInterpreter",
    "run_reference",
    "one_hot_database",
]
