"""Cleartext reference interpreter for the query language.

Runs a query exactly as written, on a plain in-memory database — the
"single machine that has access to the entire data set" fiction of §4.1.
This is the semantic reference that the federated executor must match:
for any query, running it here (centralized, with the same DP mechanisms)
and running it through planning + distributed execution must produce
identically *distributed* outputs; tests compare them on queries whose
answer is deterministic given the data (large score gaps, high ε).

It is also what an analyst would use to debug a query before deploying it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

from .ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Program,
    Stmt,
    UnOp,
    Var,
    DB_NAME,
)
from .parser import parse

Number = Union[int, float, bool]


class ReferenceError_(Exception):
    """Raised for programs the reference interpreter cannot run."""


class ReferenceInterpreter:
    """Direct evaluator over a cleartext database.

    ``db`` is a list of rows (one per participant); ``epsilon`` and
    ``sensitivity`` bind the predefined ``epsilon``/``sens`` variables the
    mechanisms reference.
    """

    def __init__(
        self,
        db: Sequence[Sequence[Number]],
        epsilon: float = 1.0,
        sensitivity: float = 1.0,
        rng: Optional[random.Random] = None,
        constants: Optional[Dict[str, Number]] = None,
        sample_fraction_override: Optional[float] = None,
    ):
        self.rng = rng or random.Random()
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self.bindings: Dict[str, object] = {
            DB_NAME: [list(row) for row in db],
            "epsilon": epsilon,
            "sens": sensitivity,
            "N": len(db),
        }
        if constants:
            self.bindings.update(constants)
        self.outputs: List[object] = []
        self._sample_override = sample_fraction_override

    # ------------------------------------------------------------- execution

    def run(self, program: Program) -> List[object]:
        self._exec_block(program.statements)
        return self.outputs

    def run_source(self, source: str) -> List[object]:
        return self.run(parse(source))

    def _exec_block(self, statements: List[Stmt]) -> None:
        for stmt in statements:
            self._exec(stmt)

    def _exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.bindings[stmt.var] = self._eval(stmt.value)
        elif isinstance(stmt, IndexAssign):
            index = int(self._eval(stmt.index))
            target = self.bindings.setdefault(stmt.var, [])
            if not isinstance(target, list):
                raise ReferenceError_(f"{stmt.var!r} is not an array")
            while len(target) <= index:
                target.append(0)
            target[index] = self._eval(stmt.value)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, For):
            start = int(self._eval(stmt.start))
            end = int(self._eval(stmt.end))
            for i in range(start, end + 1):
                self.bindings[stmt.var] = i
                self._exec_block(stmt.body)
        elif isinstance(stmt, If):
            branch = stmt.then_body if self._eval(stmt.cond) else stmt.else_body
            self._exec_block(branch)
        else:
            raise ReferenceError_(f"unknown statement {type(stmt).__name__}")

    # ------------------------------------------------------------ evaluation

    def _eval(self, expr: Expr):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in self.bindings:
                raise ReferenceError_(f"undefined variable {expr.name!r}")
            return self.bindings[expr.name]
        if isinstance(expr, Index):
            base = self._eval(expr.base)
            return base[int(self._eval(expr.index))]
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand)
            return (not value) if expr.op == "!" else -value
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, Call):
            return self._call(expr)
        raise ReferenceError_(f"unknown expression {type(expr).__name__}")

    def _binop(self, expr: BinOp):
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        raise ReferenceError_(f"unknown operator {op!r}")

    # -------------------------------------------------------------- builtins

    def _call(self, expr: Call):
        import math

        # Imported lazily: lang is a leaf package that privacy/analysis
        # depend on; importing the mechanisms at module scope would cycle.
        from ..privacy.mechanisms import (
            exponential_mechanism_gumbel,
            laplace_sample,
            top_k_oneshot,
        )

        args = [self._eval(a) for a in expr.args]
        func = expr.func
        if func == "sum":
            values = args[0]
            if values and isinstance(values[0], list):
                width = len(values[0])
                return [sum(row[j] for row in values) for j in range(width)]
            return sum(values)
        if func == "max":
            return max(args[0]) if len(args) == 1 and isinstance(args[0], list) else max(args)
        if func == "argmax":
            values = args[0]
            return max(range(len(values)), key=values.__getitem__)
        if func == "em":
            scores = [float(s) for s in args[0]]
            if len(args) == 2:
                k = int(args[1])
                if k > 1:
                    return top_k_oneshot(
                        scores, k, self.sensitivity, self.epsilon, self.rng
                    )
            return exponential_mechanism_gumbel(
                scores, self.sensitivity, self.epsilon, self.rng
            )
        if func == "laplace":
            scale = float(args[1])
            if isinstance(args[0], list):
                return [v + laplace_sample(scale, self.rng) for v in args[0]]
            return args[0] + laplace_sample(scale, self.rng)
        if func == "gumbel":
            from ..privacy.mechanisms import gumbel_sample

            return gumbel_sample(float(args[0]), self.rng)
        if func == "sampleUniform":
            rows = args[0]
            phi = self._sample_override if self._sample_override is not None else float(args[1])
            return [row for row in rows if self.rng.random() < phi]
        if func == "clip":
            return min(max(args[0], args[1]), args[2])
        if func == "exp":
            return math.exp(args[0])
        if func == "log":
            return math.log(args[0])
        if func == "sqrt":
            return math.sqrt(args[0])
        if func == "abs":
            return abs(args[0])
        if func == "len":
            return len(args[0])
        if func == "random":
            return self.rng.uniform(0.0, float(args[0]))
        if func == "output":
            self.outputs.append(args[0])
            return args[0]
        if func == "declassify":
            return args[0]
        raise ReferenceError_(f"unknown function {func!r}")


def one_hot_database(categories: Sequence[int], width: int) -> List[List[int]]:
    """Build the db matrix from per-participant category indices."""
    rows = []
    for c in categories:
        row = [0] * width
        row[int(c) % width] = 1
        rows.append(row)
    return rows


def run_reference(
    source: str,
    db: Sequence[Sequence[Number]],
    epsilon: float = 1.0,
    sensitivity: float = 1.0,
    rng: Optional[random.Random] = None,
    constants: Optional[Dict[str, Number]] = None,
) -> List[object]:
    """One-call convenience wrapper."""
    interp = ReferenceInterpreter(
        db, epsilon=epsilon, sensitivity=sensitivity, rng=rng, constants=constants
    )
    return interp.run_source(source)
