"""Recursive-descent parser for the query language (Fig 2).

Grammar (statements are ``;``-separated; blocks are delimited by
``do..endfor`` and ``then..else..endif``):

    stmt := var = exp | var[exp] = exp | exp
          | for var = exp to exp do stmts endfor
          | if exp then stmts [else stmts] endif

    exp   := or_exp
    or    := and (|| and)*
    and   := not (&& not)*
    not   := ! not | cmp
    cmp   := add ((< | <= | > | >= | == | !=) add)?
    add   := mul ((+|-) mul)*
    mul   := unary ((*|/) unary)*
    unary := - unary | postfix
    postfix := atom ([exp])*
    atom  := lit | var | func(args) | (exp)
"""

from __future__ import annotations

from typing import List

from .ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Program,
    Stmt,
    UnOp,
    Var,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid programs."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- plumbing

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: str = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: str = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: str = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            wanted = text or kind
            raise ParseError(f"line {tok.line}: expected {wanted!r}, found {tok.text!r}")
        return self._advance()

    # ------------------------------------------------------------ statements

    def parse_program(self) -> Program:
        statements = self._parse_block(stop={"EOF"})
        self._expect("EOF")
        return Program(statements)

    def _parse_block(self, stop) -> List[Stmt]:
        statements: List[Stmt] = []
        while self._peek().kind not in stop:
            statements.append(self._parse_statement())
            self._match("SEMI")
        return statements

    def _parse_statement(self) -> Stmt:
        tok = self._peek()
        if tok.kind == "FOR":
            return self._parse_for()
        if tok.kind == "IF":
            return self._parse_if()
        if tok.kind == "IDENT":
            nxt = self._peek(1)
            if nxt.kind == "OP" and nxt.text == "=":
                name = self._advance().text
                self._advance()  # '='
                value = self._parse_expr()
                return Assign(name, value, line=tok.line)
            if nxt.kind == "LBRACK":
                # Could be var[exp] = exp (an indexed store) or an indexed
                # read inside a bare expression; disambiguate by scanning
                # for '=' right after the matching bracket.
                save = self._pos
                name = self._advance().text
                self._advance()  # '['
                index = self._parse_expr()
                self._expect("RBRACK")
                if self._check("OP", "="):
                    self._advance()
                    value = self._parse_expr()
                    return IndexAssign(name, index, value, line=tok.line)
                self._pos = save
        expr = self._parse_expr()
        return ExprStmt(expr, line=tok.line)

    def _parse_for(self) -> For:
        tok = self._expect("FOR")
        var = self._expect("IDENT").text
        self._expect("OP", "=")
        start = self._parse_expr()
        self._expect("TO")
        end = self._parse_expr()
        self._expect("DO")
        body = self._parse_block(stop={"ENDFOR", "EOF"})
        self._expect("ENDFOR")
        return For(var, start, end, body, line=tok.line)

    def _parse_if(self) -> If:
        tok = self._expect("IF")
        cond = self._parse_expr()
        self._expect("THEN")
        then_body = self._parse_block(stop={"ELSE", "ENDIF", "EOF"})
        else_body: List[Stmt] = []
        if self._match("ELSE"):
            else_body = self._parse_block(stop={"ENDIF", "EOF"})
        self._expect("ENDIF")
        return If(cond, then_body, else_body, line=tok.line)

    # ----------------------------------------------------------- expressions

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._check("OP", "||"):
            line = self._advance().line
            right = self._parse_and()
            left = BinOp("||", left, right, line=line)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._check("OP", "&&"):
            line = self._advance().line
            right = self._parse_not()
            left = BinOp("&&", left, right, line=line)
        return left

    def _parse_not(self) -> Expr:
        if self._check("OP", "!"):
            line = self._advance().line
            return UnOp("!", self._parse_not(), line=line)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.kind == "OP" and tok.text in ("<", "<=", ">", ">=", "==", "!="):
            self._advance()
            right = self._parse_additive()
            return BinOp(tok.text, left, right, line=tok.line)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == "OP" and self._peek().text in ("+", "-"):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = BinOp(tok.text, left, right, line=tok.line)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind == "OP" and self._peek().text in ("*", "/"):
            tok = self._advance()
            right = self._parse_unary()
            left = BinOp(tok.text, left, right, line=tok.line)
        return left

    def _parse_unary(self) -> Expr:
        if self._check("OP", "-"):
            tok = self._advance()
            return UnOp("-", self._parse_unary(), line=tok.line)
        if self._check("OP", "!"):
            # `!` binds loosely at the `not` level, but also appears in
            # operand position (e.g. `-x + !y`); accept it here too.
            tok = self._advance()
            return UnOp("!", self._parse_unary(), line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_atom()
        while self._match("LBRACK"):
            index = self._parse_expr()
            self._expect("RBRACK")
            expr = Index(expr, index, line=self._peek().line)
        return expr

    def _parse_atom(self) -> Expr:
        tok = self._peek()
        if tok.kind == "INT":
            self._advance()
            return IntLit(int(tok.text), line=tok.line)
        if tok.kind == "FLOAT":
            self._advance()
            return FloatLit(float(tok.text), line=tok.line)
        if tok.kind in ("TRUE", "FALSE"):
            self._advance()
            return BoolLit(tok.kind == "TRUE", line=tok.line)
        if tok.kind == "IDENT":
            self._advance()
            if self._match("LPAREN"):
                args: List[Expr] = []
                if not self._check("RPAREN"):
                    args.append(self._parse_expr())
                    while self._match("COMMA"):
                        args.append(self._parse_expr())
                self._expect("RPAREN")
                return Call(tok.text, args, line=tok.line)
            return Var(tok.text, line=tok.line)
        if self._match("LPAREN"):
            expr = self._parse_expr()
            self._expect("RPAREN")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> Program:
    """Parse query-language source text into an AST."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression — handy for tests."""
    parser = _Parser(tokenize(source))
    expr = parser._parse_expr()
    parser._expect("EOF")
    return expr
