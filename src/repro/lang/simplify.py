"""AST simplification: constant folding and dead-branch elimination.

The planner forbids vignettes consisting only of constant assignments
(§4.4) — the cleanest way to guarantee that is to fold constants away
before lowering. The pass is semantics-preserving (checked by property
tests against the reference interpreter): literal arithmetic is folded,
``if`` statements with constant conditions are replaced by the taken
branch, double negation is removed, and arithmetic identities (x+0, x*1,
x*0 for pure x) are applied.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Program,
    Stmt,
    UnOp,
    Var,
)

Number = Union[int, float, bool]

#: Calls with side effects or randomness: never folded, never dropped.
_EFFECTFUL = {"output", "declassify", "laplace", "em", "gumbel", "random", "sampleUniform"}


def _literal_value(expr: Expr) -> Optional[Number]:
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    return None


def _make_literal(value: Number, line: int) -> Expr:
    if isinstance(value, bool):
        return BoolLit(value, line=line)
    if isinstance(value, int):
        return IntLit(value, line=line)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        # Keep int-valued results integral so basic types do not widen.
        return IntLit(int(value), line=line)
    return FloatLit(float(value), line=line)


def _is_pure(expr: Expr) -> bool:
    """True if evaluating the expression has no effects and no randomness."""
    if isinstance(expr, (IntLit, FloatLit, BoolLit, Var)):
        return True
    if isinstance(expr, Index):
        return _is_pure(expr.base) and _is_pure(expr.index)
    if isinstance(expr, UnOp):
        return _is_pure(expr.operand)
    if isinstance(expr, BinOp):
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, Call):
        if expr.func in _EFFECTFUL:
            return False
        return all(_is_pure(a) for a in expr.args)
    return False


_FOLDABLE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}


def simplify_expr(expr: Expr) -> Expr:
    """Recursively fold an expression."""
    if isinstance(expr, (IntLit, FloatLit, BoolLit, Var)):
        return expr
    if isinstance(expr, Index):
        return Index(simplify_expr(expr.base), simplify_expr(expr.index), line=expr.line)
    if isinstance(expr, UnOp):
        operand = simplify_expr(expr.operand)
        value = _literal_value(operand)
        if expr.op == "-" and value is not None and not isinstance(value, bool):
            return _make_literal(-value, expr.line)
        if expr.op == "!" and value is not None:
            return BoolLit(not value, line=expr.line)
        if (
            isinstance(operand, UnOp)
            and operand.op == expr.op
            and expr.op in ("-", "!")
        ):
            return operand.operand  # --x == x, !!b == b
        return UnOp(expr.op, operand, line=expr.line)
    if isinstance(expr, BinOp):
        return _simplify_binop(expr)
    if isinstance(expr, Call):
        args = [simplify_expr(a) for a in expr.args]
        folded = _fold_pure_call(expr.func, args, expr.line)
        if folded is not None:
            return folded
        return Call(expr.func, args, line=expr.line)
    return expr


def _simplify_binop(expr: BinOp) -> Expr:
    left = simplify_expr(expr.left)
    right = simplify_expr(expr.right)
    lv, rv = _literal_value(left), _literal_value(right)
    op = expr.op
    if lv is not None and rv is not None:
        if op == "/":
            if rv != 0:
                return _make_literal(lv / rv, expr.line)
        elif op in _FOLDABLE_BINOPS:
            return _make_literal(_FOLDABLE_BINOPS[op](lv, rv), expr.line)
    # Identities on one literal side; only drop the other side if pure.
    if op == "+":
        if lv == 0 and not isinstance(lv, bool):
            return right
        if rv == 0 and not isinstance(rv, bool):
            return left
    if op == "-" and rv == 0 and not isinstance(rv, bool):
        return left
    if op == "*":
        if lv == 1 and not isinstance(lv, bool):
            return right
        if rv == 1 and not isinstance(rv, bool):
            return left
        if lv == 0 and not isinstance(lv, bool) and _is_pure(right):
            return _make_literal(0, expr.line)
        if rv == 0 and not isinstance(rv, bool) and _is_pure(left):
            return _make_literal(0, expr.line)
    if op == "&&":
        if lv is True:
            return right
        if rv is True:
            return left
        if lv is False:
            return BoolLit(False, line=expr.line)
        if rv is False and _is_pure(left):
            return BoolLit(False, line=expr.line)
    if op == "||":
        if lv is False:
            return right
        if rv is False:
            return left
        if lv is True:
            return BoolLit(True, line=expr.line)
        if rv is True and _is_pure(left):
            return BoolLit(True, line=expr.line)
    return BinOp(op, left, right, line=expr.line)


def _fold_pure_call(func: str, args: List[Expr], line: int) -> Optional[Expr]:
    """Fold math builtins over literal arguments."""
    import math

    values = [_literal_value(a) for a in args]
    if any(v is None for v in values):
        return None
    try:
        if func == "abs":
            return _make_literal(abs(values[0]), line)
        if func == "clip":
            return _make_literal(min(max(values[0], values[1]), values[2]), line)
        if func == "exp":
            return _make_literal(math.exp(values[0]), line)
        if func == "log":
            return _make_literal(math.log(values[0]), line)
        if func == "sqrt":
            return _make_literal(math.sqrt(values[0]), line)
        if func == "max":
            return _make_literal(max(values), line)
    except (ValueError, OverflowError):
        return None
    return None


def simplify_statements(statements: List[Stmt]) -> List[Stmt]:
    out: List[Stmt] = []
    for stmt in statements:
        out.extend(_simplify_statement(stmt))
    return out


def _simplify_statement(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, Assign):
        value = simplify_expr(stmt.value)
        # x = x is a no-op.
        if isinstance(value, Var) and value.name == stmt.var:
            return []
        return [Assign(stmt.var, value, line=stmt.line)]
    if isinstance(stmt, IndexAssign):
        return [
            IndexAssign(
                stmt.var,
                simplify_expr(stmt.index),
                simplify_expr(stmt.value),
                line=stmt.line,
            )
        ]
    if isinstance(stmt, ExprStmt):
        expr = simplify_expr(stmt.expr)
        if _is_pure(expr):
            return []  # a pure expression statement does nothing
        return [ExprStmt(expr, line=stmt.line)]
    if isinstance(stmt, For):
        start = simplify_expr(stmt.start)
        end = simplify_expr(stmt.end)
        body = simplify_statements(stmt.body)
        sv, ev = _literal_value(start), _literal_value(end)
        if sv is not None and ev is not None and ev < sv:
            return []  # loop never runs
        if not body:
            # An empty body may still need the loop variable's final value;
            # keep a degenerate assignment when the bounds are known.
            if sv is not None and ev is not None:
                return [Assign(stmt.var, _make_literal(ev, stmt.line), line=stmt.line)]
        return [For(stmt.var, start, end, body, line=stmt.line)]
    if isinstance(stmt, If):
        cond = simplify_expr(stmt.cond)
        value = _literal_value(cond)
        then_body = simplify_statements(stmt.then_body)
        else_body = simplify_statements(stmt.else_body)
        if value is True:
            return then_body
        if value is False:
            return else_body
        if not then_body and not else_body:
            return []
        return [If(cond, then_body, else_body, line=stmt.line)]
    return [stmt]


def simplify(program: Program) -> Program:
    """Fold constants and eliminate dead code in a whole program."""
    return Program(simplify_statements(program.statements))
