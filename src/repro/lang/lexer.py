"""Tokenizer for the query language (Fig 2).

Token kinds: identifiers/keywords, integer and float literals, operators,
and punctuation. ``//`` and ``#`` start a comment running to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset({"for", "to", "do", "endfor", "if", "then", "else", "endif", "true", "false"})

# Longest-match-first operator table.
_OPERATORS = ["&&", "||", "<=", ">=", "==", "!=", "+", "-", "*", "/", "<", ">", "!", "="]
_PUNCTUATION = {";": "SEMI", ",": "COMMA", "(": "LPAREN", ")": "RPAREN", "[": "LBRACK", "]": "RBRACK"}


class LexError(Exception):
    """Raised on characters the language does not recognize."""


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, INT, FLOAT, OP, keyword name, punctuation name, EOF
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Convert source text into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i and source[j - 1].isdigit():
                    seen_exp = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                else:
                    break
            text = source[i:j]
            kind = "FLOAT" if (seen_dot or seen_exp) else "INT"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = text.upper() if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, line))
            i += 1
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line))
    return tokens
