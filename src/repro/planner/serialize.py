"""JSON-safe serialization of plans and planning results.

Deployments need to ship the chosen plan around: the aggregator publishes
it inside the query authorization certificate, committees check the
vignette they execute against it, and tooling wants to diff plans across
planner versions. This module renders plans and planning results as plain
dictionaries (stable key order, no custom types) suitable for
``json.dumps``.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict

from .costmodel import CostVector, Work
from .plan import Plan, Vignette
from .search import PlanningResult


def work_to_dict(work: Work) -> Dict[str, float]:
    """Non-zero work counters only, for compact plan documents."""
    out = {}
    for f in fields(Work):
        value = getattr(work, f.name)
        if value:
            out[f.name] = value
    return out


def vignette_to_dict(vignette: Vignette) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": vignette.name,
        "location": vignette.location.value,
        "crypto": vignette.crypto,
        "instances": vignette.instances,
        "work": work_to_dict(vignette.work),
    }
    if vignette.committee_group is not None:
        out["committee_group"] = vignette.committee_group
        out["committee_type"] = vignette.committee_type
    return out


def cost_to_dict(cost: CostVector) -> Dict[str, float]:
    return {metric: cost.get(metric) for metric in CostVector.METRICS}


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    score = plan.score
    return {
        "query": plan.query_name,
        "scheme": {
            "name": plan.scheme.name,
            "ring_log2": plan.scheme.ring_log2,
            "ciphertext_modulus_bits": plan.scheme.ciphertext_modulus_bits,
            "ciphertext_bytes": plan.scheme.ciphertext_bytes,
        },
        "choices": dict(sorted(plan.choices.items())),
        "committees": {
            "count": score.committee_params.num_committees,
            "size": score.committee_params.committee_size,
            "malicious_fraction": score.committee_params.malicious_fraction,
            "churn_tolerance": score.committee_params.churn_tolerance,
        },
        "cost": cost_to_dict(plan.cost),
        "committee_breakdown": [
            {
                "type": entry.committee_type,
                "seconds": entry.seconds,
                "bytes_sent": entry.bytes_sent,
                "committees": entry.committees,
            }
            for entry in score.committee_breakdown
        ],
        "vignettes": [vignette_to_dict(v) for v in plan.vignettes],
    }


def planning_result_to_dict(result: PlanningResult) -> Dict[str, Any]:
    stats = result.statistics
    out: Dict[str, Any] = {
        "succeeded": result.succeeded,
        "certificate": {
            "epsilon": result.certificate.epsilon,
            "delta": result.certificate.delta,
            "mechanisms": [
                {
                    "mechanism": use.mechanism,
                    "epsilon": use.epsilon,
                    "delta": use.delta,
                    "k": use.k,
                    "sensitivity_l1": use.sensitivity.l1,
                    "sensitivity_linf": use.sensitivity.linf,
                }
                for use in result.certificate.mechanisms
            ],
        },
        "statistics": {
            "space_size": stats.space_size,
            "prefixes_considered": stats.prefixes_considered,
            "candidates_scored": stats.candidates_scored,
            "candidates_feasible": stats.candidates_feasible,
            "pruned_by_constraint": stats.pruned_by_constraint,
            "pruned_by_bound": stats.pruned_by_bound,
            "runtime_seconds": stats.runtime_seconds,
            "cost_cache_hits": stats.cost_cache_hits,
            "cost_cache_misses": stats.cost_cache_misses,
            "expansion_cache_hits": stats.expansion_cache_hits,
            "expansion_cache_misses": stats.expansion_cache_misses,
            "nodes_reordered": stats.nodes_reordered,
            "workers": stats.workers,
        },
    }
    if result.plan is not None:
        out["plan"] = plan_to_dict(result.plan)
    privacy_certificate = getattr(result, "privacy_certificate", None)
    if privacy_certificate is not None:
        # The dataflow analyzer's machine-checkable proof travels with the
        # plan; its digest is what the executor re-checks before running.
        out["privacy_certificate"] = privacy_certificate.to_dict()
        out["privacy_certificate_digest"] = privacy_certificate.digest()
    return out
