"""JSON-safe serialization of plans and planning results.

Deployments need to ship the chosen plan around: the aggregator publishes
it inside the query authorization certificate, committees check the
vignette they execute against it, and tooling wants to diff plans across
planner versions. This module renders plans and planning results as plain
dictionaries (stable key order, no custom types) suitable for
``json.dumps``.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from dataclasses import fields
from typing import Any, Dict, Union

from ..analysis.types import QueryEnvironment
from ..lang.ast import Node, Program
from ..lang.parser import parse
from ..lang.simplify import simplify
from .costmodel import CostVector, Work
from .plan import Plan, Vignette
from .search import PlanningResult


def work_to_dict(work: Work) -> Dict[str, float]:
    """Non-zero work counters only, for compact plan documents."""
    out = {}
    for f in fields(Work):
        value = getattr(work, f.name)
        if value:
            out[f.name] = value
    return out


def vignette_to_dict(vignette: Vignette) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": vignette.name,
        "location": vignette.location.value,
        "crypto": vignette.crypto,
        "instances": vignette.instances,
        "work": work_to_dict(vignette.work),
    }
    if vignette.committee_group is not None:
        out["committee_group"] = vignette.committee_group
        out["committee_type"] = vignette.committee_type
    return out


def cost_to_dict(cost: CostVector) -> Dict[str, float]:
    return {metric: cost.get(metric) for metric in CostVector.METRICS}


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    score = plan.score
    return {
        "query": plan.query_name,
        "scheme": {
            "name": plan.scheme.name,
            "ring_log2": plan.scheme.ring_log2,
            "ciphertext_modulus_bits": plan.scheme.ciphertext_modulus_bits,
            "ciphertext_bytes": plan.scheme.ciphertext_bytes,
        },
        "choices": dict(sorted(plan.choices.items())),
        "committees": {
            "count": score.committee_params.num_committees,
            "size": score.committee_params.committee_size,
            "malicious_fraction": score.committee_params.malicious_fraction,
            "churn_tolerance": score.committee_params.churn_tolerance,
        },
        "cost": cost_to_dict(plan.cost),
        "committee_breakdown": [
            {
                "type": entry.committee_type,
                "seconds": entry.seconds,
                "bytes_sent": entry.bytes_sent,
                "committees": entry.committees,
            }
            for entry in score.committee_breakdown
        ],
        "vignettes": [vignette_to_dict(v) for v in plan.vignettes],
    }


# ------------------------------------------------------------ fingerprints
#
# The service layer's keyed plan cache needs a stable identity for "the
# same query shape in the same environment": two submissions that would
# drive the planner through an identical search must collide, and any
# input that could change the chosen plan (or its privacy certificate)
# must not. The fingerprint therefore covers the *normalized* IR — the
# simplified AST with source line numbers stripped, so formatting and
# constant-foldable phrasing differences collide — plus every
# QueryEnvironment field the planner or certifier reads, the budget
# class, and the scheme families this build can instantiate.

#: Scheme families the planner's grammar can choose from in this build.
#: Part of the cache key so a cache serialized against a build with a
#: different crypto menu can never satisfy a lookup.
AVAILABLE_SCHEMES = ("ahe_paillier", "fhe_bgv")

#: Bumped when fingerprint semantics change (key fields added/removed),
#: so mixed-version caches miss instead of colliding wrongly.
FINGERPRINT_VERSION = 1


def budget_class(epsilon: float) -> str:
    """Coarse ε class used in admission policy and the plan-cache key."""
    if epsilon < 0.1:
        return "micro"
    if epsilon < 1.0:
        return "small"
    if epsilon < 10.0:
        return "standard"
    return "bulk"


def _ast_shape(node: Any) -> Any:
    """The AST as nested plain data, dropping source line numbers."""
    if isinstance(node, Node):
        out: list = [type(node).__name__]
        for f in dataclasses.fields(node):
            if f.name == "line":
                continue
            out.append(_ast_shape(getattr(node, f.name)))
        return out
    if isinstance(node, (list, tuple)):
        return [_ast_shape(item) for item in node]
    return node


@functools.lru_cache(maxsize=1024)
def _source_shape_json(source: str) -> str:
    """Canonical JSON of a source string's normalized AST shape, memoized.

    parse + simplify dominate the fingerprint cost, and the serving
    layer fingerprints the same source text on every submission of a
    repeated query — exactly the traffic the plan cache exists for — so
    the source → shape mapping is cached. Safe because the mapping is a
    pure function of the text.
    """
    shape = _ast_shape(simplify(parse(source)))
    return json.dumps(shape, sort_keys=True, separators=(",", ":"))


def environment_fingerprint_dict(env: QueryEnvironment) -> Dict[str, Any]:
    """Every environment field that can steer planning or certification."""
    element = env.db_element
    return {
        "num_participants": env.num_participants,
        "row_width": env.row_width,
        "db_element": [element.basic, element.interval.lo, element.interval.hi],
        "epsilon": env.epsilon,
        "delta": env.delta,
        "sensitivity": env.sensitivity,
        "row_encoding": env.row_encoding,
        "row_l1": env.row_l1,
        "constants": dict(sorted(env.constants.items())),
        "budget_class": budget_class(env.epsilon),
        "schemes": list(AVAILABLE_SCHEMES),
    }


def query_fingerprint(
    query: Union[str, Program], env: QueryEnvironment
) -> str:
    """SHA-256 key of (normalized query IR, environment) for plan caching.

    Accepts source text (parsed and constant-folded here, mirroring
    :meth:`Planner.plan_program`) or an already-parsed :class:`Program`.
    """
    if isinstance(query, str):
        program_json = _source_shape_json(query)
    else:
        program_json = json.dumps(
            _ast_shape(simplify(query)), sort_keys=True, separators=(",", ":")
        )
    environment_json = json.dumps(
        environment_fingerprint_dict(env), sort_keys=True, separators=(",", ":")
    )
    # Assembled field-by-field (keys in sorted order) so the memoized
    # program fragment slots in without re-serializing the whole doc;
    # byte-identical to dumping {"environment", "program", "version"}
    # with sort_keys=True.
    canonical = (
        '{"environment":' + environment_json
        + ',"program":' + program_json
        + ',"version":' + json.dumps(FINGERPRINT_VERSION) + "}"
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def planning_result_to_dict(result: PlanningResult) -> Dict[str, Any]:
    stats = result.statistics
    out: Dict[str, Any] = {
        "succeeded": result.succeeded,
        "certificate": {
            "epsilon": result.certificate.epsilon,
            "delta": result.certificate.delta,
            "mechanisms": [
                {
                    "mechanism": use.mechanism,
                    "epsilon": use.epsilon,
                    "delta": use.delta,
                    "k": use.k,
                    "sensitivity_l1": use.sensitivity.l1,
                    "sensitivity_linf": use.sensitivity.linf,
                }
                for use in result.certificate.mechanisms
            ],
        },
        "statistics": {
            "space_size": stats.space_size,
            "prefixes_considered": stats.prefixes_considered,
            "candidates_scored": stats.candidates_scored,
            "candidates_feasible": stats.candidates_feasible,
            "pruned_by_constraint": stats.pruned_by_constraint,
            "pruned_by_bound": stats.pruned_by_bound,
            "runtime_seconds": stats.runtime_seconds,
            "cost_cache_hits": stats.cost_cache_hits,
            "cost_cache_misses": stats.cost_cache_misses,
            "expansion_cache_hits": stats.expansion_cache_hits,
            "expansion_cache_misses": stats.expansion_cache_misses,
            "nodes_reordered": stats.nodes_reordered,
            "workers": stats.workers,
        },
    }
    if result.plan is not None:
        out["plan"] = plan_to_dict(result.plan)
    privacy_certificate = getattr(result, "privacy_certificate", None)
    if privacy_certificate is not None:
        # The dataflow analyzer's machine-checkable proof travels with the
        # plan; its digest is what the executor re-checks before running.
        out["privacy_certificate"] = privacy_certificate.to_dict()
        out["privacy_certificate_digest"] = privacy_certificate.digest()
    return out
