"""Plan representation and scoring (§4.4, §4.6).

A concrete plan is a sequence of *vignettes*: short computation stages,
each assigned to the aggregator, to (parallel) committees of participant
devices, or to the participant devices themselves, each with a
cryptographic mode (clear / AHE / FHE / MPC). Scoring turns a vignette
sequence into the six-metric CostVector via the cost model, recomputing
the minimum committee size for the plan's committee count first (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .committees import CommitteeParameters
from .costmodel import (
    CostModel,
    CostVector,
    DeviceProfile,
    REFERENCE_SERVER,
    SchemeParams,
    Work,
)


class Location(str, enum.Enum):
    AGGREGATOR = "aggregator"
    COMMITTEE = "committee"
    PARTICIPANT = "participant"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.1f} ms"


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if n >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


@dataclass
class Vignette:
    """One stage of a concrete plan.

    ``instances`` is the number of parallel executions (committees for
    committee vignettes, devices for participant vignettes; 1 for the
    aggregator). ``work`` is per instance — and, for committee vignettes,
    per *member*. Vignettes sharing a ``committee_group`` run on the same
    committees, so one member pays for all of them; vignettes in different
    groups run on disjoint committees.
    """

    name: str
    location: Location
    crypto: str  # "clear" | "ahe" | "fhe" | "mpc"
    work: Work
    instances: float = 1.0
    committee_group: Optional[str] = None
    committee_type: Optional[str] = None  # "keygen" | "decryption" | "operations"

    def __post_init__(self):
        if self.location is Location.COMMITTEE and not self.committee_group:
            raise ValueError(f"committee vignette {self.name!r} needs a group")


@dataclass
class CommitteeTypeCost:
    """Per-member cost of serving on one committee of a given type (Fig 7)."""

    committee_type: str
    seconds: float
    bytes_sent: float
    committees: float


@dataclass
class PlanScore:
    """Everything scoring produces for one candidate."""

    cost: CostVector
    committee_params: CommitteeParameters
    committee_breakdown: List[CommitteeTypeCost]
    aggregator_breakdown: Dict[str, Tuple[float, float]]  # name -> (sec, bytes)
    participant_base_seconds: float
    participant_base_bytes: float


@dataclass
class Plan:
    """A fully instantiated, scored candidate."""

    query_name: str
    choices: Dict[str, str]
    vignettes: List[Vignette]
    scheme: SchemeParams
    score: PlanScore
    #: The structured choice objects (one per logical op); the runtime
    #: executor reads batch sizes and fanouts from these.
    choice_list: List[object] = field(default_factory=list)

    @property
    def cost(self) -> CostVector:
        return self.score.cost

    @property
    def committee_params(self) -> CommitteeParameters:
        return self.score.committee_params

    def explain(self, model: CostModel, num_participants: int) -> str:
        """A per-vignette cost table: where every second and byte goes.

        The analyst-facing counterpart of :meth:`describe`: for each
        vignette, who runs it, how many instances, what one instance costs
        in compute and traffic, and (for committee vignettes) what that
        means for a selected member.
        """
        m = self.committee_params.committee_size
        lines = [
            f"{'vignette':16s} {'where':12s} {'crypto':6s} {'instances':>10s} "
            f"{'compute/inst':>13s} {'traffic/inst':>13s}"
        ]
        for v in self.vignettes:
            size = m if v.location is Location.COMMITTEE else 1
            seconds = model.compute_seconds(v.work, size)
            sent = model.traffic_bytes(v.work, size)
            received = model.received_bytes(v.work, size)
            traffic = sent + received
            lines.append(
                f"{v.name:16s} {v.location.value:12s} {v.crypto:6s} "
                f"{v.instances:>10g} {_fmt_seconds(seconds):>13s} "
                f"{_fmt_bytes(traffic):>13s}"
            )
        cost = self.cost
        lines.append("")
        lines.append(
            f"totals: aggregator {cost.aggregator_core_seconds / 3600:,.1f} core-h / "
            f"{_fmt_bytes(cost.aggregator_bytes)}; participant expected "
            f"{_fmt_seconds(cost.participant_expected_seconds)} / "
            f"{_fmt_bytes(cost.participant_expected_bytes)}, max "
            f"{_fmt_seconds(cost.participant_max_seconds)} / "
            f"{_fmt_bytes(cost.participant_max_bytes)}"
        )
        fraction = self.committee_params.selection_fraction(num_participants)
        lines.append(
            f"committees: {self.committee_params.num_committees:,} x {m} members "
            f"({fraction * 100:.4f}% of devices serve)"
        )
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [f"plan for {self.query_name!r} ({self.scheme.name}, ring 2^{self.scheme.ring_log2})"]
        for key, value in sorted(self.choices.items()):
            lines.append(f"  choice {key} = {value}")
        params = self.committee_params
        lines.append(
            f"  committees: {params.num_committees} of size {params.committee_size}"
        )
        for v in self.vignettes:
            inst = f"x{v.instances:g}" if v.instances != 1 else ""
            lines.append(f"  vignette {v.name} @ {v.location.value}{inst} [{v.crypto}]")
        return "\n".join(lines)


def count_committees(vignettes: List[Vignette]) -> float:
    """Distinct committees a plan uses: one per (group, instances) block."""
    groups: Dict[str, float] = {}
    for v in vignettes:
        if v.location is Location.COMMITTEE:
            groups[v.committee_group] = max(
                groups.get(v.committee_group, 0.0), v.instances
            )
    return sum(groups.values())


def score_vignettes(
    vignettes: List[Vignette],
    num_participants: int,
    model: CostModel,
    # Costs are reported at reference-server speed, matching the paper's
    # methodology (Figs 6-7 are cluster measurements; §7.5 estimates the
    # device slowdown separately).
    device: DeviceProfile = REFERENCE_SERVER,
    committee_params: Optional[CommitteeParameters] = None,
) -> PlanScore:
    """Score a full vignette sequence into the six metrics.

    Committee sizing (§5.1) runs first, because member costs and selection
    probabilities depend on m. Expected participant cost sums the
    always-on participant work plus each committee vignette's member cost
    weighted by the probability of serving on it; maximum participant cost
    takes the most expensive committee group.
    """
    total_committees = count_committees(vignettes)
    if committee_params is None:
        committee_params = CommitteeParameters.for_plan(max(int(total_committees), 1))
    m = committee_params.committee_size

    aggregator_seconds = 0.0
    aggregator_bytes = 0.0
    aggregator_breakdown: Dict[str, Tuple[float, float]] = {}
    expected_seconds = 0.0
    expected_bytes = 0.0
    base_seconds = 0.0
    base_bytes = 0.0

    # Per committee group: accumulated member cost (one member serves on one
    # committee of the group, and pays for every vignette in the group).
    group_seconds: Dict[str, float] = {}
    group_bytes: Dict[str, float] = {}
    group_type: Dict[str, str] = {}
    group_instances: Dict[str, float] = {}

    for v in vignettes:
        if v.location is Location.AGGREGATOR:
            seconds = model.compute_seconds(v.work) * v.instances
            bytes_sent = model.traffic_bytes(v.work) * v.instances
            aggregator_seconds += seconds
            aggregator_bytes += bytes_sent
            prev = aggregator_breakdown.get(v.name, (0.0, 0.0))
            aggregator_breakdown[v.name] = (prev[0] + seconds, prev[1] + bytes_sent)
        elif v.location is Location.PARTICIPANT:
            seconds = model.device_seconds(v.work, device)
            # Participant bandwidth counts both directions (Table 1 reports
            # "participant bandwidth"; the worst-case GB comes from tree
            # helpers *receiving* fanout-many ciphertexts).
            bytes_sent = model.traffic_bytes(v.work) + model.received_bytes(v.work)
            if v.instances >= num_participants:
                # Every device runs this (e.g. input encryption).
                base_seconds += seconds
                base_bytes += bytes_sent
            else:
                probability = v.instances / num_participants
                expected_seconds += probability * seconds
                expected_bytes += probability * bytes_sent
                group = f"participant:{v.name}"
                group_seconds[group] = group_seconds.get(group, 0.0) + seconds
                group_bytes[group] = group_bytes.get(group, 0.0) + bytes_sent
                group_type[group] = "helper"
                group_instances[group] = max(
                    group_instances.get(group, 0.0), v.instances
                )
        else:  # COMMITTEE
            seconds = model.device_seconds(v.work, device, m)
            bytes_sent = model.traffic_bytes(v.work, m) + model.received_bytes(v.work, m)
            probability = min(1.0, v.instances * m / num_participants)
            expected_seconds += probability * seconds
            expected_bytes += probability * bytes_sent
            group = v.committee_group
            group_seconds[group] = group_seconds.get(group, 0.0) + seconds
            group_bytes[group] = group_bytes.get(group, 0.0) + bytes_sent
            group_type.setdefault(group, v.committee_type or "operations")
            group_instances[group] = max(group_instances.get(group, 0.0), v.instances)
            # The aggregator relays committee payloads (mailbox, §5.4).
            forwarded = (
                model.received_bytes(v.work, m) + v.work.payload_bytes_sent
            ) * m * v.instances
            aggregator_bytes += forwarded
            prev = aggregator_breakdown.get("forwarding", (0.0, 0.0))
            aggregator_breakdown["forwarding"] = (prev[0], prev[1] + forwarded)

    max_group_seconds = max(group_seconds.values(), default=0.0)
    max_group_bytes = max(group_bytes.values(), default=0.0)

    breakdown_by_type: Dict[str, CommitteeTypeCost] = {}
    for group, seconds in group_seconds.items():
        ctype = group_type[group]
        entry = breakdown_by_type.get(ctype)
        if entry is None or seconds > entry.seconds:
            breakdown_by_type[ctype] = CommitteeTypeCost(
                ctype, seconds, group_bytes[group], group_instances[group]
            )
        if entry is not None:
            entry.committees += 0  # keep max-cost representative per type

    cost = CostVector(
        aggregator_core_seconds=aggregator_seconds,
        aggregator_bytes=aggregator_bytes,
        participant_expected_seconds=base_seconds + expected_seconds,
        participant_expected_bytes=base_bytes + expected_bytes,
        participant_max_seconds=base_seconds + max_group_seconds,
        participant_max_bytes=base_bytes + max_group_bytes,
    )
    return PlanScore(
        cost=cost,
        committee_params=committee_params,
        committee_breakdown=sorted(
            breakdown_by_type.values(), key=lambda c: c.committee_type
        ),
        aggregator_breakdown=aggregator_breakdown,
        participant_base_seconds=base_seconds,
        participant_base_bytes=base_bytes,
    )
