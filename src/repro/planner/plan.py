"""Plan representation and scoring (§4.4, §4.6).

A concrete plan is a sequence of *vignettes*: short computation stages,
each assigned to the aggregator, to (parallel) committees of participant
devices, or to the participant devices themselves, each with a
cryptographic mode (clear / AHE / FHE / MPC). Scoring turns a vignette
sequence into the six-metric CostVector via the cost model, recomputing
the minimum committee size for the plan's committee count first (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .committees import CommitteeParameters
from .costmodel import (
    CostModel,
    CostVector,
    DeviceProfile,
    REFERENCE_SERVER,
    SchemeParams,
    Work,
)


class Location(str, enum.Enum):
    AGGREGATOR = "aggregator"
    COMMITTEE = "committee"
    PARTICIPANT = "participant"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.1f} ms"


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if n >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


@dataclass
class Vignette:
    """One stage of a concrete plan.

    ``instances`` is the number of parallel executions (committees for
    committee vignettes, devices for participant vignettes; 1 for the
    aggregator). ``work`` is per instance — and, for committee vignettes,
    per *member*. Vignettes sharing a ``committee_group`` run on the same
    committees, so one member pays for all of them; vignettes in different
    groups run on disjoint committees.
    """

    name: str
    location: Location
    crypto: str  # "clear" | "ahe" | "fhe" | "mpc"
    work: Work
    instances: float = 1.0
    committee_group: Optional[str] = None
    committee_type: Optional[str] = None  # "keygen" | "decryption" | "operations"

    def __post_init__(self):
        if self.location is Location.COMMITTEE and not self.committee_group:
            raise ValueError(f"committee vignette {self.name!r} needs a group")


@dataclass
class CommitteeTypeCost:
    """Per-member cost of serving on one committee of a given type (Fig 7)."""

    committee_type: str
    seconds: float
    bytes_sent: float
    committees: float


@dataclass
class PlanScore:
    """Everything scoring produces for one candidate."""

    cost: CostVector
    committee_params: CommitteeParameters
    committee_breakdown: List[CommitteeTypeCost]
    aggregator_breakdown: Dict[str, Tuple[float, float]]  # name -> (sec, bytes)
    participant_base_seconds: float
    participant_base_bytes: float


@dataclass
class Plan:
    """A fully instantiated, scored candidate."""

    query_name: str
    choices: Dict[str, str]
    vignettes: List[Vignette]
    scheme: SchemeParams
    score: PlanScore
    #: The structured choice objects (one per logical op); the runtime
    #: executor reads batch sizes and fanouts from these.
    choice_list: List[object] = field(default_factory=list)

    @property
    def cost(self) -> CostVector:
        return self.score.cost

    @property
    def committee_params(self) -> CommitteeParameters:
        return self.score.committee_params

    def explain(self, model: CostModel, num_participants: int) -> str:
        """A per-vignette cost table: where every second and byte goes.

        The analyst-facing counterpart of :meth:`describe`: for each
        vignette, who runs it, how many instances, what one instance costs
        in compute and traffic, and (for committee vignettes) what that
        means for a selected member.
        """
        m = self.committee_params.committee_size
        lines = [
            f"{'vignette':16s} {'where':12s} {'crypto':6s} {'instances':>10s} "
            f"{'compute/inst':>13s} {'traffic/inst':>13s}"
        ]
        for v in self.vignettes:
            size = m if v.location is Location.COMMITTEE else 1
            seconds = model.compute_seconds(v.work, size)
            sent = model.traffic_bytes(v.work, size)
            received = model.received_bytes(v.work, size)
            traffic = sent + received
            lines.append(
                f"{v.name:16s} {v.location.value:12s} {v.crypto:6s} "
                f"{v.instances:>10g} {_fmt_seconds(seconds):>13s} "
                f"{_fmt_bytes(traffic):>13s}"
            )
        cost = self.cost
        lines.append("")
        lines.append(
            f"totals: aggregator {cost.aggregator_core_seconds / 3600:,.1f} core-h / "
            f"{_fmt_bytes(cost.aggregator_bytes)}; participant expected "
            f"{_fmt_seconds(cost.participant_expected_seconds)} / "
            f"{_fmt_bytes(cost.participant_expected_bytes)}, max "
            f"{_fmt_seconds(cost.participant_max_seconds)} / "
            f"{_fmt_bytes(cost.participant_max_bytes)}"
        )
        fraction = self.committee_params.selection_fraction(num_participants)
        lines.append(
            f"committees: {self.committee_params.num_committees:,} x {m} members "
            f"({fraction * 100:.4f}% of devices serve)"
        )
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [f"plan for {self.query_name!r} ({self.scheme.name}, ring 2^{self.scheme.ring_log2})"]
        for key, value in sorted(self.choices.items()):
            lines.append(f"  choice {key} = {value}")
        params = self.committee_params
        lines.append(
            f"  committees: {params.num_committees} of size {params.committee_size}"
        )
        for v in self.vignettes:
            inst = f"x{v.instances:g}" if v.instances != 1 else ""
            lines.append(f"  vignette {v.name} @ {v.location.value}{inst} [{v.crypto}]")
        return "\n".join(lines)


def count_committees(vignettes: List[Vignette]) -> float:
    """Distinct committees a plan uses: one per (group, instances) block."""
    groups: Dict[str, float] = {}
    for v in vignettes:
        if v.location is Location.COMMITTEE:
            groups[v.committee_group] = max(
                groups.get(v.committee_group, 0.0), v.instances
            )
    return sum(groups.values())


def _score_stub(v: Vignette) -> tuple:
    """Precomputed scoring inputs for one vignette (stashed on it).

    ``(kind, cost-cache token, instances, breakdown/group label,
    committee type, mailbox payload bytes)`` — everything
    :meth:`ScoreAccumulator.add` needs without touching the vignette's
    attributes again. Vignettes are shared across thousands of folds via
    the expander's emission caches, so this pays for itself immediately.
    """
    location = v.location
    if location is Location.COMMITTEE:
        return (
            2,
            v.work.cache_key(),
            v.instances,
            v.committee_group,
            v.committee_type or "operations",
            v.work.payload_bytes_sent,
        )
    if location is Location.AGGREGATOR:
        return (0, v.work.cache_key(), v.instances, v.name, None, 0.0)
    return (1, v.work.cache_key(), v.instances, f"participant:{v.name}", None, 0.0)


class ScoreAccumulator:
    """Left-fold scoring state over a vignette sequence.

    This is the incremental core of :func:`score_vignettes`: folding
    vignettes one at a time (in list order, at a fixed committee size m)
    produces *bit-identical* sums to scoring the whole sequence at once,
    because float left-folds compose — ``fold(xs + ys)`` equals
    ``fold(fold(xs), ys)``. The branch-and-bound search exploits this by
    keeping one accumulator per search node and extending it with the new
    op's vignettes only; when the committee size (or the keygen work)
    changes, the search re-folds the full sequence instead.

    Per-vignette (seconds, sent, received) come from
    :meth:`CostModel.cached_costs`, so repeated folds of shared vignettes
    cost a dict lookup.
    """

    __slots__ = (
        "num_participants",
        "model",
        "device",
        "device_speed",
        "m",
        "aggregator_seconds",
        "aggregator_bytes",
        "expected_seconds",
        "expected_bytes",
        "base_seconds",
        "base_bytes",
        "group_seconds",
        "group_bytes",
        "group_type",
        "group_instances",
        "aggregator_breakdown",
    )

    def __init__(
        self,
        num_participants: int,
        model: CostModel,
        device: DeviceProfile,
        m: int,
    ):
        self.num_participants = num_participants
        self.model = model
        self.device = device
        self.device_speed = device.speed
        self.m = m
        self.aggregator_seconds = 0.0
        self.aggregator_bytes = 0.0
        self.expected_seconds = 0.0
        self.expected_bytes = 0.0
        self.base_seconds = 0.0
        self.base_bytes = 0.0
        # Per committee group: accumulated member cost (one member serves on
        # one committee of the group, and pays for every vignette in it).
        self.group_seconds: Dict[str, float] = {}
        self.group_bytes: Dict[str, float] = {}
        self.group_type: Dict[str, str] = {}
        self.group_instances: Dict[str, float] = {}
        self.aggregator_breakdown: Dict[str, Tuple[float, float]] = {}

    def copy(self) -> "ScoreAccumulator":
        new = ScoreAccumulator.__new__(ScoreAccumulator)
        new.num_participants = self.num_participants
        new.model = self.model
        new.device = self.device
        new.device_speed = self.device_speed
        new.m = self.m
        new.aggregator_seconds = self.aggregator_seconds
        new.aggregator_bytes = self.aggregator_bytes
        new.expected_seconds = self.expected_seconds
        new.expected_bytes = self.expected_bytes
        new.base_seconds = self.base_seconds
        new.base_bytes = self.base_bytes
        new.group_seconds = dict(self.group_seconds)
        new.group_bytes = dict(self.group_bytes)
        new.group_type = dict(self.group_type)
        new.group_instances = dict(self.group_instances)
        new.aggregator_breakdown = dict(self.aggregator_breakdown)
        return new

    def add(self, v: Vignette) -> None:
        # This fold is the hottest loop in the planner; the per-vignette
        # scoring inputs (location kind, cost-cache token, group label,
        # mailbox payload) are precomputed once per Vignette and stashed on
        # it, and CostModel.cached_costs is inlined — on a hit the function
        # call would cost more than the dict lookup it wraps. All float
        # expressions are kept exactly as the readable originals so cached
        # and uncached folds stay bit-identical.
        stub = v.__dict__.get("_score_stub")
        if stub is None:
            stub = v.__dict__["_score_stub"] = _score_stub(v)
        kind, token, instances, label, ctype, payload = stub
        model = self.model
        if kind == 2:  # COMMITTEE
            m = self.m
            costs = model.cost_cache.get((token, m))
            if costs is None:
                costs = model.cached_costs(v.work, m)
            else:
                model.cache_hits += 1
            sec_m, sent_m, recv_m = costs
            seconds = sec_m / self.device_speed
            bytes_sent = sent_m + recv_m
            probability = instances * m / self.num_participants
            if probability > 1.0:
                probability = 1.0
            self.expected_seconds += probability * seconds
            self.expected_bytes += probability * bytes_sent
            group_seconds = self.group_seconds
            group_seconds[label] = group_seconds.get(label, 0.0) + seconds
            group_bytes = self.group_bytes
            group_bytes[label] = group_bytes.get(label, 0.0) + bytes_sent
            self.group_type.setdefault(label, ctype)
            group_instances = self.group_instances
            prev = group_instances.get(label, 0.0)
            group_instances[label] = prev if prev > instances else instances
            # The aggregator relays committee payloads (mailbox, §5.4).
            forwarded = (recv_m + payload) * m * instances
            self.aggregator_bytes += forwarded
            prev = self.aggregator_breakdown.get("forwarding", (0.0, 0.0))
            self.aggregator_breakdown["forwarding"] = (prev[0], prev[1] + forwarded)
            return
        costs = model.cost_cache.get((token, 1))
        if costs is None:
            costs = model.cached_costs(v.work)
        else:
            model.cache_hits += 1
        sec1, sent1, recv1 = costs
        if kind == 0:  # AGGREGATOR
            seconds = sec1 * instances
            bytes_sent = sent1 * instances
            self.aggregator_seconds += seconds
            self.aggregator_bytes += bytes_sent
            prev = self.aggregator_breakdown.get(label, (0.0, 0.0))
            self.aggregator_breakdown[label] = (
                prev[0] + seconds,
                prev[1] + bytes_sent,
            )
        else:  # PARTICIPANT
            seconds = sec1 / self.device_speed
            # Participant bandwidth counts both directions (Table 1 reports
            # "participant bandwidth"; the worst-case GB comes from tree
            # helpers *receiving* fanout-many ciphertexts).
            bytes_sent = sent1 + recv1
            if instances >= self.num_participants:
                # Every device runs this (e.g. input encryption).
                self.base_seconds += seconds
                self.base_bytes += bytes_sent
            else:
                probability = instances / self.num_participants
                self.expected_seconds += probability * seconds
                self.expected_bytes += probability * bytes_sent
                group_seconds = self.group_seconds
                group_seconds[label] = group_seconds.get(label, 0.0) + seconds
                group_bytes = self.group_bytes
                group_bytes[label] = group_bytes.get(label, 0.0) + bytes_sent
                self.group_type[label] = "helper"
                group_instances = self.group_instances
                prev = group_instances.get(label, 0.0)
                group_instances[label] = prev if prev > instances else instances

    def extended(self, vignettes: List[Vignette]) -> "ScoreAccumulator":
        """A new accumulator with ``vignettes`` folded in (same m)."""
        new = self.copy()
        for v in vignettes:
            new.add(v)
        return new

    def cost(self) -> CostVector:
        max_group_seconds = max(self.group_seconds.values(), default=0.0)
        max_group_bytes = max(self.group_bytes.values(), default=0.0)
        return CostVector(
            aggregator_core_seconds=self.aggregator_seconds,
            aggregator_bytes=self.aggregator_bytes,
            participant_expected_seconds=self.base_seconds + self.expected_seconds,
            participant_expected_bytes=self.base_bytes + self.expected_bytes,
            participant_max_seconds=self.base_seconds + max_group_seconds,
            participant_max_bytes=self.base_bytes + max_group_bytes,
        )

    def finish(self, committee_params: CommitteeParameters) -> PlanScore:
        breakdown_by_type: Dict[str, CommitteeTypeCost] = {}
        for group, seconds in self.group_seconds.items():
            ctype = self.group_type[group]
            entry = breakdown_by_type.get(ctype)
            if entry is None or seconds > entry.seconds:
                breakdown_by_type[ctype] = CommitteeTypeCost(
                    ctype, seconds, self.group_bytes[group], self.group_instances[group]
                )
            if entry is not None:
                entry.committees += 0  # keep max-cost representative per type
        return PlanScore(
            cost=self.cost(),
            committee_params=committee_params,
            committee_breakdown=sorted(
                breakdown_by_type.values(), key=lambda c: c.committee_type
            ),
            aggregator_breakdown=self.aggregator_breakdown,
            participant_base_seconds=self.base_seconds,
            participant_base_bytes=self.base_bytes,
        )


def score_vignettes(
    vignettes: List[Vignette],
    num_participants: int,
    model: CostModel,
    # Costs are reported at reference-server speed, matching the paper's
    # methodology (Figs 6-7 are cluster measurements; §7.5 estimates the
    # device slowdown separately).
    device: DeviceProfile = REFERENCE_SERVER,
    committee_params: Optional[CommitteeParameters] = None,
) -> PlanScore:
    """Score a full vignette sequence into the six metrics.

    Committee sizing (§5.1) runs first, because member costs and selection
    probabilities depend on m. Expected participant cost sums the
    always-on participant work plus each committee vignette's member cost
    weighted by the probability of serving on it; maximum participant cost
    takes the most expensive committee group.
    """
    total_committees = count_committees(vignettes)
    if committee_params is None:
        committee_params = CommitteeParameters.for_plan(max(int(total_committees), 1))
    accum = ScoreAccumulator(
        num_participants, model, device, committee_params.committee_size
    )
    for v in vignettes:
        accum.add(v)
    return accum.finish(committee_params)
