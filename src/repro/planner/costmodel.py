"""Benchmark-derived cost model (§4.6, §6).

Arboretum scores candidate plans with a simple cost model built by
benchmarking each building block — FHE operations, MPC start-up cost,
incremental MPC costs, ZKP proving/verification — on a reference platform,
then summing the per-operation costs of a plan. The model is not meant to
predict exact costs; it only needs to order candidates ("weed out expensive
candidates", §4.6).

Our constants are anchored to the numbers the paper reports for its
reference platform (PowerEdge R430, 2×E5-2620) and its device experiments
(Raspberry Pi 4): e.g. the key-generation committee costs ~700 MB of
traffic and ~14 minutes of computation per member at m=42 (§7.2), an
RSA-2048 signature takes 767 µs on the server and 6 ms on the Pi (§7.5,
fixing the ~8× device slowdown), and a BGV ciphertext at degree 2^15 with a
135-bit modulus is ~1.1 MB (§6). EXPERIMENTS.md records the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple


# --------------------------------------------------------------------------
# The six metrics (§4.2)
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CostVector:
    """The six cost metrics the analyst can constrain and optimize (§4.2).

    Times are seconds (aggregator time is core-seconds); bytes are bytes.
    Participant costs come in expected (averaged over all devices, including
    the low probability of committee service) and maximum (a device that is
    actually selected for the most expensive committee) flavours.

    The planner allocates one of these per search node, so the class uses
    ``slots`` to keep instances dict-free.
    """

    aggregator_core_seconds: float = 0.0
    aggregator_bytes: float = 0.0
    participant_expected_seconds: float = 0.0
    participant_expected_bytes: float = 0.0
    participant_max_seconds: float = 0.0
    participant_max_bytes: float = 0.0

    METRICS = (
        "aggregator_core_seconds",
        "aggregator_bytes",
        "participant_expected_seconds",
        "participant_expected_bytes",
        "participant_max_seconds",
        "participant_max_bytes",
    )

    def __add__(self, other: "CostVector") -> "CostVector":
        return CostVector(
            self.aggregator_core_seconds + other.aggregator_core_seconds,
            self.aggregator_bytes + other.aggregator_bytes,
            self.participant_expected_seconds + other.participant_expected_seconds,
            self.participant_expected_bytes + other.participant_expected_bytes,
            # Max costs do not add across vignettes run by *different*
            # committees; the caller combines them explicitly. For
            # accumulation over a single entity's vignettes, plain addition
            # is correct, which is what plan scoring needs.
            self.participant_max_seconds + other.participant_max_seconds,
            self.participant_max_bytes + other.participant_max_bytes,
        )

    def get(self, metric: str) -> float:
        if metric not in self.METRICS:
            raise KeyError(f"unknown metric {metric!r}")
        return getattr(self, metric)

    def max_fields(self, other: "CostVector") -> "CostVector":
        """Component-wise maximum (used for per-committee max costs)."""
        return CostVector(
            max(self.aggregator_core_seconds, other.aggregator_core_seconds),
            max(self.aggregator_bytes, other.aggregator_bytes),
            max(self.participant_expected_seconds, other.participant_expected_seconds),
            max(self.participant_expected_bytes, other.participant_expected_bytes),
            max(self.participant_max_seconds, other.participant_max_seconds),
            max(self.participant_max_bytes, other.participant_max_bytes),
        )


@dataclass(frozen=True)
class Constraints:
    """Upper limits on any subset of the six metrics (§4.2); None = no limit."""

    aggregator_core_seconds: Optional[float] = None
    aggregator_bytes: Optional[float] = None
    participant_expected_seconds: Optional[float] = None
    participant_expected_bytes: Optional[float] = None
    participant_max_seconds: Optional[float] = None
    participant_max_bytes: Optional[float] = None

    def allows(self, cost: CostVector) -> bool:
        for metric in CostVector.METRICS:
            limit = getattr(self, metric)
            if limit is not None and cost.get(metric) > limit:
                return False
        return True

    def first_violation(self, cost: CostVector) -> Optional[str]:
        for metric in CostVector.METRICS:
            limit = getattr(self, metric)
            if limit is not None and cost.get(metric) > limit:
                return metric
        return None


@dataclass(frozen=True)
class Goal:
    """The metric to minimize among plans that satisfy the constraints.

    Comparison is lexicographic: the primary metric decides, and exact
    ties are broken by a composite of the other metrics (seconds weighted
    1:1, bytes at 1 MB ≈ 1 s), so that of two plans with identical
    expected participant time the planner prefers the one that is cheaper
    everywhere else. A weighted single float would not work here — the
    byte metrics reach petabytes, so any fixed weight either distorts the
    primary objective or underflows.
    """

    metric: str = "participant_expected_seconds"

    #: Relative tolerance within which two primary scores count as tied.
    TIE_EPS = 1e-9

    def __post_init__(self):
        if self.metric not in CostVector.METRICS:
            raise ValueError(f"unknown metric {self.metric!r}")

    def composite(self, cost: CostVector) -> float:
        total = 0.0
        for metric in CostVector.METRICS:
            value = cost.get(metric)
            if metric.endswith("bytes"):
                value *= 1e-6
            total += value
        return total

    def score(self, cost: CostVector) -> float:
        """The primary metric (used for bounds and reporting)."""
        return cost.get(self.metric)

    def is_tied(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.TIE_EPS * max(abs(a), abs(b), 1.0)

    def better(self, cost: CostVector, best_score: float, best_composite: float) -> bool:
        """Lexicographic comparison against the incumbent."""
        value = self.score(cost)
        if self.is_tied(value, best_score):
            return self.composite(cost) < best_composite
        return value < best_score


# --------------------------------------------------------------------------
# Device profiles
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceProfile:
    """A class of machine, relative to the reference server core.

    ``speed`` scales computation times (reference core = 1.0; the paper's
    Raspberry Pi 4 proxy runs the same signature ~8× slower, §7.5).
    ``active_watts`` feeds the Fig 11 power model.
    """

    name: str
    speed: float
    active_watts: float
    battery_mah: float = 0.0
    battery_volts: float = 3.85

    def seconds(self, reference_seconds: float) -> float:
        return reference_seconds / self.speed


REFERENCE_SERVER = DeviceProfile("poweredge-r430-core", speed=1.0, active_watts=15.0)
PARTICIPANT_DEVICE = DeviceProfile(
    "raspberry-pi-4", speed=0.125, active_watts=3.8, battery_mah=1624.0
)


# --------------------------------------------------------------------------
# Abstract work: primitive operation counts
# --------------------------------------------------------------------------


@dataclass
class Work:
    """Primitive-operation counts for one entity instance in one vignette.

    The planner fills these in during expansion; the cost model turns them
    into seconds and bytes. Slot counts refer to ciphertext SIMD slots.
    """

    # Homomorphic encryption (counts are ciphertext operations).
    he_encryptions: float = 0.0
    he_additions: float = 0.0
    he_plain_mults: float = 0.0
    he_ct_mults: float = 0.0
    he_rotations: float = 0.0
    he_comparisons: float = 0.0  # slot-wise sign extraction, per ciphertext
    he_exponentiations: float = 0.0  # polynomial exp evaluation, per ciphertext
    ring_slots: float = 0.0  # slots per ciphertext these ops run at

    # TFHE boolean FHE (bootstrapped gates; no depth limit).
    tfhe_gates: float = 0.0
    tfhe_encryptions: float = 0.0  # per encrypted bit

    # Zero-knowledge proofs.
    zkp_proofs: float = 0.0
    zkp_constraint_slots: float = 0.0  # statement size per proof
    zkp_verifications: float = 0.0

    # Hashing / Merkle work.
    hash_bytes: float = 0.0

    # MPC (per committee member).
    mpc_setup: float = 0.0  # 1 if this vignette starts an MPC
    mpc_triples: float = 0.0
    mpc_rounds: float = 0.0
    mpc_comparisons: float = 0.0
    mpc_noise_samples: float = 0.0
    mpc_inputs: float = 0.0
    dist_decryptions: float = 0.0  # threshold decryptions, per ciphertext
    dist_keygens: float = 0.0
    vsr_elements_sent: float = 0.0
    vsr_elements_received: float = 0.0

    # Explicit payloads (already-sized traffic like uploads/downloads).
    payload_bytes_sent: float = 0.0
    payload_bytes_received: float = 0.0

    # Pre-computed time (e.g. cleartext postprocessing, sortition signing).
    fixed_seconds: float = 0.0

    def merge(self, other: "Work") -> "Work":
        merged = Work()
        for f in fields(Work):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        # ring_slots is a parameter, not a count: keep the larger ring.
        merged.ring_slots = max(self.ring_slots, other.ring_slots)
        return merged

    def cache_key(self) -> int:
        """An interned value token for cost memoization.

        The field values are hashed once per Work instance and interned to a
        small integer, so structurally equal Work objects share one token
        (and thus one cached cost entry) while the per-score cache lookup
        hashes an ``(int, int)`` pair instead of a ~25-float tuple. The
        planner treats Work objects as immutable once emitted, so the token
        never goes stale there; callers that mutate a Work after keying must
        not reuse it.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            values = tuple(getattr(self, name) for name in _WORK_FIELD_NAMES)
            table = _WORK_KEY_INTERN
            key = table.get(values)
            if key is None:
                key = table[values] = len(table)
            self.__dict__["_cache_key"] = key
        return key


_WORK_FIELD_NAMES = tuple(f.name for f in fields(Work))
_WORK_KEY_INTERN: Dict[tuple, int] = {}


# --------------------------------------------------------------------------
# Ciphertext geometry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeParams:
    """Ring geometry and modulus for one HE scheme instance."""

    name: str  # "ahe" or "fhe"
    ring_log2: int
    ciphertext_modulus_bits: int

    @property
    def slots(self) -> int:
        return 1 << self.ring_log2

    @property
    def ciphertext_bytes(self) -> int:
        return 2 * self.slots * ((self.ciphertext_modulus_bits + 7) // 8)

    @property
    def public_key_bytes(self) -> int:
        return self.ciphertext_bytes

    @property
    def secret_key_elements(self) -> int:
        """Field elements in the secret key (one ring element)."""
        return self.slots


def ahe_params_for(categories: int) -> SchemeParams:
    """Smallest depth-0 BGV (AHE-only) ring that packs ``categories`` slots.

    Summing binary values across a billion users needs a ~2^30 plaintext
    modulus; a 60-bit ciphertext modulus covers that at depth 0, and the
    security standard then requires ring degree >= 2^11 (§6, [6]).
    """
    ring_log2 = max(11, math.ceil(math.log2(max(categories, 1))))
    ring_log2 = min(ring_log2, 15)
    return SchemeParams("ahe", ring_log2, 60)


def fhe_params_for(categories: int, depth: int = 3) -> SchemeParams:
    """BGV ring for FHE work of the given multiplicative depth.

    The paper's typical query uses a 135-bit modulus at degree 2^15 (§6);
    deeper circuits scale the modulus (and thus ciphertext size) up.
    """
    modulus_bits = 85 + 50 * max(depth - 2, 0) + (50 if depth >= 2 else 0)
    modulus_bits = max(modulus_bits, 85)
    ring_log2 = max(15, math.ceil(math.log2(max(categories, 1))))
    return SchemeParams("fhe", ring_log2, modulus_bits)


# --------------------------------------------------------------------------
# The model proper
# --------------------------------------------------------------------------


#: Default primitive costs, in seconds on the reference server core or in
#: bytes, anchored to §6/§7 (see module docstring and EXPERIMENTS.md).
DEFAULT_CONSTANTS: Dict[str, float] = {
    # HE per-slot costs.
    "he_add_per_slot": 4e-8,
    "he_encrypt_per_slot": 4e-7,
    "he_plain_mult_per_slot": 4e-7,
    "he_ct_mult_per_slot": 3e-6,
    "he_rotate_per_slot": 1.5e-6,
    "he_compare_per_slot": 1.2e-5,  # sign-extraction polynomial
    "he_exp_per_slot": 2.4e-5,  # degree-8 polynomial approximation
    # TFHE: ~100 bootstrapped gates/second per core (§3.2's estimate);
    # encryption of one bit is cheap.
    "tfhe_gate_seconds": 1e-2,
    "tfhe_encrypt_seconds": 5e-5,
    "tfhe_ciphertext_bytes": 2520.0,
    # ZKPs (Groth16 via bellman): one proof per 4096-slot circuit chunk
    # (proving-key sizes bound the circuit), proving scales with the
    # statement, verification is constant-time per proof.
    "zkp_chunk_slots": 4096.0,
    "zkp_prove_base": 0.5,
    "zkp_prove_per_slot": 6.0e-4,
    "zkp_verify": 1.5e-3,
    "zkp_proof_bytes": 256.0,
    # Hashing.
    "hash_per_byte": 5e-9,
    # MPC online/offline (per committee member; m = committee size).
    "mpc_setup_seconds": 30.0,
    "mpc_setup_bytes_per_peer": 50e3,
    "mpc_triple_seconds": 0.1,  # offline gen + online use, ~40 malicious parties
    "mpc_triple_bytes_per_peer": 96.0,
    "mpc_round_latency": 0.05,
    "mpc_comparison_triples": 180.0,  # edaBit + bitwise circuit
    "mpc_comparison_rounds": 12.0,  # log-depth prefix circuit
    # Joint noise sampling is the heaviest committee sub-protocol: a
    # fixpoint inverse-CDF circuit over jointly sampled bits (§6 uses the
    # base-2 construction of Ilvento).
    "mpc_noise_triples": 2000.0,
    "mpc_noise_rounds": 100.0,
    "mpc_input_bytes_per_peer": 16.0,
    # Threshold (distributed) decryption, per ciphertext per member:
    # malicious-secure partial decryption + share recombination.
    "dist_decrypt_seconds_per_slot": 4e-3,
    # Distributed BGV keygen, per member: ~20 s and ~17 MB per peer,
    # matching ~14 min and ~700 MB at m=42 (§7.2).
    "keygen_seconds_per_peer": 20.0,
    "keygen_bytes_per_peer": 17e6,
    # VSR: per redistributed field element per receiving member.
    "vsr_bytes_per_element": 32.0,
    "vsr_seconds_per_element": 1e-5,
    # Fixed per-round artifacts.
    "certificate_bytes": 4096.0,
    "merkle_path_bytes": 1024.0,
    "audit_leaves_per_device": 2.0,
    "sortition_signature_seconds": 767e-6,
}


class CostModel:
    """Maps Work to (seconds, bytes) for a device profile.

    One instance is built per deployment; constants can be overridden to
    model different reference platforms (the validation data in [44, §C]
    does exactly this).
    """

    def __init__(self, constants: Optional[Dict[str, float]] = None):
        self.constants = dict(DEFAULT_CONSTANTS)
        if constants:
            unknown = set(constants) - set(self.constants)
            if unknown:
                raise KeyError(f"unknown cost constants: {sorted(unknown)}")
            self.constants.update(constants)
        # Memoized (seconds, sent, received) per (work, committee size); the
        # planner scores the same emitted vignette at thousands of search
        # nodes, so the hit rate is very high. Counters are surfaced in
        # PlannerStatistics (`repro plan --stats`).
        self.cost_cache: Dict[tuple, Tuple[float, float, float]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------- plumbing

    def cached_costs(self, work: Work, committee_size: int = 1) -> Tuple[float, float, float]:
        """Memoized ``(compute_seconds, traffic_bytes, received_bytes)``.

        Returns exactly the values the three underlying methods would — the
        cache only avoids recomputation, never changes a float — so callers
        that need bit-identical scores across cached/uncached paths can rely
        on it.
        """
        key = (work.cache_key(), committee_size)
        cached = self.cost_cache.get(key)
        if cached is None:
            self.cache_misses += 1
            cached = (
                self.compute_seconds(work, committee_size),
                self.traffic_bytes(work, committee_size),
                self.received_bytes(work, committee_size),
            )
            self.cost_cache[key] = cached
        else:
            self.cache_hits += 1
        return cached

    def clear_cost_cache(self) -> None:
        """Drop memoized costs and counters (used by benchmark fairness)."""
        self.cost_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _c(self, name: str) -> float:
        return self.constants[name]

    def compute_seconds(self, work: Work, committee_size: int = 1) -> float:
        """Reference-core seconds for one entity instance's work."""
        c = self.constants
        slots = max(work.ring_slots, 1.0)
        seconds = work.fixed_seconds
        seconds += work.he_encryptions * slots * c["he_encrypt_per_slot"]
        seconds += work.he_additions * slots * c["he_add_per_slot"]
        seconds += work.he_plain_mults * slots * c["he_plain_mult_per_slot"]
        seconds += work.he_ct_mults * slots * c["he_ct_mult_per_slot"]
        seconds += work.he_rotations * slots * c["he_rotate_per_slot"]
        seconds += work.he_comparisons * slots * c["he_compare_per_slot"]
        seconds += work.he_exponentiations * slots * c["he_exp_per_slot"]
        seconds += work.tfhe_gates * c["tfhe_gate_seconds"]
        seconds += work.tfhe_encryptions * c["tfhe_encrypt_seconds"]
        seconds += work.zkp_proofs * (
            c["zkp_prove_base"] + work.zkp_constraint_slots * c["zkp_prove_per_slot"]
        )
        seconds += work.zkp_verifications * c["zkp_verify"]
        seconds += work.hash_bytes * c["hash_per_byte"]
        # MPC: triples cover offline+online compute; rounds add latency.
        triples = work.mpc_triples
        triples += work.mpc_comparisons * c["mpc_comparison_triples"]
        triples += work.mpc_noise_samples * c["mpc_noise_triples"]
        seconds += work.mpc_setup * c["mpc_setup_seconds"]
        seconds += triples * c["mpc_triple_seconds"]
        rounds = work.mpc_rounds
        rounds += work.mpc_comparisons * c["mpc_comparison_rounds"]
        rounds += work.mpc_noise_samples * c["mpc_noise_rounds"]
        seconds += rounds * c["mpc_round_latency"]
        seconds += work.dist_decryptions * slots * c["dist_decrypt_seconds_per_slot"]
        seconds += work.dist_keygens * committee_size * c["keygen_seconds_per_peer"]
        seconds += (
            (work.vsr_elements_sent + work.vsr_elements_received)
            * c["vsr_seconds_per_element"]
        )
        return seconds

    def traffic_bytes(self, work: Work, committee_size: int = 1) -> float:
        """Bytes sent by one entity instance for its work."""
        c = self.constants
        peers = max(committee_size - 1, 0)
        bytes_sent = work.payload_bytes_sent
        triples = work.mpc_triples
        triples += work.mpc_comparisons * c["mpc_comparison_triples"]
        triples += work.mpc_noise_samples * c["mpc_noise_triples"]
        bytes_sent += work.mpc_setup * peers * c["mpc_setup_bytes_per_peer"]
        bytes_sent += triples * peers * c["mpc_triple_bytes_per_peer"]
        bytes_sent += work.mpc_inputs * peers * c["mpc_input_bytes_per_peer"]
        bytes_sent += work.dist_keygens * peers * c["keygen_bytes_per_peer"]
        bytes_sent += (
            work.vsr_elements_sent * committee_size * c["vsr_bytes_per_element"]
        )
        bytes_sent += work.zkp_proofs * c["zkp_proof_bytes"]
        return bytes_sent

    def received_bytes(self, work: Work, committee_size: int = 1) -> float:
        """Bytes received (relevant for the aggregator-forwarding metric)."""
        c = self.constants
        received = work.payload_bytes_received
        received += (
            work.vsr_elements_received * committee_size * c["vsr_bytes_per_element"]
        )
        return received

    def device_seconds(self, work: Work, device: DeviceProfile, committee_size: int = 1) -> float:
        return device.seconds(self.compute_seconds(work, committee_size))

    # --------------------------------------------------------- calibration

    @classmethod
    def calibrated_from_engine(
        cls,
        num_parties: int = 8,
        operations: int = 32,
        platform_scale: float = 1.0,
        seed: int = 0,
    ) -> "CostModel":
        """Build a model by benchmarking the real MPC engine (CostCO-style).

        §4.6 notes that manual benchmarking could be replaced by an
        automated cost-modeling framework like CostCO. This constructor
        does the local-framework equivalent: it times multiplications and
        comparisons on the in-process MPC engine, reads the protocol's
        actual triple/round counts from its counters, and derives the MPC
        constants from the measurements. ``platform_scale`` maps the
        in-process simulation onto a real deployment's per-party speed
        (1.0 keeps raw measurements).

        Only the MPC constants are replaced; HE/ZKP constants keep their
        paper-anchored defaults.
        """
        import random as _random
        import time as _time

        from ..mpc.engine import MPCEngine

        rng = _random.Random(seed)
        engine = MPCEngine(num_parties, rng=rng, bit_width=32)
        values = [engine.input_value(rng.randrange(1000)) for _ in range(2 * operations)]

        start = _time.perf_counter()
        for i in range(operations):
            engine.mul(values[2 * i], values[2 * i + 1])
        mul_elapsed = _time.perf_counter() - start
        triples_per_mul = engine.counters.triples_consumed / operations

        before = engine.counters.snapshot()
        start = _time.perf_counter()
        for i in range(operations):
            engine.less_than(values[2 * i], values[2 * i + 1])
        cmp_elapsed = _time.perf_counter() - start
        cmp_triples = (
            engine.counters.triples_consumed - before.triples_consumed
        ) / operations
        cmp_rounds = (engine.counters.rounds - before.rounds) / operations

        triple_seconds = (mul_elapsed / operations / triples_per_mul) * platform_scale
        constants = {
            "mpc_triple_seconds": max(triple_seconds, 1e-9),
            "mpc_comparison_triples": max(cmp_triples, 1.0),
            "mpc_comparison_rounds": max(cmp_rounds, 1.0),
        }
        # Sanity: comparison time implied by the derived constants should
        # be within an order of magnitude of the direct measurement.
        implied = constants["mpc_comparison_triples"] * constants["mpc_triple_seconds"]
        measured = cmp_elapsed / operations * platform_scale
        if implied > 0 and not 0.05 < measured / implied < 20.0:
            constants["mpc_triple_seconds"] = measured / constants["mpc_comparison_triples"]
        return cls(constants)

    # ------------------------------------------------------------ energy

    def energy_mah(self, seconds: float, device: DeviceProfile) -> float:
        """Milliamp-hours drawn by ``seconds`` of active computation.

        Fig 11's methodology: measure active power, subtract idle, convert
        at the battery voltage.
        """
        amps = device.active_watts / device.battery_volts
        return amps * (seconds / 3600.0) * 1000.0
